//! Deterministic random number generation for test cases.

/// A splitmix64-based RNG.  Seeded from the test's name and case index so
/// each case is reproducible run to run; `PROPTEST_SEED` perturbs the
/// sequence when exploring.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
        for byte in test_name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(byte as u64);
        }
        if let Ok(env_seed) = std::env::var("PROPTEST_SEED") {
            for byte in env_seed.bytes() {
                seed = seed.wrapping_mul(31).wrapping_add(byte as u64);
            }
        }
        seed = seed.wrapping_add((case as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let mut rng = Self { state: seed };
        // Discard the first output: nearby seeds produce correlated first
        // values otherwise.
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_is_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
