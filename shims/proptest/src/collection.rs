//! Collection strategies: `proptest::collection::vec`.

use crate::test_runner::TestRng;
use crate::Strategy;
use std::ops::Range;

/// Strategy producing `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end.saturating_sub(self.size.start);
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
