//! Sampling helpers: `prop::sample::Index`.

use crate::test_runner::TestRng;
use crate::Arbitrary;

/// An index into a collection of as-yet-unknown size, resolved with
/// [`Index::index`] once the length is known.
#[derive(Clone, Copy, Debug)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Maps this sample onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len` is zero, as in real proptest.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Self { raw: rng.next_u64() }
    }
}
