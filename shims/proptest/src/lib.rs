//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the API this workspace's tests use: the
//! `proptest!` macro, `ProptestConfig::with_cases`, `any::<T>()`, integer
//! range strategies, tuple and `collection::vec` combinators, string
//! strategies written as a small regex subset (`"[a-z]{1,8}"`,
//! `"(/[a-z]{1,8}){0,4}"`), `prop::sample::Index`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the classic assertion message), and case generation is deterministic per
//! test function so failures reproduce across runs.  Set `PROPTEST_SEED` to
//! perturb the sequence.

pub mod collection;
pub mod sample;
pub mod string;
pub mod test_runner;

use test_runner::TestRng;

/// Run-time configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T` — `any::<u8>()` etc.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary_and_range {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }

        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128).wrapping_sub(self.start as i128);
                if span <= 0 {
                    return self.start;
                }
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let start = *self.start() as i128;
                let span = (*self.end() as i128) - start + 1;
                if span <= 0 {
                    return *self.start();
                }
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (start + offset) as $ty
            }
        }
    )+};
}

int_arbitrary_and_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-subset strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Namespace alias so `prop::sample::Index` and friends resolve from the
/// prelude, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::string;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Property-test assertion: panics with the standard message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` inner
/// attribute followed by `fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $binding = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
