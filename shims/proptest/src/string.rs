//! String generation from a small regex subset.
//!
//! Supports the patterns this workspace's tests use:
//!
//! * literal characters, including escaped ones (`\.`)
//! * character classes `[a-z0-9._ -]` with ranges; a `-` adjacent to a
//!   bracket is literal (`[ -~]` is a range, `[a-z-]` ends with a literal)
//! * groups `( ... )`
//! * quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded forms capped at 8
//!   repetitions)
//!
//! Unsupported syntax (alternation, anchors, backreferences) panics so a new
//! test pattern fails loudly instead of silently generating garbage.

use crate::test_runner::TestRng;

pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let consumed = generate_sequence(&chars, 0, rng, &mut out, false);
    assert_eq!(
        consumed,
        chars.len(),
        "unsupported regex pattern {pattern:?}: trailing input at offset {consumed}"
    );
    out
}

/// Generates from a sequence of atoms starting at `pos`; stops at end of
/// input or, when `in_group` is set, at the matching `)`.  Returns the index
/// one past the consumed input (past the `)` for groups).
fn generate_sequence(chars: &[char], mut pos: usize, rng: &mut TestRng, out: &mut String, in_group: bool) -> usize {
    while pos < chars.len() {
        if chars[pos] == ')' {
            assert!(in_group, "unsupported regex: unmatched ')'");
            return pos + 1;
        }
        pos = generate_atom(chars, pos, rng, out);
    }
    assert!(!in_group, "unsupported regex: unterminated group");
    pos
}

/// Generates one atom (with its quantifier, if any) starting at `pos`.
fn generate_atom(chars: &[char], pos: usize, rng: &mut TestRng, out: &mut String) -> usize {
    let atom_start = pos;
    // First parse the atom's extent without emitting, by generating into a
    // scratch buffer per repetition below.
    let after_atom = skip_atom(chars, pos);
    let (repeat_min, repeat_max, after_quantifier) = parse_quantifier(chars, after_atom);
    let span = (repeat_max - repeat_min + 1) as u64;
    let count = repeat_min + rng.below(span) as u32;
    for _ in 0..count {
        emit_atom_once(&chars[atom_start..after_atom], rng, out);
    }
    after_quantifier
}

/// Returns the index one past a single atom starting at `pos`.
fn skip_atom(chars: &[char], pos: usize) -> usize {
    match chars[pos] {
        '\\' => pos + 2,
        '[' => {
            let mut i = pos + 1;
            while i < chars.len() && chars[i] != ']' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            assert!(i < chars.len(), "unsupported regex: unterminated class");
            i + 1
        }
        '(' => {
            let mut depth = 1;
            let mut i = pos + 1;
            while i < chars.len() && depth > 0 {
                match chars[i] {
                    '\\' => i += 1,
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            assert!(depth == 0, "unsupported regex: unterminated group");
            i
        }
        '|' | '^' | '$' => panic!("unsupported regex syntax at {pos}: {:?}", chars[pos]),
        _ => pos + 1,
    }
}

/// Emits one instance of the atom in `atom` (already stripped of any
/// quantifier).
fn emit_atom_once(atom: &[char], rng: &mut TestRng, out: &mut String) {
    match atom[0] {
        '\\' => out.push(atom[1]),
        '[' => out.push(pick_from_class(&atom[1..atom.len() - 1], rng)),
        '(' => {
            let inner = &atom[1..];
            let consumed = generate_sequence(inner, 0, rng, out, true);
            debug_assert_eq!(consumed, inner.len());
        }
        c => out.push(c),
    }
}

/// Picks a uniform character from a class body (the text between brackets).
fn pick_from_class(body: &[char], rng: &mut TestRng) -> char {
    assert!(!body.is_empty(), "unsupported regex: empty class");
    assert!(body[0] != '^', "unsupported regex: negated class");
    let mut choices: Vec<(char, char)> = Vec::new();
    let mut total: u64 = 0;
    let mut i = 0;
    while i < body.len() {
        let mut low = body[i];
        if low == '\\' {
            i += 1;
            low = body[i];
        }
        // A `-` forms a range only when flanked by characters on both sides.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let high = body[i + 2];
            assert!(low <= high, "unsupported regex: descending class range");
            choices.push((low, high));
            total += (high as u64) - (low as u64) + 1;
            i += 3;
        } else {
            choices.push((low, low));
            total += 1;
            i += 1;
        }
    }
    let mut pick = rng.below(total);
    for (low, high) in choices {
        let size = (high as u64) - (low as u64) + 1;
        if pick < size {
            return char::from_u32(low as u32 + pick as u32).expect("class range within Unicode");
        }
        pick -= size;
    }
    unreachable!("pick bounded by total")
}

/// Parses a quantifier at `pos`, returning `(min, max, next_pos)`.
fn parse_quantifier(chars: &[char], pos: usize) -> (u32, u32, usize) {
    const UNBOUNDED_CAP: u32 = 8;
    if pos >= chars.len() {
        return (1, 1, pos);
    }
    match chars[pos] {
        '?' => (0, 1, pos + 1),
        '*' => (0, UNBOUNDED_CAP, pos + 1),
        '+' => (1, UNBOUNDED_CAP, pos + 1),
        '{' => {
            let close = chars[pos..]
                .iter()
                .position(|&c| c == '}')
                .map(|offset| pos + offset)
                .expect("unsupported regex: unterminated quantifier");
            let body: String = chars[pos + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((min, "")) => {
                    let min: u32 = min.parse().expect("quantifier bound");
                    (min, min.max(UNBOUNDED_CAP))
                }
                Some((min, max)) => (
                    min.parse().expect("quantifier bound"),
                    max.parse().expect("quantifier bound"),
                ),
                None => {
                    let exact = body.parse().expect("quantifier bound");
                    (exact, exact)
                }
            };
            assert!(min <= max, "unsupported regex: descending quantifier");
            (min, max, close + 1)
        }
        _ => (1, 1, pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn class_with_quantifier() {
        let mut rng = rng();
        for case in 0..200 {
            let mut case_rng = TestRng::for_case("class", case);
            let s = generate_from_pattern("[a-z]{1,8}", &mut case_rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let empty_ok = generate_from_pattern("[a-z./]{0,40}", &mut rng);
        assert!(empty_ok.len() <= 40);
    }

    #[test]
    fn printable_ascii_range() {
        for case in 0..100 {
            let mut case_rng = TestRng::for_case("ascii", case);
            let s = generate_from_pattern("[ -~]{0,32}", &mut case_rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for case in 0..100 {
            let mut case_rng = TestRng::for_case("dash", case);
            let s = generate_from_pattern("[a-z0-9._-]{1,10}", &mut case_rng);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn quantified_group() {
        for case in 0..100 {
            let mut case_rng = TestRng::for_case("group", case);
            let s = generate_from_pattern("(/[a-z]{1,8}){0,4}", &mut case_rng);
            if !s.is_empty() {
                assert!(s.starts_with('/'), "{s:?}");
            }
            assert!(s.split('/').skip(1).all(|part| (1..=8).contains(&part.len())), "{s:?}");
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut r = rng();
        assert_eq!(generate_from_pattern("abc", &mut r), "abc");
        assert_eq!(generate_from_pattern(r"a\.b", &mut r), "a.b");
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn alternation_panics() {
        generate_from_pattern("a|b", &mut rng());
    }
}
