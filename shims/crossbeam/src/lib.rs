//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided — a multi-producer multi-consumer
//! channel with cloneable senders *and* receivers, matching the subset of the
//! real crate's semantics this workspace relies on (disconnect detection,
//! `recv_timeout`, bounded back-pressure).

pub mod channel;
