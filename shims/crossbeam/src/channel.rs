//! MPMC channels over `std::sync` primitives.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    // Signalled when an item arrives or the side counts change.
    recv_ready: Condvar,
    // Signalled when space frees up in a bounded channel.
    send_ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel.  Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.  Cloneable; the channel disconnects for
/// senders once every clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self
                        .shared
                        .send_ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.recv_ready.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake any blocked receivers so they observe
            // the disconnect.
            let _guard = self.shared.lock();
            self.shared.recv_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .recv_ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(value) = queue.pop_front() {
            self.shared.send_ready.notify_one();
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .recv_ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over received messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator draining currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake blocked senders so they observe the
            // disconnect.
            let _guard = self.shared.lock();
            self.shared.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn disconnect_is_observed_by_receiver() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_is_observed_by_sender() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = tx.clone();
        let handle = thread::spawn(move || sender.send(2).unwrap());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }
}
