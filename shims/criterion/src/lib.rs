//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API subset the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_custom`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros) and measures with a simple mean-of-samples loop rather than
//! criterion's statistical machinery.  Results print to stdout; setting
//! `BROWSIX_BENCH_JSON=<path>` additionally appends one JSON object per
//! benchmark to that file so scripts can track timings over time.
//!
//! A substring filter can be passed on the command line exactly as with the
//! real criterion harness: `cargo bench -- memfs` runs only benchmarks whose
//! `group/name` id contains `memfs`.

use std::fmt;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterised benchmark: a function name plus a
/// parameter rendering, formatted as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    samples: u64,
    /// Mean duration of one iteration, filled in by `iter`/`iter_custom`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, reporting the mean over a small number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    /// Hands full timing control to the routine: it receives an iteration
    /// count and returns the total elapsed time for that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let total = routine(self.samples);
        self.mean = total / self.samples.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // The statistical harness needs tens of samples; the shim's plain
        // mean converges with far fewer, so cap the work.
        self.sample_size = (samples as u64).clamp(1, 10);
        self
    }

    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&full_id, bencher.mean);
        self
    }

    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&full_id, bencher.mean);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, mean: Duration) {
        let mut line = format!("{id:<50} time: {:>12.3} µs", mean.as_secs_f64() * 1e6);
        if let Some(throughput) = self.throughput {
            let per_second = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
            match throughput {
                Throughput::Bytes(bytes) => {
                    let _ = write!(line, "  thrpt: {:.1} MiB/s", per_second(bytes) / (1 << 20) as f64);
                }
                Throughput::Elements(elements) => {
                    let _ = write!(line, "  thrpt: {:.0} elem/s", per_second(elements));
                }
            }
        }
        println!("{line}");
        self.criterion.record_json(id, mean, self.throughput);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any trailing user filter; the
        // first non-flag argument is treated as a substring filter, as the
        // real harness does.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self {
            filter,
            json_path: std::env::var("BROWSIX_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 3,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut bencher = Bencher {
                samples: 3,
                mean: Duration::ZERO,
            };
            f(&mut bencher);
            println!("{id:<50} time: {:>12.3} µs", bencher.mean.as_secs_f64() * 1e6);
            self.record_json(id, bencher.mean, None);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|filter| id.contains(filter))
    }

    fn record_json(&mut self, id: &str, mean: Duration, throughput: Option<Throughput>) {
        let Some(path) = &self.json_path else { return };
        let throughput_field = match throughput {
            Some(Throughput::Bytes(bytes)) => format!(",\"bytes\":{bytes}"),
            Some(Throughput::Elements(elements)) => format!(",\"elements\":{elements}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"id\":\"{id}\",\"mean_ns\":{}{throughput_field}}}\n",
            mean.as_nanos()
        );
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
