//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! shim re-implements the (small) subset of the `parking_lot` API the
//! workspace uses on top of `std::sync`.  Semantics match `parking_lot` where
//! they differ from `std`: locks are not poisoned by panics, `lock()` returns
//! the guard directly, and `Condvar::wait` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily take the underlying
/// std guard out while blocking; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    lock: &'a sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner: Some(guard),
            lock: &self.inner,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard {
                inner: Some(guard),
                lock: &self.inner,
            }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
                lock: &self.inner,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable taking `parking_lot`-style `&mut MutexGuard` waits.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        // `guard.lock` ties the guard to its mutex; the wait above re-acquires
        // that same mutex, so the pairing invariant is preserved.
        let _ = guard.lock;
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut guard = m.lock();
        let result = c.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        handle.join().unwrap();
    }
}
