//! Experiment E5 (Figure 9): utility execution time under Native, Node.js on
//! Linux, and Browsix.

use std::sync::Arc;
use std::time::{Duration, Instant};

use browsix_core::{BootConfig, Kernel};
use browsix_runtime::{ExecutionProfile, NativeWorld};

use crate::workloads::figure9_fs;

/// The execution environment a utility is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilityEnvironment {
    /// Native C on Linux (GNU coreutils baseline).
    Native,
    /// The same JavaScript utility under Node.js on Linux.
    NodeJs,
    /// The same JavaScript utility as a Browsix process.
    Browsix,
}

impl UtilityEnvironment {
    /// Column label used in the Figure 9 table.
    pub fn label(&self) -> &'static str {
        match self {
            UtilityEnvironment::Native => "Native",
            UtilityEnvironment::NodeJs => "Node.js",
            UtilityEnvironment::Browsix => "BROWSIX",
        }
    }
}

/// One measured cell of the Figure 9 table.
#[derive(Debug, Clone)]
pub struct UtilityMeasurement {
    /// The command, e.g. `"sha1sum /usr/bin/node"`.
    pub command: String,
    /// The environment it ran under.
    pub environment: UtilityEnvironment,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The command's exit code (sanity check: must be 0).
    pub exit_code: i32,
}

/// Runs `command` (a whitespace-separated command line naming one of the
/// bundled utilities) once under `environment` and measures it.
///
/// `with_compute` selects whether the calibrated JavaScript-execution cost is
/// injected; benchmarks enable it, functional tests disable it.
pub fn run_utility_benchmark(environment: UtilityEnvironment, command: &str, with_compute: bool) -> UtilityMeasurement {
    let words: Vec<&str> = command.split_whitespace().collect();
    let fs = figure9_fs();
    match environment {
        UtilityEnvironment::Native | UtilityEnvironment::NodeJs => {
            let mut profile = match environment {
                UtilityEnvironment::Native => ExecutionProfile::native(),
                _ => ExecutionProfile::nodejs_linux(),
            };
            if !with_compute {
                profile = profile.without_compute();
            }
            let world = NativeWorld::new(fs, profile);
            browsix_utils::register_native(world.table());
            let start = Instant::now();
            let result = world.run(words[0], &words);
            UtilityMeasurement {
                command: command.to_owned(),
                environment,
                elapsed: start.elapsed(),
                exit_code: result.exit_code,
            }
        }
        UtilityEnvironment::Browsix => {
            let platform = if with_compute {
                browsix_browser::PlatformConfig::chrome()
            } else {
                browsix_browser::PlatformConfig::fast()
            };
            let config = BootConfig::in_memory().with_fs(fs).with_platform(platform);
            let mut profile = ExecutionProfile::browsix_async();
            if !with_compute {
                profile = ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async);
            }
            browsix_utils::register_browsix(&config.registry, profile);
            let kernel = Kernel::boot(config);
            let start = Instant::now();
            let handle = kernel
                .spawn(&format!("/usr/bin/{}", words[0]), &words, &[])
                .expect("spawn utility");
            let status = handle.wait();
            let elapsed = start.elapsed();
            let measurement = UtilityMeasurement {
                command: command.to_owned(),
                environment,
                elapsed,
                exit_code: status.code.unwrap_or(-1),
            };
            kernel.shutdown();
            measurement
        }
    }
}

/// Runs the full Figure 9 matrix (two commands × three environments).
pub fn figure9_matrix(with_compute: bool) -> Vec<UtilityMeasurement> {
    let commands = ["sha1sum /usr/bin/node", "ls -l /usr/bin"];
    let environments = [
        UtilityEnvironment::Native,
        UtilityEnvironment::NodeJs,
        UtilityEnvironment::Browsix,
    ];
    let mut results = Vec::new();
    for command in commands {
        for environment in environments {
            results.push(run_utility_benchmark(environment, command, with_compute));
        }
    }
    results
}

/// Also exposed for the syscall-overhead ablation: a Browsix run returns the
/// kernel statistics alongside the measurement.
pub fn browsix_run_with_stats(command: &str) -> (UtilityMeasurement, browsix_core::KernelStats) {
    let words: Vec<&str> = command.split_whitespace().collect();
    let config = BootConfig::in_memory()
        .with_fs(figure9_fs())
        .with_platform(browsix_browser::PlatformConfig::fast());
    browsix_utils::register_browsix(
        &config.registry,
        ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async),
    );
    let kernel = Kernel::boot(config);
    let start = Instant::now();
    let handle = kernel
        .spawn(&format!("/usr/bin/{}", words[0]), &words, &[])
        .expect("spawn utility");
    let status = handle.wait();
    let measurement = UtilityMeasurement {
        command: command.to_owned(),
        environment: UtilityEnvironment::Browsix,
        elapsed: start.elapsed(),
        exit_code: status.code.unwrap_or(-1),
    };
    let stats = kernel.stats();
    kernel.shutdown();
    (measurement, stats)
}

/// The `Arc<MountedFs>` the measurements run against, exposed for tests.
pub fn workload_fs() -> Arc<browsix_fs::MountedFs> {
    figure9_fs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_environments_run_the_same_workload_correctly() {
        for environment in [
            UtilityEnvironment::Native,
            UtilityEnvironment::NodeJs,
            UtilityEnvironment::Browsix,
        ] {
            let m = run_utility_benchmark(environment, "ls -l /usr/bin", false);
            assert_eq!(m.exit_code, 0, "{environment:?}");
            assert!(!m.environment.label().is_empty());
        }
    }

    #[test]
    fn browsix_run_reports_syscall_statistics() {
        let (measurement, stats) = browsix_run_with_stats("ls -l /usr/bin");
        assert_eq!(measurement.exit_code, 0);
        // `ls -l` stats every directory entry through the kernel.
        assert!(stats.count("stat") as usize >= crate::workloads::LS_DIR_ENTRIES);
        assert!(stats.count("getdents") >= 1);
    }
}
