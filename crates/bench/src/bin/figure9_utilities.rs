//! Regenerates Figure 9: execution time of `sha1sum` and `ls -l` under
//! Native, Node.js-on-Linux and Browsix.
//!
//! Paper values: sha1sum 0.002 s / 0.067 s / 0.189 s and ls 0.001 s /
//! 0.044 s / 0.108 s.  The shape to check: JavaScript accounts for most of
//! the overhead, and running under Browsix adds roughly another 3x over
//! Node.js.

use browsix_bench::utilities::figure9_matrix;
use browsix_bench::{fmt_seconds, print_table};

fn main() {
    let measurements = figure9_matrix(true);
    let commands = ["sha1sum /usr/bin/node", "ls -l /usr/bin"];
    let mut rows = Vec::new();
    for command in commands {
        let mut row = vec![command.to_string()];
        for environment in ["Native", "Node.js", "BROWSIX"] {
            let cell = measurements
                .iter()
                .find(|m| m.command == command && m.environment.label() == environment)
                .map(|m| {
                    assert_eq!(m.exit_code, 0, "{command} failed under {environment}");
                    fmt_seconds(m.elapsed)
                })
                .unwrap_or_else(|| "-".to_owned());
            row.push(cell);
        }
        rows.push(row);
    }
    print_table(
        "Figure 9 — utility execution time (measured in this reproduction)",
        &["Command", "Native", "Node.js", "BROWSIX"],
        &rows,
    );
    println!("\nPaper reports: sha1sum 0.002s / 0.067s / 0.189s;  ls 0.001s / 0.044s / 0.108s.");

    // Report the derived ratios the paper calls out.
    for command in commands {
        let get = |label: &str| {
            measurements
                .iter()
                .find(|m| m.command == command && m.environment.label() == label)
                .map(|m| m.elapsed.as_secs_f64())
                .unwrap_or(f64::NAN)
        };
        let native = get("Native");
        let node = get("Node.js");
        let browsix = get("BROWSIX");
        println!(
            "{command}: Node.js = {:.1}x native, BROWSIX = {:.1}x Node.js (paper: ~3x)",
            node / native,
            browsix / node
        );
    }
}
