//! Regenerates Figure 2: the component inventory (lines of code per
//! component), for this reproduction.

use browsix_bench::{count_workspace_lines, loc::total_lines, print_table};

fn main() {
    let components = count_workspace_lines();
    let rows: Vec<Vec<String>> = components
        .iter()
        .map(|c| {
            vec![
                c.component.clone(),
                c.lines.to_string(),
                c.files.to_string(),
                c.corresponds_to.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 2 — BROWSIX components (this reproduction)",
        &["Component", "Non-blank LoC", "Files", "Corresponds to"],
        &rows,
    );
    println!("\nTOTAL: {} non-blank lines of Rust", total_lines(&components));
    println!("(The paper reports 8,126 lines of TypeScript/JavaScript; the Rust reproduction also\n rebuilds the browser platform, coreutils, shell and case-study substrates it relied on.)");
}
