//! Regenerates the LaTeX editor measurement (§5.2): end-to-end build time of
//! a single-page paper with a bibliography, natively and under Browsix with
//! each system-call convention.
//!
//! Paper values: native ≈ 0.1 s, Browsix with synchronous calls ≈ 3 s,
//! Browsix with asynchronous calls + Emterpreter ≈ 12 s.
//!
//! Pass a compute scale as the first argument (default 1.0) to shrink the
//! experiment while preserving ratios, e.g.
//! `cargo run -p browsix-bench --bin latex_editor_times -- 0.25`.

use browsix_apps::latex::{native_build, LatexEditor, LatexEnvironment, LatexMode};
use browsix_bench::{fmt_seconds, print_table};
use browsix_browser::NetworkProfile;

fn browsix_build(mode: LatexMode, scale: f64) -> (std::time::Duration, u64) {
    let editor = LatexEditor::new(LatexEnvironment::boot(mode, scale, NetworkProfile::cdn()));
    let outcome = editor.build_pdf();
    assert!(outcome.success, "build failed: {}\n{}", outcome.stdout, outcome.stderr);
    let fetched = editor.environment().texlive.stats().bytes_fetched;
    (outcome.elapsed, fetched)
}

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(1.0);
    println!("compute scale: {scale} (1.0 reproduces the paper's absolute calibration)");

    let native = native_build(scale);
    let (sync_time, sync_bytes) = browsix_build(LatexMode::Sync, scale);
    let (async_time, async_bytes) = browsix_build(LatexMode::Async, scale);

    print_table(
        "LaTeX editor — pdflatex + bibtex build of a single-page paper",
        &["Configuration", "Build time", "TeX Live bytes fetched"],
        &[
            vec!["Native Linux".into(), fmt_seconds(native), "local disk".into()],
            vec![
                "BROWSIX, synchronous syscalls (Chrome)".into(),
                fmt_seconds(sync_time),
                sync_bytes.to_string(),
            ],
            vec![
                "BROWSIX, async syscalls + Emterpreter".into(),
                fmt_seconds(async_time),
                async_bytes.to_string(),
            ],
        ],
    );
    println!("\nPaper reports: ~0.1 s native, ~3 s synchronous, ~12 s asynchronous/Emterpreter.");
    println!(
        "Shape check: sync/native = {:.1}x, async/sync = {:.1}x (paper: ~30x and ~4x).",
        sync_time.as_secs_f64() / native.as_secs_f64().max(1e-9),
        async_time.as_secs_f64() / sync_time.as_secs_f64().max(1e-9),
    );
}
