//! Experiment E10: ablations for the design choices the paper calls out —
//! lazy vs eager loading of the read-only underlay, and the syscall footprint
//! of the Figure 9 workloads.

use std::sync::Arc;
use std::time::Instant;

use browsix_bench::{fmt_millis, print_table, utilities::browsix_run_with_stats};
use browsix_browser::{NetworkProfile, RemoteEndpoint};
use browsix_fs::{FileSystem, HttpFs, OverlayFs, OverlayMode};

fn overlay_ablation() {
    // A read-only underlay of many files served over a CDN-like link.
    let (files, manifest) = browsix_apps::latex::texlive_distribution(60);
    let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::cdn());
    let http_fs: Arc<dyn FileSystem> = Arc::new(HttpFs::new(endpoint.clone(), manifest.clone()));

    // Lazy (Browsix behaviour): mounting is instant; only touched files load.
    let start = Instant::now();
    let lazy = OverlayFs::new(Arc::clone(&http_fs), OverlayMode::Lazy);
    let lazy_mount = start.elapsed();
    let _ = lazy.read_file("/article.cls");
    let lazy_bytes = endpoint.stats().bytes_transferred;

    // Eager (original BrowserFS behaviour): every file is copied up front.
    let endpoint2 =
        RemoteEndpoint::with_static_files(browsix_apps::latex::texlive_distribution(60).0, NetworkProfile::cdn());
    let http_fs2: Arc<dyn FileSystem> = Arc::new(HttpFs::new(endpoint2.clone(), manifest));
    let start = Instant::now();
    let _eager = OverlayFs::new(http_fs2, OverlayMode::Eager);
    let eager_mount = start.elapsed();
    let eager_bytes = endpoint2.stats().bytes_transferred;

    print_table(
        "Ablation — lazy vs eager overlay initialisation (the BrowserFS change BROWSIX made)",
        &["Mode", "Mount + first read", "Bytes transferred"],
        &[
            vec!["Lazy (BROWSIX)".into(), fmt_millis(lazy_mount), lazy_bytes.to_string()],
            vec![
                "Eager (original BrowserFS)".into(),
                fmt_millis(eager_mount),
                eager_bytes.to_string(),
            ],
        ],
    );
}

fn syscall_footprint() {
    let (sha1, sha1_stats) = browsix_run_with_stats("sha1sum /usr/bin/node");
    let (ls, ls_stats) = browsix_run_with_stats("ls -l /usr/bin");
    print_table(
        "Ablation — kernel syscall footprint of the Figure 9 workloads",
        &[
            "Command",
            "Wall time (no cost model)",
            "Syscalls",
            "Bytes copied (async clones)",
        ],
        &[
            vec![
                sha1.command,
                fmt_millis(sha1.elapsed),
                sha1_stats.total_syscalls.to_string(),
                sha1_stats.bytes_copied.to_string(),
            ],
            vec![
                ls.command,
                fmt_millis(ls.elapsed),
                ls_stats.total_syscalls.to_string(),
                ls_stats.bytes_copied.to_string(),
            ],
        ],
    );
}

fn main() {
    overlay_ablation();
    syscall_footprint();
}
