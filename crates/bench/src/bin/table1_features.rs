//! Regenerates Table 1: the feature comparison of execution environments and
//! language runtimes, and verifies the BROWSIX row by exercising each feature.
//! Also reports what the verification run cost the kernel: system calls by
//! Figure 3 class and the submission batch-size histogram.

use browsix_bench::{environment_feature_table, features::verify_browsix_row_with_shard_stats, print_table};

fn main() {
    // The ABI generation manifest: the same counts browsix-abigen derives
    // from abi/syscalls.abi at build time, so the syscall surface's growth
    // is visible run over run.
    let m = browsix_core::abi::MANIFEST;
    println!(
        "ABI manifest (generated from abi/syscalls.abi): wire v{} · {} syscalls (max opcode {}) · {} result tags · {} ring-eligible · {} framed-only\n",
        m.wire_version, m.syscall_count, m.max_opcode, m.result_count, m.ring_eligible, m.framed_only
    );

    let rows: Vec<Vec<String>> = environment_feature_table().iter().map(|row| row.cells()).collect();
    print_table(
        "Table 1 — feature comparison",
        &[
            "Environment / runtime",
            "Filesystem",
            "Socket clients",
            "Socket servers",
            "Processes",
            "Pipes",
            "Signals",
        ],
        &rows,
    );
    let (verified, stats, per_shard) = verify_browsix_row_with_shard_stats();
    println!(
        "\nVerified against running code (a Browsix process exercised each feature): {}",
        verified.join(", ")
    );

    let class_rows: Vec<Vec<String>> = stats
        .syscalls_by_class
        .iter()
        .map(|(class, count)| vec![class.clone(), count.to_string()])
        .collect();
    print_table(
        "Verification run — system calls by class",
        &["Class", "Calls"],
        &class_rows,
    );

    let histogram_rows: Vec<Vec<String>> = stats
        .batch_size_histogram
        .iter()
        .map(|(size, count)| vec![size.to_string(), count.to_string()])
        .collect();
    print_table(
        "Verification run — submission batch sizes",
        &["Entries/batch", "Batches"],
        &histogram_rows,
    );
    println!(
        "{} syscalls in {} batches (mean {:.2} entries/batch, max {})",
        stats.total_syscalls,
        stats.batches,
        stats.mean_batch_size(),
        stats.max_batch_size()
    );

    // VFS cache effectiveness during the run: the dentry cache in front of
    // the mount table, httpfs page caches and overlay copy-ups.
    print_table(
        "Verification run — VFS caches",
        &["Counter", "Value"],
        &[
            vec!["dentry-cache hits".to_owned(), stats.dentry_cache_hits.to_string()],
            vec!["dentry-cache misses".to_owned(), stats.dentry_cache_misses.to_string()],
            vec!["page-cache hits".to_owned(), stats.page_cache_hits.to_string()],
            vec!["page-cache misses".to_owned(), stats.page_cache_misses.to_string()],
            vec!["overlay copy-ups".to_owned(), stats.overlay_copy_ups.to_string()],
        ],
    );

    // Wait-queue behaviour during the run: blocked calls parked, targeted
    // wakeups that completed them, wakeups that found nothing to do, EAGAIN
    // short-circuits taken by O_NONBLOCK descriptors, and polls that ended
    // on their timer.
    print_table(
        "Verification run — wait queues & readiness",
        &["Counter", "Value"],
        &[
            vec!["waiters parked".to_owned(), stats.waiters_parked.to_string()],
            vec!["wakeups (completed)".to_owned(), stats.wakeups.to_string()],
            vec!["spurious wakeups".to_owned(), stats.spurious_wakeups.to_string()],
            vec!["EAGAIN returns".to_owned(), stats.eagain_returns.to_string()],
            vec!["poll timeouts".to_owned(), stats.poll_timeouts.to_string()],
        ],
    );

    // Virtual-memory activity during the run: pages shared by reference
    // instead of copied (fork, file-backed mmap), COW faults serviced and
    // the pages they physically copied, and named shm objects created.
    print_table(
        "Verification run — virtual memory",
        &["Counter", "Value"],
        &[
            vec!["COW faults".to_owned(), stats.cow_faults.to_string()],
            vec!["pages shared".to_owned(), stats.pages_shared.to_string()],
            vec!["pages copied".to_owned(), stats.pages_copied.to_string()],
            vec!["shm objects".to_owned(), stats.shm_objects.to_string()],
        ],
    );

    // Syscall-ring and zero-copy activity during the run: submission-queue
    // entries the kernel drained, doorbell events that triggered a drain,
    // completions posted back through the ring, and bytes/pages the sendfile
    // and splice paths moved without guest-memory copies.
    print_table(
        "Verification run — syscall rings & zero-copy",
        &["Counter", "Value"],
        &[
            vec!["SQEs drained".to_owned(), stats.sq_polled.to_string()],
            vec!["doorbells".to_owned(), stats.doorbells.to_string()],
            vec!["CQEs posted".to_owned(), stats.cq_posted.to_string()],
            vec!["sendfile/splice bytes".to_owned(), stats.sendfile_bytes.to_string()],
            vec!["zero-copy pages".to_owned(), stats.zero_copy_pages.to_string()],
        ],
    );

    // Signal traffic during the run: signals accepted for live targets,
    // signals that actually acted (handler or default disposition), and
    // blocked system calls a handler interrupted with EINTR.
    print_table(
        "Verification run — signals",
        &["Counter", "Value"],
        &[
            vec!["signals sent".to_owned(), stats.signals_sent.to_string()],
            vec!["signals delivered".to_owned(), stats.signals_delivered.to_string()],
            vec!["EINTR wakeups".to_owned(), stats.eintr_wakeups.to_string()],
        ],
    );

    // Sharded-kernel traffic during the run, fleet-wide (every counter above
    // is already the merge of the per-shard snapshots) and broken down by
    // shard.  With BROWSIX_SHARDS unset the run uses one shard and every
    // cross-shard counter is zero.
    print_table(
        "Verification run — sharding (fleet-wide)",
        &["Counter", "Value"],
        &[
            vec!["shards".to_owned(), per_shard.len().to_string()],
            vec!["shard messages sent".to_owned(), stats.shard_msgs_sent.to_string()],
            vec!["remote I/O steals".to_owned(), stats.steals.to_string()],
            vec!["cross-shard wakeups".to_owned(), stats.cross_shard_wakeups.to_string()],
        ],
    );
    let shard_rows: Vec<Vec<String>> = per_shard
        .iter()
        .enumerate()
        .map(|(shard, s)| {
            vec![
                shard.to_string(),
                s.total_syscalls.to_string(),
                s.shard_msgs_sent.to_string(),
                s.steals.to_string(),
                s.cross_shard_wakeups.to_string(),
            ]
        })
        .collect();
    print_table(
        "Verification run — per-shard breakdown",
        &["Shard", "Syscalls", "Msgs sent", "Steals", "X-shard wakeups"],
        &shard_rows,
    );
}
