//! Regenerates Table 1: the feature comparison of execution environments and
//! language runtimes, and verifies the BROWSIX row by exercising each feature.

use browsix_bench::{environment_feature_table, features::verify_browsix_row, print_table};

fn main() {
    let rows: Vec<Vec<String>> = environment_feature_table().iter().map(|row| row.cells()).collect();
    print_table(
        "Table 1 — feature comparison",
        &[
            "Environment / runtime",
            "Filesystem",
            "Socket clients",
            "Socket servers",
            "Processes",
            "Pipes",
            "Signals",
        ],
        &rows,
    );
    let verified = verify_browsix_row();
    println!(
        "\nVerified against running code (a Browsix process exercised each feature): {}",
        verified.join(", ")
    );
}
