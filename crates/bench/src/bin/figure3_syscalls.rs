//! Regenerates Figure 3: the system calls implemented by the kernel, grouped
//! by class.

use browsix_bench::{print_table, syscall_inventory};

fn main() {
    let inventory = syscall_inventory();
    let rows: Vec<Vec<String>> = inventory
        .iter()
        .map(|(class, calls)| vec![class.clone(), calls.join(", ")])
        .collect();
    print_table(
        "Figure 3 — system calls implemented by the BROWSIX kernel",
        &["Class", "System calls"],
        &rows,
    );
    let total: usize = inventory.values().map(|calls| calls.len()).sum();
    println!("\n{total} distinct system calls across {} classes.", inventory.len());
    println!("fork is only supported for C and C++ programs (Emterpreter mode), as in the paper.");
}
