//! Regenerates the §6 observation that browser message passing is roughly
//! three orders of magnitude slower than a native system call, and compares
//! the two Browsix system-call conventions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use browsix_bench::{fmt_millis, print_table};
use browsix_core::{BootConfig, Kernel};
use browsix_fs::{FileSystem, MemFs, MountedFs};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention,
};

const CALLS: u64 = 2_000;

/// Time per getpid-like operation when it is a direct in-process call
/// (the "traditional system call" baseline).
fn direct_call_cost() -> Duration {
    let fs = MountedFs::new(Arc::new(MemFs::new()));
    let start = Instant::now();
    for _ in 0..CALLS {
        let _ = fs.stat("/");
    }
    start.elapsed() / CALLS as u32
}

/// Time per Browsix system call under the given convention, measured from
/// inside a real Browsix process issuing `CALLS` getpid calls.
fn browsix_call_cost(sync: bool) -> Duration {
    let platform = browsix_browser::PlatformConfig::chrome();
    let config = BootConfig::in_memory().with_platform(platform);
    let profile = ExecutionProfile::instant(if sync {
        SyscallConvention::Sync
    } else {
        SyscallConvention::Async
    });
    let program = guest("syscall-loop", move |env: &mut dyn RuntimeEnv| {
        for _ in 0..CALLS {
            let _ = env.getpid();
        }
        0
    });
    let launcher: Arc<dyn browsix_core::ProgramLauncher> = if sync {
        Arc::new(EmscriptenLauncher::new("loop", program, EmscriptenMode::AsmJs).with_profile(profile))
    } else {
        Arc::new(NodeLauncher::new("loop", program).with_profile(profile))
    };
    config.registry.register("/usr/bin/loop", launcher);
    let kernel = Kernel::boot(config);
    let start = Instant::now();
    let handle = kernel.spawn("/usr/bin/loop", &["loop"], &[]).unwrap();
    assert!(handle.wait().success());
    let per_call = start.elapsed() / CALLS as u32;
    kernel.shutdown();
    per_call
}

fn main() {
    let direct = direct_call_cost();
    let sync = browsix_call_cost(true);
    let asynchronous = browsix_call_cost(false);

    print_table(
        "Message passing vs traditional system calls (per-call cost)",
        &["Mechanism", "Per call", "Relative to direct"],
        &[
            vec![
                "Direct in-process call (native syscall analogue)".into(),
                fmt_millis(direct),
                "1x".into(),
            ],
            vec![
                "BROWSIX synchronous syscall (SharedArrayBuffer + Atomics)".into(),
                fmt_millis(sync),
                format!("{:.0}x", sync.as_secs_f64() / direct.as_secs_f64().max(1e-12)),
            ],
            vec![
                "BROWSIX asynchronous syscall (postMessage + structured clone)".into(),
                fmt_millis(asynchronous),
                format!("{:.0}x", asynchronous.as_secs_f64() / direct.as_secs_f64().max(1e-12)),
            ],
        ],
    );
    println!("\nPaper (§6): message passing is ~3 orders of magnitude slower than a traditional system call;");
    println!("synchronous system calls avoid most of that cost, which is why they matter.");
}
