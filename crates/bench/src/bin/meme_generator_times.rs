//! Regenerates the meme-generator measurements (§5.2): request latency for
//! listing backgrounds and generating memes, against a native local server, a
//! remote (EC2-like) server, and the same server running inside Browsix under
//! Chrome and Firefox profiles.
//!
//! Paper values: list-backgrounds 1.7 ms native, 9 ms Chrome, 6 ms Firefox;
//! the in-Browsix request beats the remote server roughly 3x once round-trip
//! latency is included; meme generation is ~200 ms server-side vs ~2 s
//! in-browser.  Times are the mean of 100 runs after a 20-run warm-up, as in
//! the paper (reduced via --quick).

use std::time::{Duration, Instant};

use browsix_apps::meme::{native_go_profile, MemeClient, MemeEnvironment, RouteDecision};
use browsix_bench::{fmt_millis, print_table};
use browsix_browser::{NetworkProfile, PlatformConfig, RemoteEndpoint};
use browsix_runtime::ExecutionProfile;

fn mean(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    let total: Duration = samples.iter().sum();
    total / samples.len().max(1) as u32
}

fn measure<F: FnMut()>(warmup: usize, runs: usize, mut f: F) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    mean(samples)
}

fn browsix_client(platform: PlatformConfig) -> MemeClient {
    MemeClient::new(
        MemeEnvironment::boot(platform, ExecutionProfile::gopherjs(), NetworkProfile::ec2(), true),
        true, // desktop: route in-Browsix
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, runs) = if quick { (2, 10) } else { (20, 100) };
    let gen_runs = if quick { 3 } else { 10 };

    // Native local server: the handler behind a loopback link.
    let native = RemoteEndpoint::new(
        std::sync::Arc::new(browsix_apps::meme::RemoteMemeService::new()),
        NetworkProfile::localhost(),
    );
    // Remote server: same handler behind an EC2-like link.
    let remote = RemoteEndpoint::new(
        std::sync::Arc::new(browsix_apps::meme::RemoteMemeService::new()),
        NetworkProfile::ec2(),
    );

    let native_list = measure(warmup, runs, || {
        native.fetch("/api/backgrounds").expect("native list");
    });
    let remote_list = measure(warmup, runs, || {
        remote.fetch("/api/backgrounds").expect("remote list");
    });

    let chrome = browsix_client(PlatformConfig::chrome());
    let chrome_list = measure(warmup, runs, || {
        chrome.list_backgrounds().expect("chrome list");
    });
    let firefox = browsix_client(PlatformConfig::firefox());
    let firefox_list = measure(warmup, runs, || {
        firefox.list_backgrounds().expect("firefox list");
    });

    print_table(
        "Meme generator — GET /api/backgrounds (mean latency)",
        &["Deployment", "Latency", "Paper"],
        &[
            vec!["Native local server".into(), fmt_millis(native_list), "1.7 ms".into()],
            vec!["In-BROWSIX (Chrome)".into(), fmt_millis(chrome_list), "9 ms".into()],
            vec!["In-BROWSIX (Firefox)".into(), fmt_millis(firefox_list), "6 ms".into()],
            vec![
                "Remote server (EC2-like RTT)".into(),
                fmt_millis(remote_list),
                "~3x slower than in-BROWSIX".into(),
            ],
        ],
    );
    println!(
        "\nCrossover check: remote/in-BROWSIX(Chrome) = {:.1}x (paper: ~3x in BROWSIX's favour).",
        remote_list.as_secs_f64() / chrome_list.as_secs_f64().max(1e-9)
    );

    // Meme generation: native Go profile server-side vs GopherJS in-browser.
    let body = browsix_http::Json::object()
        .with("template", "grumpy-cat.png")
        .with("top", "I HERD U LIEK")
        .with("bottom", "SYSCALLS")
        .encode();
    let server_side = measure(1, gen_runs, || {
        // The native profile charges its compute directly inside the handler.
        let _ = native_go_profile();
        remote.request("/api/meme", Some(body.as_bytes())).expect("remote meme");
    });
    let (route, _) = chrome
        .generate("grumpy-cat.png", "I HERD U LIEK", "SYSCALLS")
        .expect("warm");
    assert_eq!(route, RouteDecision::InBrowsix);
    let in_browser = measure(1, gen_runs, || {
        chrome
            .generate("grumpy-cat.png", "I HERD U LIEK", "SYSCALLS")
            .expect("browser meme");
    });

    print_table(
        "Meme generator — POST /api/meme (mean latency)",
        &["Deployment", "Latency", "Paper"],
        &[
            vec![
                "Server-side (native Go)".into(),
                fmt_millis(server_side),
                "~200 ms".into(),
            ],
            vec![
                "In-BROWSIX (GopherJS, Chrome)".into(),
                fmt_millis(in_browser),
                "~2 s".into(),
            ],
        ],
    );
    println!(
        "\nGopherJS penalty: in-browser/server-side = {:.1}x (paper: ~10x, dominated by missing 64-bit integers).",
        in_browser.as_secs_f64() / server_side.as_secs_f64().max(1e-9)
    );
}
