//! Experiment E4 (Table 1): the feature comparison of JavaScript execution
//! environments and language runtimes.

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureRow {
    /// Environment or runtime name.
    pub name: &'static str,
    /// Filesystem support: `None`, `Some(false)` = single-process only,
    /// `Some(true)` = multi-process.
    pub filesystem: Option<bool>,
    /// Socket clients.
    pub socket_clients: Option<bool>,
    /// Socket servers.
    pub socket_servers: Option<bool>,
    /// Processes.
    pub processes: Option<bool>,
    /// Pipes.
    pub pipes: Option<bool>,
    /// Signals.
    pub signals: Option<bool>,
}

fn cell(value: Option<bool>) -> &'static str {
    match value {
        Some(true) => "yes",
        Some(false) => "single-process",
        None => "-",
    }
}

impl FeatureRow {
    /// Renders the row as table cells.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.name.to_owned(),
            cell(self.filesystem).to_owned(),
            cell(self.socket_clients).to_owned(),
            cell(self.socket_servers).to_owned(),
            cell(self.processes).to_owned(),
            cell(self.pipes).to_owned(),
            cell(self.signals).to_owned(),
        ]
    }

    /// Whether every feature column is multi-process capable.
    pub fn full_support(&self) -> bool {
        [
            self.filesystem,
            self.socket_clients,
            self.socket_servers,
            self.processes,
            self.pipes,
            self.signals,
        ]
        .iter()
        .all(|v| *v == Some(true))
    }
}

/// Table 1 of the paper: Browsix and Browsix-integrated runtimes support every
/// feature for multiple processes; Doppio and stock Emscripten offer a subset
/// to a single process; stock GopherJS and WebAssembly offer none of them.
pub fn environment_feature_table() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "BROWSIX",
            filesystem: Some(true),
            socket_clients: Some(true),
            socket_servers: Some(true),
            processes: Some(true),
            pipes: Some(true),
            signals: Some(true),
        },
        FeatureRow {
            name: "Doppio",
            filesystem: Some(false),
            socket_clients: Some(false),
            socket_servers: None,
            processes: None,
            pipes: None,
            signals: None,
        },
        FeatureRow {
            name: "WebAssembly",
            filesystem: None,
            socket_clients: None,
            socket_servers: None,
            processes: None,
            pipes: None,
            signals: None,
        },
        FeatureRow {
            name: "Emscripten (C/C++)",
            filesystem: Some(false),
            socket_clients: Some(false),
            socket_servers: Some(false),
            processes: None,
            pipes: None,
            signals: None,
        },
        FeatureRow {
            name: "GopherJS (Go)",
            filesystem: None,
            socket_clients: None,
            socket_servers: None,
            processes: None,
            pipes: None,
            signals: None,
        },
        FeatureRow {
            name: "BROWSIX + Emscripten",
            filesystem: Some(true),
            socket_clients: Some(true),
            socket_servers: Some(true),
            processes: Some(true),
            pipes: Some(true),
            signals: Some(true),
        },
        FeatureRow {
            name: "BROWSIX + GopherJS",
            filesystem: Some(true),
            socket_clients: Some(true),
            socket_servers: Some(true),
            processes: Some(true),
            pipes: Some(true),
            signals: Some(true),
        },
    ]
}

/// Checks the Browsix rows of the table against what the code in this
/// repository actually provides, by exercising each feature end to end.
/// Returns the list of verified feature names.
pub fn verify_browsix_row() -> Vec<&'static str> {
    verify_browsix_row_with_stats().0
}

/// Like [`verify_browsix_row`], additionally returning the kernel-statistics
/// snapshot taken after the probe ran, so drivers can report the per-class
/// syscall counters and the submission batch-size histogram.
pub fn verify_browsix_row_with_stats() -> (Vec<&'static str>, browsix_core::KernelStats) {
    let (verified, stats, _) = verify_browsix_row_with_shard_stats();
    (verified, stats)
}

/// Like [`verify_browsix_row_with_stats`], additionally returning the raw
/// per-shard statistics snapshots, so drivers can report how the run's work
/// (and the cross-shard message traffic) spread over the kernel's event
/// loops.  The shard count honours `BROWSIX_SHARDS`; the fleet-wide snapshot
/// is the merge of the per-shard ones.
pub fn verify_browsix_row_with_shard_stats() -> (
    Vec<&'static str>,
    browsix_core::KernelStats,
    Vec<browsix_core::KernelStats>,
) {
    use browsix_core::{BootConfig, Kernel};
    use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention};
    use std::sync::Arc;

    let mut verified = Vec::new();
    let config = BootConfig::in_memory();
    let profile = ExecutionProfile::instant(SyscallConvention::Async);
    config.registry.register(
        "/usr/bin/feature-probe",
        Arc::new(
            NodeLauncher::new(
                "feature-probe",
                guest("feature-probe", |env: &mut dyn RuntimeEnv| {
                    // Shared filesystem, through the handle-based descriptor
                    // path: open once, write, fsync, read back.
                    env.write_file("/probe.txt", b"x").unwrap();
                    let fd = env.open("/probe.txt", browsix_fs::OpenFlags::read_write()).unwrap();
                    env.write(fd, b"probe").unwrap();
                    env.fsync(fd).unwrap();
                    env.seek(fd, 0, 0).unwrap();
                    assert_eq!(env.read(fd, 5).unwrap(), b"probe");
                    env.close(fd).unwrap();
                    // Pipes.
                    let (r, w) = env.pipe().unwrap();
                    env.write(w, b"ping").unwrap();
                    assert_eq!(env.read(r, 4).unwrap(), b"ping");
                    // Socket server + client within one process group.
                    let listener = env.socket().unwrap();
                    env.bind(listener, 9100).unwrap();
                    env.listen(listener, 4).unwrap();
                    let client = env.socket().unwrap();
                    env.connect(client, 9100).unwrap();
                    let server_side = env.accept(listener).unwrap();
                    env.write(client, b"hello").unwrap();
                    assert_eq!(env.read(server_side, 5).unwrap(), b"hello");
                    // Signals: install a handler, have a child signal us
                    // while we are parked in a timer poll, and observe both
                    // the EINTR interruption and the delivered signal.
                    env.register_signal_handler(browsix_core::Signal::SIGUSR1).unwrap();
                    let my_pid = env.getpid();
                    let pinger = env
                        .spawn(
                            "/usr/bin/feature-pinger",
                            &["feature-pinger".to_string(), my_pid.to_string()],
                            browsix_runtime::SpawnStdio::inherit(),
                        )
                        .unwrap();
                    let interrupted = matches!(env.poll(&mut [], 30_000), Err(browsix_core::Errno::EINTR));
                    let saw_signal = env.pending_signals().contains(&browsix_core::Signal::SIGUSR1);
                    assert!(interrupted && saw_signal, "signal delivery must interrupt the poll");
                    // A straggler signal can interrupt this wait too; retry,
                    // as POSIX programs do around EINTR.
                    loop {
                        match env.wait(pinger as i32) {
                            Ok(_) => break,
                            Err(browsix_core::Errno::EINTR) => continue,
                            Err(e) => panic!("wait: {e}"),
                        }
                    }
                    // Readiness: O_NONBLOCK turns a would-block read into
                    // EAGAIN, a poll with nothing ready completes on its
                    // timeout, and data flips the same poll to ready.
                    let (nb_r, nb_w) = env.pipe().unwrap();
                    env.set_nonblocking(nb_r, true).unwrap();
                    assert_eq!(env.read(nb_r, 1).unwrap_err(), browsix_core::Errno::EAGAIN);
                    let mut pfds = [browsix_runtime::PollFd::readable(nb_r)];
                    assert_eq!(env.poll(&mut pfds, 1).unwrap(), 0);
                    env.write(nb_w, b"!").unwrap();
                    assert_eq!(env.poll(&mut pfds, -1).unwrap(), 1);
                    // Virtual memory: an anonymous private mapping accessed
                    // through the VM load/store syscalls, a private file
                    // mapping whose pages reference the page cache, and a
                    // POSIX shared-memory object mapped MAP_SHARED — stores
                    // to it land in shared memory with no data-path syscall.
                    use browsix_runtime::{MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED, PAGE_SIZE, PROT_READ, PROT_WRITE};
                    let anon = env
                        .mmap(
                            0,
                            PAGE_SIZE as u64,
                            PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS,
                            -1,
                            0,
                        )
                        .unwrap();
                    env.vm_write(anon.addr, b"vm").unwrap();
                    assert_eq!(env.vm_read(anon.addr, 2).unwrap(), b"vm");
                    env.munmap(anon.addr, anon.len).unwrap();
                    let file_fd = env.open("/probe.txt", browsix_fs::OpenFlags::read_only()).unwrap();
                    let mapped = env
                        .mmap(0, PAGE_SIZE as u64, PROT_READ, MAP_PRIVATE, file_fd, 0)
                        .unwrap();
                    assert_eq!(env.vm_read(mapped.addr, 5).unwrap(), b"probe");
                    env.munmap(mapped.addr, mapped.len).unwrap();
                    env.close(file_fd).unwrap();
                    let shm_flags = browsix_fs::OpenFlags {
                        create: true,
                        ..browsix_fs::OpenFlags::read_write()
                    };
                    let shm = env.shm_open("/probe-shm", shm_flags, 0o600).unwrap();
                    env.ftruncate(shm, PAGE_SIZE as u64).unwrap();
                    let shared = env
                        .mmap(0, PAGE_SIZE as u64, PROT_READ | PROT_WRITE, MAP_SHARED, shm, 0)
                        .unwrap();
                    shared.shared_write(0, b"shared").unwrap();
                    assert_eq!(shared.shared_read(0, 6).unwrap(), b"shared");
                    env.munmap(shared.addr, shared.len).unwrap();
                    env.close(shm).unwrap();
                    env.shm_unlink("/probe-shm").unwrap();
                    // Process metadata: getrusage reports the kernel's
                    // per-task accounting — by this point the probe has
                    // issued far more than a handful of system calls.
                    let usage = env.getrusage().unwrap();
                    let syscalls = usage
                        .iter()
                        .find(|(k, _)| k == "syscalls")
                        .map(|(_, v)| *v)
                        .expect("getrusage must report a `syscalls` counter");
                    assert!(syscalls >= 10, "implausible syscall count: {syscalls}");
                    0
                }),
            )
            .with_profile(profile),
        ),
    );
    config.registry.register(
        "/usr/bin/feature-pinger",
        Arc::new(
            NodeLauncher::new(
                "feature-pinger",
                guest("feature-pinger", |env: &mut dyn RuntimeEnv| {
                    let target: u32 = env.args()[1].parse().unwrap();
                    // The parent issues its 30 s poll immediately after the
                    // spawn returns; half a second is far past any plausible
                    // scheduling delay, so the kill lands on a parked poll.
                    let _ = env.poll(&mut [], 500);
                    env.kill(target, browsix_core::Signal::SIGUSR1).unwrap();
                    0
                }),
            )
            .with_profile(ExecutionProfile::instant(SyscallConvention::Async)),
        ),
    );
    // A second probe under the synchronous convention: its client registers
    // a persistent syscall ring, so every call below is submitted through
    // shared memory (sq_polled / doorbells / cq_posted), and the data path
    // moves a file into a pipe via sendfile and between pipes via splice
    // without the bytes entering the guest (sendfile_bytes /
    // zero_copy_pages).  This is what makes the ring and zero-copy counters
    // in the Table 1 driver's report non-zero.
    config.registry.register(
        "/usr/bin/ring-probe",
        Arc::new(
            browsix_runtime::EmscriptenLauncher::new(
                "ring-probe",
                guest("ring-probe", |env: &mut dyn RuntimeEnv| {
                    let payload: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
                    env.write_file("/ring-probe.bin", &payload).unwrap();
                    let fd = env.open("/ring-probe.bin", browsix_fs::OpenFlags::read_only()).unwrap();
                    let (first_r, first_w) = env.pipe().unwrap();
                    let (second_r, second_w) = env.pipe().unwrap();
                    let mut offset = 0u64;
                    while offset < payload.len() as u64 {
                        match env.sendfile(first_w, fd, offset as i64, payload.len() as u64 - offset) {
                            Ok(0) => break,
                            Ok(moved) => offset += moved,
                            Err(e) => panic!("sendfile: {e}"),
                        }
                    }
                    assert_eq!(offset, payload.len() as u64);
                    let mut moved_total = 0u64;
                    while moved_total < payload.len() as u64 {
                        match env.splice(first_r, second_w, payload.len() as u64) {
                            Ok(0) => break,
                            Ok(moved) => moved_total += moved,
                            Err(e) => panic!("splice: {e}"),
                        }
                    }
                    assert_eq!(moved_total, payload.len() as u64);
                    let mut received = Vec::new();
                    while received.len() < payload.len() {
                        let chunk = env.read(second_r, 64 * 1024).unwrap();
                        if chunk.is_empty() {
                            break;
                        }
                        received.extend_from_slice(&chunk);
                    }
                    assert_eq!(received, payload, "zero-copy path corrupted the bytes");
                    0
                }),
                browsix_runtime::EmscriptenMode::AsmJs,
            )
            .with_profile(ExecutionProfile::instant(SyscallConvention::Sync)),
        ),
    );
    let kernel = Kernel::boot(config);
    let handle = kernel.spawn("/usr/bin/feature-probe", &["feature-probe"], &[]).unwrap();
    let status = handle.wait();
    if status.success() {
        verified.extend([
            "filesystem",
            "socket clients",
            "socket servers",
            "processes",
            "pipes",
            "signals",
        ]);
    }
    let ring_handle = kernel.spawn("/usr/bin/ring-probe", &["ring-probe"], &[]).unwrap();
    assert!(ring_handle.wait().success(), "ring probe failed");
    let stats = kernel.stats();
    let per_shard = kernel.stats_per_shard();
    kernel.shutdown();
    (verified, stats, per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browsix_rows_are_fully_featured_and_baselines_are_not() {
        let table = environment_feature_table();
        assert_eq!(table.len(), 7);
        for row in &table {
            let full = row.full_support();
            if row.name.starts_with("BROWSIX") {
                assert!(full, "{} should be fully featured", row.name);
            } else {
                assert!(!full, "{} should not be fully featured", row.name);
            }
            assert_eq!(row.cells().len(), 7);
        }
    }

    #[test]
    fn the_browsix_row_is_backed_by_running_code() {
        let (verified, stats) = verify_browsix_row_with_stats();
        assert_eq!(verified.len(), 6, "verified: {verified:?}");
        // The ring probe ran under the sync convention: its syscalls went
        // through the shared-memory ring and its file bytes moved kernel-side.
        assert!(stats.sq_polled > 0, "no ring submissions recorded");
        assert!(stats.cq_posted > 0, "no ring completions recorded");
        assert!(stats.doorbells > 0, "no doorbells recorded");
        assert!(stats.sendfile_bytes >= 2 * 16 * 1024, "zero-copy bytes missing");
        assert!(stats.zero_copy_pages >= 4, "zero-copy pages missing");
    }
}
