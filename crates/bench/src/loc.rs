//! Experiment E1 (Figure 2): the component line-count inventory.
//!
//! The paper reports the size of each Browsix component (kernel, BrowserFS
//! modifications, shared syscall module, per-language runtime integrations).
//! This module produces the same style of inventory for this repository by
//! counting non-blank lines of Rust source per crate.

use std::path::{Path, PathBuf};

/// Line counts for one component (crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLines {
    /// Component name (crate directory).
    pub component: String,
    /// The Browsix component it corresponds to.
    pub corresponds_to: &'static str,
    /// Non-blank lines of Rust source.
    pub lines: usize,
    /// Number of `.rs` files.
    pub files: usize,
}

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn count_rust_lines(dir: &Path) -> (usize, usize) {
    let mut lines = 0;
    let mut files = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let (l, f) = count_rust_lines(&path);
            lines += l;
            files += f;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                lines += text.lines().filter(|l| !l.trim().is_empty()).count();
                files += 1;
            }
        }
    }
    (lines, files)
}

/// The component-to-paper mapping used in the Figure 2 analogue.
pub fn component_mapping() -> Vec<(&'static str, &'static str)> {
    vec![
        ("crates/core", "Kernel (2,249 LoC in the paper)"),
        ("crates/fs", "BrowserFS modifications (1,231 LoC)"),
        (
            "crates/browser",
            "Browser platform substrate (provided by the browser in the paper)",
        ),
        (
            "crates/runtime",
            "Shared syscall module + runtime glue (421 LoC + integrations)",
        ),
        ("crates/http", "Node HTTP module replacement"),
        ("crates/utils", "Node.js utilities"),
        ("crates/shell", "dash (compiled, not counted in the paper)"),
        ("crates/apps", "Case studies (LaTeX editor, meme generator, terminal)"),
        ("crates/bench", "Evaluation harness"),
        ("tests", "Integration tests"),
    ]
}

/// Counts non-blank Rust lines for every component of this workspace.
pub fn count_workspace_lines() -> Vec<ComponentLines> {
    let root = workspace_root();
    component_mapping()
        .into_iter()
        .map(|(dir, corresponds_to)| {
            let (lines, files) = count_rust_lines(&root.join(dir));
            ComponentLines {
                component: dir.to_owned(),
                corresponds_to,
                lines,
                files,
            }
        })
        .collect()
}

/// Total non-blank Rust lines across all components.
pub fn total_lines(components: &[ComponentLines]) -> usize {
    components.iter().map(|c| c.lines).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_is_counted_and_nonempty() {
        let components = count_workspace_lines();
        assert_eq!(components.len(), component_mapping().len());
        for component in &components {
            assert!(component.lines > 0, "{} has no lines", component.component);
            assert!(component.files > 0, "{} has no files", component.component);
        }
        // The kernel is one of the largest components, as in the paper.
        let kernel = components.iter().find(|c| c.component == "crates/core").unwrap();
        assert!(kernel.lines > 1000);
        assert!(total_lines(&components) > 10_000);
    }
}
