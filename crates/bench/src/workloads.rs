//! Shared workloads for the Figure 9 utility measurements.

use std::sync::Arc;

use browsix_fs::{FileSystem, MemFs, MountedFs};

/// Size of the file `sha1sum` hashes — the paper hashes `/usr/bin/node`,
/// which is tens of megabytes; we use 8 MiB so the native run stays in the
/// low-millisecond range while preserving the ratios.
pub const SHA1_FILE_BYTES: usize = 8 * 1024 * 1024;

/// Number of entries in the directory `ls -l` lists (the paper lists
/// `/usr/bin`, a few hundred entries).
pub const LS_DIR_ENTRIES: usize = 200;

/// Deterministic pseudo-random filler (an xorshift generator) so the staged
/// workload is identical across runs without pulling in an RNG dependency at
/// the library level.
fn fill_deterministic(seed: u64, buffer: &mut [u8]) {
    let mut state = seed | 1;
    for chunk in buffer.chunks_mut(8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let bytes = state.to_le_bytes();
        let len = chunk.len();
        chunk.copy_from_slice(&bytes[..len]);
    }
}

/// Stages the Figure 9 files into `fs`: `/usr/bin/node` (a large binary) and
/// a populated `/usr/bin` directory.
pub fn stage_figure9_files(fs: &dyn FileSystem) {
    let _ = fs.mkdir("/usr");
    let _ = fs.mkdir("/usr/bin");
    let mut node_binary = vec![0u8; SHA1_FILE_BYTES];
    fill_deterministic(0xB40051C5, &mut node_binary);
    fs.write_file("/usr/bin/node", &node_binary)
        .expect("stage /usr/bin/node");
    for i in 0..LS_DIR_ENTRIES {
        let mut data = vec![0u8; 512 + (i % 37) * 16];
        fill_deterministic(0x1000 + i as u64, &mut data);
        fs.write_file(&format!("/usr/bin/tool-{i:03}"), &data)
            .expect("stage tool");
    }
}

/// A fresh in-memory file system with the Figure 9 files staged.
pub fn figure9_fs() -> Arc<MountedFs> {
    let fs = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
    stage_figure9_files(fs.as_ref());
    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_files_match_advertised_sizes() {
        let fs = figure9_fs();
        assert_eq!(fs.stat("/usr/bin/node").unwrap().size as usize, SHA1_FILE_BYTES);
        // node + the tool entries.
        assert_eq!(fs.read_dir("/usr/bin").unwrap().len(), LS_DIR_ENTRIES + 1);
    }
}
