//! Experiment E2 (Figure 3): the system-call inventory by class.

use std::collections::BTreeMap;

use browsix_core::{ByteSource, Syscall};

/// One representative instance of every system call the kernel implements,
/// used both to regenerate Figure 3 and to verify full dispatchability.
pub fn representative_syscalls() -> Vec<Syscall> {
    use browsix_core::Signal;
    use browsix_fs::OpenFlags;
    vec![
        Syscall::Fork {
            image: vec![],
            resume_point: 0,
        },
        Syscall::Spawn {
            path: "/usr/bin/ls".into(),
            args: vec![],
            env: vec![],
            cwd: None,
            stdio: [None; 3],
        },
        Syscall::Pipe2,
        Syscall::Wait4 { pid: -1, options: 0 },
        Syscall::Exit { code: 0 },
        Syscall::Kill {
            pid: 1,
            signal: Signal::SIGTERM,
        },
        Syscall::SignalAction {
            signal: Signal::SIGCHLD,
            action: browsix_core::SigAction::Handler { restart: false },
        },
        Syscall::Sigprocmask {
            how: browsix_core::SIG_BLOCK,
            mask: 0,
        },
        Syscall::Setpgid { pid: 0, pgid: 0 },
        Syscall::Getpgid { pid: 0 },
        Syscall::Tcsetpgrp { pgid: 1 },
        Syscall::Chdir { path: "/".into() },
        Syscall::GetCwd,
        Syscall::GetPid,
        Syscall::GetPPid,
        Syscall::Socket,
        Syscall::Bind { fd: 3, port: 80 },
        Syscall::GetSockName { fd: 3 },
        Syscall::Listen { fd: 3, backlog: 8 },
        Syscall::Accept { fd: 3 },
        Syscall::Connect { fd: 3, port: 80 },
        Syscall::Readdir { path: "/".into() },
        Syscall::Rmdir { path: "/tmp/x".into() },
        Syscall::Mkdir {
            path: "/tmp/x".into(),
            mode: 0o755,
        },
        Syscall::Open {
            path: "/etc/passwd".into(),
            flags: OpenFlags::read_only(),
            mode: 0,
        },
        Syscall::Close { fd: 3 },
        Syscall::Unlink { path: "/tmp/x".into() },
        Syscall::Seek {
            fd: 3,
            offset: 0,
            whence: 0,
        },
        Syscall::Pread {
            fd: 3,
            len: 16,
            offset: 0,
        },
        Syscall::Pwrite {
            fd: 3,
            data: ByteSource::Inline(vec![]),
            offset: 0,
        },
        Syscall::Read { fd: 3, len: 16 },
        Syscall::Write {
            fd: 3,
            data: ByteSource::Inline(vec![]),
        },
        Syscall::Dup { fd: 3 },
        Syscall::Dup2 { from: 3, to: 4 },
        Syscall::Truncate {
            path: "/tmp/x".into(),
            size: 0,
        },
        Syscall::Rename {
            from: "/a".into(),
            to: "/b".into(),
        },
        Syscall::Access {
            path: "/bin/sh".into(),
            mode: 0,
        },
        Syscall::Fstat { fd: 3 },
        Syscall::Stat {
            path: "/".into(),
            lstat: true,
        },
        Syscall::Stat {
            path: "/".into(),
            lstat: false,
        },
        Syscall::Readlink {
            path: "/proc/self".into(),
        },
        Syscall::Utimes {
            path: "/tmp/x".into(),
            atime_ms: 0,
            mtime_ms: 0,
        },
        Syscall::Ftruncate { fd: 3, size: 4096 },
        Syscall::Mmap {
            addr: 0,
            len: 4096,
            prot: 3,
            flags: 0x22,
            fd: -1,
            offset: 0,
        },
        Syscall::Munmap {
            addr: 0x1000_0000,
            len: 4096,
        },
        Syscall::Msync {
            addr: 0x1000_0000,
            len: 0,
        },
        Syscall::Mprotect {
            addr: 0x1000_0000,
            len: 4096,
            prot: 1,
        },
        Syscall::ShmOpen {
            name: "/ring".into(),
            flags: OpenFlags::read_write().to_bits(),
            mode: 0o600,
        },
        Syscall::ShmUnlink { name: "/ring".into() },
        Syscall::VmRead {
            addr: 0x1000_0000,
            len: 16,
        },
        Syscall::VmWrite {
            addr: 0x1000_0000,
            data: ByteSource::Inline(vec![]),
        },
        Syscall::Sendfile {
            out_fd: 4,
            in_fd: 3,
            offset: -1,
            len: 65536,
        },
        Syscall::Splice {
            fd_in: 3,
            fd_out: 4,
            len: 65536,
        },
        Syscall::RingSetup {
            sq_offset: 0,
            cq_offset: 16400,
            slots: 64,
            slot_bytes: 256,
            buf_offset: 32800,
            buf_count: 7,
            buf_bytes: 65536,
        },
    ]
}

/// Groups the implemented system calls by Figure 3 class.
pub fn syscall_inventory() -> BTreeMap<String, Vec<String>> {
    let mut inventory: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for call in representative_syscalls() {
        let entry = inventory.entry(call.class().to_owned()).or_default();
        let name = call.name().to_owned();
        if !entry.contains(&name) {
            entry.push(name);
        }
    }
    inventory
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_calls_are_all_present() {
        let inventory = syscall_inventory();
        let classes: Vec<&String> = inventory.keys().collect();
        assert_eq!(classes.len(), 8);
        let all: Vec<String> = inventory.values().flatten().cloned().collect();
        for expected in [
            "fork",
            "spawn",
            "pipe2",
            "wait4",
            "exit",
            "chdir",
            "getcwd",
            "getpid",
            "socket",
            "bind",
            "getsockname",
            "listen",
            "accept",
            "connect",
            "getdents",
            "rmdir",
            "mkdir",
            "open",
            "close",
            "unlink",
            "llseek",
            "pread",
            "pwrite",
            "access",
            "fstat",
            "lstat",
            "stat",
            "readlink",
            "utimes",
            "ftruncate",
            "mmap",
            "munmap",
            "msync",
            "mprotect",
            "shm_open",
            "shm_unlink",
            "vm_read",
            "vm_write",
            "sendfile",
            "splice",
            "ring_setup",
        ] {
            assert!(all.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn every_representative_call_round_trips_through_the_wire_codec() {
        use browsix_core::SyscallBatch;
        // One batch holding the entire inventory: every call must survive the
        // single codec both conventions share.
        let batch = SyscallBatch {
            entries: representative_syscalls(),
        };
        let decoded = SyscallBatch::decode(&batch.encode()).unwrap();
        for (decoded_call, call) in decoded.entries.iter().zip(representative_syscalls()) {
            assert_eq!(decoded_call.name(), call.name());
        }
        assert_eq!(decoded, batch);
    }
}
