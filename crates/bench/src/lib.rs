//! # browsix-bench — the harness that regenerates every table and figure
//!
//! Each experiment from the paper's evaluation (see DESIGN.md's experiment
//! index and EXPERIMENTS.md for results) has two entry points:
//!
//! * a **report binary** under `src/bin/` that prints the same rows the paper
//!   reports, runnable with `cargo run -p browsix-bench --bin <name>`;
//! * a **Criterion bench** under `benches/` for statistically sound timings,
//!   runnable with `cargo bench -p browsix-bench`.
//!
//! The functions here build the workloads and environments shared by both.

pub mod features;
pub mod loc;
pub mod syscalls;
pub mod utilities;
pub mod workloads;

pub use features::{environment_feature_table, FeatureRow};
pub use loc::{count_workspace_lines, ComponentLines};
pub use syscalls::syscall_inventory;
pub use utilities::{run_utility_benchmark, UtilityEnvironment, UtilityMeasurement};
pub use workloads::{figure9_fs, stage_figure9_files, LS_DIR_ENTRIES, SHA1_FILE_BYTES};

/// Formats a duration in seconds with millisecond precision, as the paper's
/// tables do.
pub fn fmt_seconds(duration: std::time::Duration) -> String {
    format!("{:.3}s", duration.as_secs_f64())
}

/// Formats a duration in milliseconds.
pub fn fmt_millis(duration: std::time::Duration) -> String {
    format!("{:.1} ms", duration.as_secs_f64() * 1e3)
}

/// Prints a simple aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_seconds(Duration::from_millis(1500)), "1.500s");
        assert_eq!(fmt_millis(Duration::from_micros(2500)), "2.5 ms");
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "sample",
            &["Command", "Native", "Browsix"],
            &[vec!["sha1sum".into(), "0.002s".into(), "0.189s".into()]],
        );
    }
}
