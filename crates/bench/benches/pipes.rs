//! Criterion bench for pipe throughput between two Browsix processes
//! (part of experiment E10).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use browsix_core::{BootConfig, Kernel};
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SpawnStdio, SyscallConvention};

const TRANSFER_BYTES: usize = 256 * 1024;

fn boot_pipe_kernel() -> Kernel {
    let config = BootConfig::in_memory();
    let profile = ExecutionProfile::instant(SyscallConvention::Async);
    config.registry.register(
        "/usr/bin/producer",
        Arc::new(
            NodeLauncher::new(
                "producer",
                guest("producer", |env: &mut dyn RuntimeEnv| {
                    let chunk = vec![42u8; 16 * 1024];
                    let mut sent = 0;
                    while sent < TRANSFER_BYTES {
                        sent += env.write(1, &chunk).unwrap_or(0);
                    }
                    0
                }),
            )
            .with_profile(profile.clone()),
        ),
    );
    config.registry.register(
        "/usr/bin/consumer",
        Arc::new(
            NodeLauncher::new(
                "consumer",
                guest("consumer", |env: &mut dyn RuntimeEnv| {
                    let (read_fd, write_fd) = env.pipe().unwrap();
                    let child = env
                        .spawn(
                            "/usr/bin/producer",
                            &["producer".to_string()],
                            SpawnStdio {
                                stdout: Some(write_fd),
                                ..SpawnStdio::default()
                            },
                        )
                        .unwrap();
                    env.close(write_fd).unwrap();
                    let mut received = 0;
                    loop {
                        let chunk = env.read(read_fd, 64 * 1024).unwrap_or_default();
                        if chunk.is_empty() {
                            break;
                        }
                        received += chunk.len();
                    }
                    let _ = env.wait(child as i32);
                    if received >= TRANSFER_BYTES {
                        0
                    } else {
                        1
                    }
                }),
            )
            .with_profile(profile),
        ),
    );
    Kernel::boot(config)
}

fn bench_pipes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Bytes(TRANSFER_BYTES as u64));
    group.bench_function("producer_to_consumer", |b| {
        b.iter(|| {
            let kernel = boot_pipe_kernel();
            let handle = kernel.spawn("/usr/bin/consumer", &["consumer"], &[]).unwrap();
            assert!(handle.wait().success());
            kernel.shutdown();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipes);
criterion_main!(benches);
