//! Criterion bench for experiment E9: per-call cost of a direct in-process
//! call vs Browsix asynchronous and synchronous system calls, plus the
//! structured-clone cost as payload size grows.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use browsix_core::{BootConfig, Kernel};
use browsix_fs::{FileSystem, MemFs, MountedFs, OpenFlags};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention,
};

/// Boots a kernel with a guest that performs `calls` getpid system calls and
/// returns; measures one whole process run.
fn run_syscall_loop(sync: bool, calls: u64, payload: usize) -> Kernel {
    let config = BootConfig::in_memory();
    let profile = ExecutionProfile::instant(if sync {
        SyscallConvention::Sync
    } else {
        SyscallConvention::Async
    });
    let program = guest("loop", move |env: &mut dyn RuntimeEnv| {
        let fd = env.open("/scratch", OpenFlags::write_create_truncate()).unwrap();
        let buffer = vec![7u8; payload];
        for _ in 0..calls {
            if payload == 0 {
                let _ = env.getpid();
            } else {
                let _ = env.pwrite(fd, &buffer, 0);
            }
        }
        let _ = env.close(fd);
        0
    });
    let launcher: Arc<dyn browsix_core::ProgramLauncher> = if sync {
        Arc::new(EmscriptenLauncher::new("loop", program, EmscriptenMode::AsmJs).with_profile(profile))
    } else {
        Arc::new(NodeLauncher::new("loop", program).with_profile(profile))
    };
    config.registry.register("/usr/bin/loop", launcher);
    Kernel::boot(config)
}

fn bench_conventions(c: &mut Criterion) {
    let mut group = c.benchmark_group("syscall_latency");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // Baseline: direct in-process call (the native system-call analogue).
    let fs = MountedFs::new(Arc::new(MemFs::new()));
    group.bench_function("direct_call", |b| b.iter(|| fs.stat("/").unwrap()));

    for (name, sync) in [("async_convention", false), ("sync_convention", true)] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters.min(20) {
                    let calls = 500;
                    let kernel = run_syscall_loop(sync, calls, 0);
                    let start = std::time::Instant::now();
                    let handle = kernel.spawn("/usr/bin/loop", &["loop"], &[]).unwrap();
                    assert!(handle.wait().success());
                    total += start.elapsed() / calls as u32;
                    kernel.shutdown();
                }
                total * (iters.max(1) as u32) / (iters.clamp(1, 20) as u32)
            })
        });
    }

    // Structured-clone cost: asynchronous writes of growing payloads.
    for payload in [1usize << 10, 16 << 10, 64 << 10] {
        group.bench_with_input(
            BenchmarkId::new("async_write_payload", payload),
            &payload,
            |b, &payload| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters.min(10) {
                        let calls = 200;
                        let kernel = run_syscall_loop(false, calls, payload);
                        let start = std::time::Instant::now();
                        let handle = kernel.spawn("/usr/bin/loop", &["loop"], &[]).unwrap();
                        assert!(handle.wait().success());
                        total += start.elapsed() / calls as u32;
                        kernel.shutdown();
                    }
                    total * (iters.max(1) as u32) / (iters.clamp(1, 10) as u32)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conventions);
criterion_main!(benches);
