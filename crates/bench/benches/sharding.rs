//! Criterion bench for the sharded kernel: does work spread across shards?
//!
//! * `httpd_rps_{1,2,4}shard` — the same fixed workload (eight `httpd`
//!   servers on ports 8000–8007, 16 requests per iteration issued by eight
//!   concurrent host clients) against kernels booted with 1, 2 and 4 event
//!   loops.  Round-robin spawn placement spreads the servers evenly over
//!   shards, so each listener's syscall traffic is handled by its own
//!   kernel thread.  The
//!   platform charges a 2 ms `postMessage` latency per kernel→worker
//!   message (slept on the posting shard thread, exactly like the real
//!   structured-clone hop this models), so a single event loop serializes
//!   the whole fleet's reply traffic while N shards overlap it — wall time
//!   per iteration is the inverse of requests-per-second.
//!   `scripts/bench_smoke.sh` asserts the 4-shard kernel is >= 2.5x the
//!   1-shard kernel on this workload.
//! * `cross_shard_pipe_pingpong` — protocol overhead, not scaling: a parent
//!   and its child land on different shards of a 2-shard kernel
//!   (round-robin placement makes consecutive spawns alternate), and every
//!   write/read round trip over their two pipes is a RemoteWrite/RemoteRead
//!   `ShardMsg` exchange plus a cross-shard wakeup.  Runs on the delay-free
//!   platform so the message passing itself is what's measured.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use browsix_browser::PlatformConfig;
use browsix_core::Kernel;
use browsix_http::{HttpRequest, Method};
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SpawnStdio, SyscallConvention};

/// Ports 8000..8007: one `httpd` listener per port — two per shard on the
/// 4-shard kernel.  Each guest serves requests sequentially, so two
/// listeners per shard keep every kernel thread saturated without letting a
/// single worker's serial request handling become the bottleneck.
const HTTPD_PORTS: [u16; 8] = [8000, 8001, 8002, 8003, 8004, 8005, 8006, 8007];
/// Host-side client threads issuing requests concurrently.
const CLIENTS: usize = 8;
/// Requests per client per iteration (16 total, 2 per listener).
const REQUESTS_PER_CLIENT: usize = 2;
/// Pipe round trips per `cross_shard_pipe_pingpong` iteration.
const PINGPONGS: usize = 16;

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

/// The Firefox cost model with the `postMessage` latency raised to 2 ms —
/// large enough that the posting thread sleeps (rather than spins) for the
/// bulk of each charge, so independent shard threads genuinely overlap
/// their message costs even on a single host core.
fn high_latency_platform() -> PlatformConfig {
    let mut platform = PlatformConfig::firefox();
    platform.post_message_latency = Duration::from_millis(2);
    platform
}

/// Boots a `shards`-shard kernel and starts one `httpd` per port in
/// [`HTTPD_PORTS`]; round-robin placement spreads the servers over shards.
fn boot_httpd_fleet(shards: usize) -> Kernel {
    let config = browsix_apps::default_config()
        .with_shards(shards)
        .with_platform(high_latency_platform());
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(NodeLauncher::new("httpd", browsix_apps::httpd_program()).with_profile(instant_async())),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant_async());
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    for port in HTTPD_PORTS {
        kernel
            .spawn("/usr/bin/httpd", &["httpd", "--port", &port.to_string()], &[])
            .expect("start httpd");
        assert!(
            kernel.wait_for_port(port, Duration::from_secs(10)),
            "httpd did not start listening on {port}"
        );
    }
    kernel
}

/// Issues the fixed 16-request workload: [`CLIENTS`] host threads, each
/// walking the port list round-robin from a different offset so every
/// listener sees concurrent traffic.
fn drive_requests(kernel: &Kernel) {
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let port = HTTPD_PORTS[(client + i) % HTTPD_PORTS.len()];
                    let response = kernel
                        .http_request(
                            port,
                            HttpRequest::new(Method::Get, "/hello.txt"),
                            Duration::from_secs(30),
                        )
                        .expect("httpd request");
                    assert!(response.is_success());
                    black_box(response.body.len());
                }
            });
        }
    });
}

fn bench_httpd_rps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let kernel = boot_httpd_fleet(shards);
        group.bench_function(format!("httpd_rps_{shards}shard"), |b| {
            b.iter(|| drive_requests(&kernel));
        });
        kernel.shutdown();
    }
    group.finish();
}

fn bench_pipe_pingpong(c: &mut Criterion) {
    // Delay-free platform: measure the cross-shard protocol, not modelled
    // browser latencies.
    let config = browsix_apps::default_config().with_shards(2);
    config.registry.register(
        "/usr/bin/echoer",
        Arc::new(
            NodeLauncher::new(
                "echoer",
                guest("echoer", |env: &mut dyn RuntimeEnv| {
                    // Echo stdin to stdout one message at a time until EOF.
                    loop {
                        let data = env.read(0, 4096).unwrap();
                        if data.is_empty() {
                            return 0;
                        }
                        env.write(1, &data).unwrap();
                    }
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    config.registry.register(
        "/usr/bin/pingpong",
        Arc::new(
            NodeLauncher::new(
                "pingpong",
                guest("pingpong", move |env: &mut dyn RuntimeEnv| {
                    // Spawned round-robin right after this parent, the child
                    // lands on the other shard of the 2-shard kernel: both
                    // pipes span shards, so each round trip below is a
                    // remote write + remote read in each direction.
                    let (their_stdin_r, their_stdin_w) = env.pipe().unwrap();
                    let (their_stdout_r, their_stdout_w) = env.pipe().unwrap();
                    let child = env
                        .spawn(
                            "/usr/bin/echoer",
                            &["echoer".to_string()],
                            SpawnStdio {
                                stdin: Some(their_stdin_r),
                                stdout: Some(their_stdout_w),
                                ..SpawnStdio::default()
                            },
                        )
                        .unwrap();
                    env.close(their_stdin_r).unwrap();
                    env.close(their_stdout_w).unwrap();
                    for i in 0..PINGPONGS {
                        let ping = format!("ping {i}\n");
                        env.write(their_stdin_w, ping.as_bytes()).unwrap();
                        let pong = env.read(their_stdout_r, 4096).unwrap();
                        assert_eq!(pong, ping.as_bytes());
                    }
                    env.close(their_stdin_w).unwrap();
                    env.close(their_stdout_r).unwrap();
                    env.wait(child as i32).unwrap();
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant_async());

    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    group.bench_function("cross_shard_pipe_pingpong", |b| {
        b.iter(|| {
            let handle = kernel
                .spawn("/usr/bin/pingpong", &["pingpong"], &[])
                .expect("spawn pingpong");
            let status = handle
                .wait_timeout(Duration::from_secs(30))
                .expect("pingpong must finish");
            assert!(status.success(), "stderr: {}", handle.stderr_string());
        });
    });
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, bench_httpd_rps, bench_pipe_pingpong);
criterion_main!(benches);
