//! Criterion bench for the file-system layer (part of experiment E10):
//! lazy vs eager overlay initialisation and HTTP-backed lazy loading.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use browsix_apps::latex::texlive_distribution;
use browsix_browser::{NetworkProfile, RemoteEndpoint};
use browsix_fs::{FileSystem, HttpFs, MemFs, OverlayFs, OverlayMode};

fn texlive_http_fs(network: NetworkProfile) -> Arc<dyn FileSystem> {
    let (files, manifest) = texlive_distribution(60);
    let endpoint = RemoteEndpoint::with_static_files(files, network);
    Arc::new(HttpFs::new(endpoint, manifest))
}

fn bench_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("filesystem");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("overlay_mount_lazy", |b| {
        b.iter(|| {
            let overlay = OverlayFs::new(texlive_http_fs(NetworkProfile::instant()), OverlayMode::Lazy);
            overlay.read_file("/article.cls").unwrap()
        })
    });
    group.bench_function("overlay_mount_eager", |b| {
        b.iter(|| {
            let overlay = OverlayFs::new(texlive_http_fs(NetworkProfile::instant()), OverlayMode::Eager);
            overlay.read_file("/article.cls").unwrap()
        })
    });

    let memfs = MemFs::new();
    memfs.write_file("/data.bin", &vec![3u8; 256 * 1024]).unwrap();
    group.bench_function("memfs_read_256k", |b| b.iter(|| memfs.read_file("/data.bin").unwrap()));
    group.bench_function("memfs_path_lookup_miss", |b| {
        b.iter(|| assert!(memfs.stat("/no/such/path").is_err()))
    });
    group.finish();
}

criterion_group!(benches, bench_fs);
criterion_main!(benches);
