//! Criterion bench for the file-system layer (part of experiment E10):
//! lazy vs eager overlay initialisation, HTTP-backed lazy loading, and the
//! handle-based VFS data path versus legacy path-per-operation dispatch.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use browsix_apps::latex::texlive_distribution;
use browsix_browser::{NetworkProfile, RemoteEndpoint};
use browsix_fs::{FileSystem, HttpFs, MemFs, MountedFs, OpenFlags, OverlayFs, OverlayMode};

fn texlive_http_fs(network: NetworkProfile) -> Arc<dyn FileSystem> {
    let (files, manifest) = texlive_distribution(60);
    let endpoint = RemoteEndpoint::with_static_files(files, network);
    Arc::new(HttpFs::new(endpoint, manifest))
}

fn bench_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("filesystem");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    group.bench_function("overlay_mount_lazy", |b| {
        b.iter(|| {
            let overlay = OverlayFs::new(texlive_http_fs(NetworkProfile::instant()), OverlayMode::Lazy);
            overlay.read_file("/article.cls").unwrap()
        })
    });
    group.bench_function("overlay_mount_eager", |b| {
        b.iter(|| {
            let overlay = OverlayFs::new(texlive_http_fs(NetworkProfile::instant()), OverlayMode::Eager);
            overlay.read_file("/article.cls").unwrap()
        })
    });

    let memfs = MemFs::new();
    memfs.write_file("/data.bin", &vec![3u8; 256 * 1024]).unwrap();
    group.bench_function("memfs_read_256k", |b| b.iter(|| memfs.read_file("/data.bin").unwrap()));
    group.bench_function("memfs_path_lookup_miss", |b| {
        b.iter(|| assert!(memfs.stat("/no/such/path").is_err()))
    });
    group.finish();
}

/// Handle-based descriptor I/O versus legacy path-per-operation dispatch:
/// a 1 MiB sequential read in 4 KiB chunks through the full mount table,
/// against a file nested a few directories deep (so the per-op path walk is
/// realistic).  The handle variant resolves the path once at open; the
/// path-per-op variant re-routes and re-walks on every chunk, exactly what
/// descriptor reads did before the inode/handle VFS.
fn bench_fs_handles(c: &mut Criterion) {
    const TOTAL: usize = 1024 * 1024;
    const CHUNK: usize = 4096;
    const PATH: &str = "/data/project/src/blob.bin";

    let fs = MountedFs::new(Arc::new(MemFs::new()));
    fs.mkdir("/data").unwrap();
    fs.mkdir("/data/project").unwrap();
    fs.mkdir("/data/project/src").unwrap();
    fs.write_file(PATH, &vec![9u8; TOTAL]).unwrap();

    let mut group = c.benchmark_group("fs_handles");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("handle_seq_read_1m", |b| {
        b.iter(|| {
            let handle = fs.open_handle(PATH, OpenFlags::read_only()).unwrap();
            let mut total = 0;
            for i in 0..(TOTAL / CHUNK) {
                total += handle.read_at((i * CHUNK) as u64, CHUNK).unwrap().len();
            }
            assert_eq!(total, TOTAL);
        })
    });
    group.bench_function("path_per_op_seq_read_1m", |b| {
        b.iter(|| {
            let mut total = 0;
            for i in 0..(TOTAL / CHUNK) {
                total += fs.read_at(PATH, (i * CHUNK) as u64, CHUNK).unwrap().len();
            }
            assert_eq!(total, TOTAL);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fs, bench_fs_handles);
criterion_main!(benches);
