//! Criterion bench for the wait-queue subsystem: what one wakeup costs.
//!
//! The old kernel kept every blocked system call in one flat pending list
//! and re-tried the whole list on every kernel event — O(all blocked calls)
//! per wakeup.  The wait-queue design parks each blocked call on the queue
//! of exactly the resource it waits for, so delivering a wakeup costs
//! O(waiters on that one queue), independent of how many other calls are
//! blocked.
//!
//! * `wake_one_{1,256}` — deliver one wakeup through a [`WaitTable`] holding
//!   1 or 256 parked waiters (each on its own stream queue).  The two must
//!   cost the same: wakeup cost is independent of the blocked-waiter count.
//! * `rescan_{1,256}` — the same wakeup delivered the old way: scan every
//!   pending entry, probing its stream for readiness, to find the single
//!   ready one.  At 256 waiters this pays 256 stream probes per wakeup.
//! * `httpd_request` — end-to-end readiness: one HTTP request against the
//!   poll-driven `httpd` guest (accept, read, respond and drain, all via
//!   wait-queue wakeups and `O_NONBLOCK`).
//!
//! `scripts/bench_smoke.sh` asserts `wake_one_256` beats `rescan_256` by at
//! least 5x.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use browsix_core::kernel::{WaitChannel, WaitTable};
use browsix_core::{StreamId, StreamTable};
use browsix_http::{HttpRequest, Method};
use browsix_runtime::{ExecutionProfile, NodeLauncher, SyscallConvention};

const WAITER_COUNTS: [usize; 2] = [1, 256];

fn bench_wakeup(c: &mut Criterion) {
    let mut group = c.benchmark_group("readiness");
    group.sample_size(10);

    for &n in &WAITER_COUNTS {
        // New design: the woken queue is found by key; everyone else stays
        // asleep untouched.
        group.bench_function(format!("wake_one_{n}"), |b| {
            let mut table: WaitTable<usize> = WaitTable::new();
            for i in 0..n {
                table.park(vec![WaitChannel::StreamReadable(i as u64)], i);
            }
            let target = WaitChannel::StreamReadable((n - 1) as u64);
            b.iter(|| {
                // Deliver many wakeups per sample so per-iteration cost
                // dominates the measurement noise.
                for _ in 0..1024 {
                    let woken = table.take_channel(target);
                    // The retried waiter re-parks (the still-blocked path),
                    // restoring the table for the next round.
                    for payload in woken {
                        table.park(vec![target], payload);
                    }
                }
            });
        });

        // Old design: one flat pending list, fully re-tried per event.  Each
        // entry's retry is a stream-table probe (exactly what the old
        // `poll_pending` did via `try_read_fd`).
        group.bench_function(format!("rescan_{n}"), |b| {
            let mut streams = StreamTable::new();
            let pending: Vec<StreamId> = (0..n).map(|_| streams.create()).collect();
            for &id in &pending {
                let stream = streams.get_mut(id).unwrap();
                stream.readers = 1;
                stream.writers = 1;
            }
            // Exactly one entry is ready, like one wakeup arriving.
            let ready = *pending.last().unwrap();
            streams.get_mut(ready).unwrap().push(b"x");
            b.iter(|| {
                for _ in 0..1024 {
                    let mut completed = 0usize;
                    for &id in &pending {
                        if streams.get(id).is_some_and(|s| s.read_ready()) {
                            // "Complete" the entry: consume and restore.
                            let data = streams.get_mut(id).unwrap().pop(1);
                            streams.get_mut(id).unwrap().push(&data);
                            completed += 1;
                        }
                    }
                    black_box(completed);
                }
            });
        });
    }
    group.finish();
}

fn bench_httpd(c: &mut Criterion) {
    let config = browsix_apps::default_config();
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(
            NodeLauncher::new("httpd", browsix_apps::httpd_program())
                .with_profile(ExecutionProfile::instant(SyscallConvention::Async)),
        ),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, ExecutionProfile::instant(SyscallConvention::Async));
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    let server = kernel.spawn("/usr/bin/httpd", &["httpd"], &[]).expect("start httpd");
    assert!(
        kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)),
        "httpd did not start listening"
    );

    let mut group = c.benchmark_group("readiness");
    group.sample_size(10);
    group.bench_function("httpd_request", |b| {
        b.iter(|| {
            let response = kernel
                .http_request(
                    browsix_apps::HTTPD_PORT,
                    HttpRequest::new(Method::Get, "/hello.txt"),
                    Duration::from_secs(30),
                )
                .expect("httpd request");
            assert!(response.is_success());
            black_box(response.body.len());
        });
    });
    group.finish();

    let _ = kernel.kill(server.pid, browsix_core::Signal::SIGKILL);
    kernel.shutdown();
}

/// The zero-copy data path end-to-end: one request for the 32 KiB payload
/// file against `httpd` serving it over `sendfile` (page cache → socket,
/// bytes never entering the guest) versus the classic read-it-then-write-it
/// copy path (`--copy`).  Runs on the Chrome cost model so the copy path's
/// extra read/write round trips and its two structured clones of the body
/// are charged what they actually cost — on the delay-free test platform
/// the difference drowns in boot-to-boot noise.  `scripts/bench_smoke.sh`
/// asserts sendfile wins.
fn bench_httpd_payload(c: &mut Criterion) {
    use browsix_browser::PlatformConfig;
    let mut group = c.benchmark_group("readiness");
    group.sample_size(10);
    for (name, args) in [
        ("httpd_payload_sendfile", &["httpd"][..]),
        ("httpd_payload_copy", &["httpd", "--copy"][..]),
    ] {
        let config = browsix_apps::default_config().with_platform(PlatformConfig::chrome());
        config.registry.register(
            "/usr/bin/httpd",
            Arc::new(
                NodeLauncher::new("httpd", browsix_apps::httpd_program())
                    .with_profile(ExecutionProfile::instant(SyscallConvention::Async)),
            ),
        );
        let kernel = browsix_apps::boot_standard_kernel(config, ExecutionProfile::instant(SyscallConvention::Async));
        browsix_apps::stage_httpd_root(kernel.fs().as_ref());
        let server = kernel.spawn("/usr/bin/httpd", args, &[]).expect("start httpd");
        assert!(
            kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)),
            "httpd did not start listening"
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let response = kernel
                    .http_request(
                        browsix_apps::HTTPD_PORT,
                        HttpRequest::new(Method::Get, "/payload.bin"),
                        Duration::from_secs(30),
                    )
                    .expect("payload request");
                assert!(response.is_success());
                assert_eq!(response.body.len(), 32 * 1024);
                black_box(response.body.len());
            });
        });
        let _ = kernel.kill(server.pid, browsix_core::Signal::SIGKILL);
        kernel.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_wakeup, bench_httpd, bench_httpd_payload);
criterion_main!(benches);
