//! Criterion bench for the virtual-memory subsystem: copy-on-write fork
//! versus the old image-copy fork, and `mmap`-style page-cache references
//! versus `read()` copies.
//!
//! The headline target: forking a fully-resident 1 MiB address space must be
//! at least 10x cheaper than cloning a 1 MiB image, because COW fork is
//! O(regions) — a region-table clone plus one refcount bump per resident
//! page — while the image-copy baseline is O(image bytes).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use browsix_browser::{NetworkProfile, RemoteEndpoint, StaticFiles};
use browsix_core::{AddressSpace, PAGE_SIZE, PROT_READ, PROT_WRITE};
use browsix_fs::{FileHandle, FileSystem, HttpFs, OpenFlags};

/// The fork image size the acceptance target is stated at.
const IMAGE: usize = 1024 * 1024;

fn bench_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // A parent with a fully-resident 1 MiB mapping: every page touched, so
    // the fork has the maximum number of pages to share (worst case).
    let mut parent = AddressSpace::new();
    let base = parent.map_anonymous(0, IMAGE as u64, PROT_READ | PROT_WRITE).unwrap();
    let fill = vec![1u8; PAGE_SIZE];
    for page in 0..(IMAGE / PAGE_SIZE) {
        parent.write(base + (page * PAGE_SIZE) as u64, &fill).unwrap();
    }
    group.bench_function("cow_fork_1m", |b| {
        b.iter(|| {
            let (child, delta) = parent.fork_clone();
            assert_eq!(delta.pages_shared as usize, IMAGE / PAGE_SIZE);
            child
        })
    });
    // The pre-VM fork: the runtime snapshots the process image into a
    // `Vec<u8>` and the kernel copies it to the child — O(image bytes).
    let image = vec![7u8; IMAGE];
    group.bench_function("image_copy_fork_1m", |b| b.iter(|| image.clone()));

    // mmap of a file whose pages sit in the HTTP page cache (4 KiB pages so
    // cache pages align with VM pages and mapping is an Arc clone per page)
    // versus read()-style copies of the same 1 MiB.
    let files = StaticFiles::new();
    files.insert("/blob.bin", vec![9u8; IMAGE]);
    let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
    let fs = HttpFs::new(endpoint, vec![("/blob.bin".to_string(), IMAGE as u64)]).with_page_size(PAGE_SIZE);
    let handle: Arc<dyn FileHandle> = fs.open_handle("/blob.bin", OpenFlags::read_only()).unwrap();
    // Warm the cache: the comparison is page references vs byte copies, not
    // network fetch cost.
    handle.read_at(0, IMAGE).unwrap();

    group.bench_function("mmap_file_1m", |b| {
        b.iter(|| {
            let mut space = AddressSpace::new();
            let (mapped, delta) = space.map_file(&handle, 0, IMAGE as u64, 0, PROT_READ).unwrap();
            assert_eq!(delta.pages_shared as usize, IMAGE / PAGE_SIZE);
            mapped
        })
    });
    group.bench_function("read_copy_1m", |b| {
        b.iter(|| {
            let mut total = 0;
            for page in 0..(IMAGE / PAGE_SIZE) {
                total += handle.read_at((page * PAGE_SIZE) as u64, PAGE_SIZE).unwrap().len();
            }
            assert_eq!(total, IMAGE);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
