//! Criterion bench for experiment E5 (Figure 9): sha1sum and ls under the
//! three execution environments.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use browsix_bench::utilities::{run_utility_benchmark, UtilityEnvironment};

fn bench_utilities(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_utilities");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for command in ["sha1sum /usr/bin/node", "ls -l /usr/bin"] {
        for environment in [
            UtilityEnvironment::Native,
            UtilityEnvironment::NodeJs,
            UtilityEnvironment::Browsix,
        ] {
            let id = BenchmarkId::new(environment.label(), command);
            group.bench_with_input(id, &(environment, command), |b, &(environment, command)| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    let runs = iters.clamp(1, 5);
                    for _ in 0..runs {
                        let m = run_utility_benchmark(environment, command, true);
                        assert_eq!(m.exit_code, 0);
                        total += m.elapsed;
                    }
                    total * (iters as u32) / (runs as u32)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_utilities);
criterion_main!(benches);
