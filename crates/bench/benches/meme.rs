//! Criterion bench for experiments E7/E8: the meme generator's request
//! latencies across deployments.  The GopherJS compute cost is scaled by 0.1
//! to keep iterations short while preserving the server-side vs in-browser
//! ratio.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use browsix_apps::meme::{MemeClient, MemeEnvironment, RemoteMemeService};
use browsix_browser::{NetworkProfile, PlatformConfig, RemoteEndpoint};
use browsix_runtime::ExecutionProfile;

const SCALE: f64 = 0.1;

fn client(platform: PlatformConfig) -> MemeClient {
    MemeClient::new(
        MemeEnvironment::boot(
            platform,
            ExecutionProfile::gopherjs().scaled(SCALE),
            NetworkProfile::ec2(),
            true,
        ),
        true,
    )
}

fn bench_meme(c: &mut Criterion) {
    let mut group = c.benchmark_group("meme_generator");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    let native = RemoteEndpoint::new(Arc::new(RemoteMemeService::new()), NetworkProfile::localhost());
    let remote = RemoteEndpoint::new(Arc::new(RemoteMemeService::new()), NetworkProfile::ec2());
    group.bench_function("list_native_local", |b| {
        b.iter(|| native.fetch("/api/backgrounds").unwrap())
    });
    group.bench_function("list_remote_ec2", |b| {
        b.iter(|| remote.fetch("/api/backgrounds").unwrap())
    });

    let chrome = client(PlatformConfig::chrome());
    group.bench_function("list_browsix_chrome", |b| b.iter(|| chrome.list_backgrounds().unwrap()));
    let firefox = client(PlatformConfig::firefox());
    group.bench_function("list_browsix_firefox", |b| {
        b.iter(|| firefox.list_backgrounds().unwrap())
    });

    let body = browsix_http::Json::object()
        .with("template", "doge.png")
        .with("top", "WOW")
        .encode();
    group.bench_function("generate_server_side", |b| {
        b.iter(|| remote.request("/api/meme", Some(body.as_bytes())).unwrap())
    });
    group.bench_function("generate_browsix_chrome", |b| {
        b.iter(|| chrome.generate("doge.png", "WOW", "MUCH MEME").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_meme);
criterion_main!(benches);
