//! Criterion bench for experiment E6: the LaTeX build under each
//! configuration.  Compute costs are scaled by 0.1 to keep the bench under a
//! minute while preserving the native < sync < async ordering and ratios.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use browsix_apps::latex::{native_build, LatexEditor, LatexEnvironment, LatexMode};
use browsix_browser::NetworkProfile;

const SCALE: f64 = 0.1;

fn browsix_build(mode: LatexMode) -> Duration {
    let editor = LatexEditor::new(LatexEnvironment::boot(mode, SCALE, NetworkProfile::cdn()));
    let outcome = editor.build_pdf();
    assert!(outcome.success, "{}", outcome.stderr);
    outcome.elapsed
}

fn bench_latex(c: &mut Criterion) {
    let mut group = c.benchmark_group("latex_build");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    group.bench_function("native", |b| {
        b.iter_custom(|iters| {
            let runs = iters.clamp(1, 3);
            let mut total = Duration::ZERO;
            for _ in 0..runs {
                total += native_build(SCALE);
            }
            total * (iters as u32) / (runs as u32)
        })
    });
    for (name, mode) in [
        ("browsix_sync", LatexMode::Sync),
        ("browsix_async_emterpreter", LatexMode::Async),
    ] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let runs = iters.clamp(1, 2);
                let mut total = Duration::ZERO;
                for _ in 0..runs {
                    total += browsix_build(mode);
                }
                total * (iters as u32) / (runs as u32)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latex);
criterion_main!(benches);
