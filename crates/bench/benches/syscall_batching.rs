//! Criterion bench for the batched submission ABI: a pipe/write-heavy
//! workload issued as one syscall per round trip versus one batch per round
//! trip, under both transport conventions.
//!
//! The producer pushes `LINES` small writes through a pipe to a consumer.
//! The per-call variant pays the full transport cost (postMessage latency +
//! structured clone, or shared-heap wake) once per line; the batched variant
//! submits all the writes in a single `SyscallBatch` and pays it once.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use browsix_browser::PlatformConfig;
use browsix_core::{BootConfig, Kernel};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, NodeLauncher, RuntimeEnv, SpawnStdio,
    SyscallConvention,
};

/// Number of writes the producer issues.
const LINES: usize = 256;
/// One line of payload (64 bytes + newline).
const LINE: &[u8] = b"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcde\n";

/// Registers producer/consumer pairs and boots a kernel with realistic
/// Chrome-like transport costs.  `sync` picks the transport convention,
/// `batched` picks the producer's write strategy.
fn boot(sync: bool, batched: bool) -> Kernel {
    let convention = if sync {
        SyscallConvention::Sync
    } else {
        SyscallConvention::Async
    };
    let profile = ExecutionProfile::instant(convention);
    let producer = guest("producer", move |env: &mut dyn RuntimeEnv| {
        // Write through a dup of stdout so the per-call variant bypasses the
        // runtime's stdout buffering: both variants then move the same bytes
        // through the same pipe, differing only in submissions.
        if env.dup2(1, 3).is_err() {
            return 1;
        }
        if batched {
            let bufs: Vec<&[u8]> = std::iter::repeat_n(LINE, LINES).collect();
            if env.write_vectored(3, &bufs).unwrap_or(0) != LINES * LINE.len() {
                return 1;
            }
        } else {
            for _ in 0..LINES {
                if env.write(3, LINE).unwrap_or(0) != LINE.len() {
                    return 1;
                }
            }
        }
        0
    });
    let consumer = guest("consumer", |env: &mut dyn RuntimeEnv| {
        let (read_fd, write_fd) = env.pipe().unwrap();
        let child = env
            .spawn(
                "/usr/bin/producer",
                &["producer".to_string()],
                SpawnStdio {
                    stdout: Some(write_fd),
                    ..SpawnStdio::default()
                },
            )
            .unwrap();
        env.close(write_fd).unwrap();
        let mut received = 0;
        loop {
            let chunk = env.read(read_fd, 64 * 1024).unwrap_or_default();
            if chunk.is_empty() {
                break;
            }
            received += chunk.len();
        }
        let _ = env.wait(child as i32);
        if received == LINES * LINE.len() {
            0
        } else {
            1
        }
    });
    let config = BootConfig::in_memory().with_platform(PlatformConfig::chrome());
    let register = |path: &str, program| {
        let launcher: Arc<dyn browsix_core::ProgramLauncher> = if sync {
            Arc::new(EmscriptenLauncher::new("bench", program, EmscriptenMode::AsmJs).with_profile(profile.clone()))
        } else {
            Arc::new(NodeLauncher::new("bench", program).with_profile(profile.clone()))
        };
        config.registry.register(path, launcher);
    };
    register("/usr/bin/producer", producer);
    register("/usr/bin/consumer", consumer);
    Kernel::boot(config)
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("syscall_batching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Bytes((LINES * LINE.len()) as u64));
    for (name, sync, batched) in [
        ("async_per_call", false, false),
        ("async_batched", false, true),
        ("sync_per_call", true, false),
        ("sync_batched", true, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let kernel = boot(sync, batched);
                let handle = kernel.spawn("/usr/bin/consumer", &["consumer"], &[]).unwrap();
                assert!(handle.wait().success(), "{name} pipeline failed");
                kernel.shutdown();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
