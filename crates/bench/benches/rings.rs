//! Criterion bench for the persistent shared-memory syscall rings: what one
//! submission costs over the ring versus the classic framed transport.
//!
//! The guest creates a pipe and issues 256 *individual* small writes (no
//! batching — each is its own submission), then reads everything back.  Under
//! the framed convention every submission stages a frame and pays the
//! modelled `postMessage` wake each way; over the ring the client writes the
//! entry into the shared-heap submission queue in place and rings the
//! doorbell (an `Atomics.notify`, which the platform model charges nothing
//! for), so the per-submission transport cost collapses.
//!
//! Both variants run the same guest on the same kernel build; the framed one
//! just starts with `BROWSIX_SYSCALL_RINGS=0` in its environment, which makes
//! the client skip ring setup and fall back to frames for everything.
//!
//! `scripts/bench_smoke.sh` asserts the ring variant beats the framed one by
//! at least 5x.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use browsix_browser::PlatformConfig;
use browsix_core::{BootConfig, Kernel};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, RuntimeEnv, SyscallConvention, RINGS_ENV_VAR,
};

/// Number of individual writes the guest issues.
const WRITES: usize = 256;
/// One line of payload (64 bytes + newline).
const LINE: &[u8] = b"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcde\n";

/// Boots a kernel with realistic Chrome-like transport costs and one guest
/// that pumps [`WRITES`] individual writes through a pipe and reads them
/// back.  The syscall transport (ring vs framed) is chosen per spawn via the
/// [`RINGS_ENV_VAR`] environment variable, so one kernel serves both sides.
fn boot() -> Kernel {
    let profile = ExecutionProfile::instant(SyscallConvention::Sync);
    let writer = guest("ringwriter", |env: &mut dyn RuntimeEnv| {
        let Ok((read_fd, write_fd)) = env.pipe() else {
            return 1;
        };
        for _ in 0..WRITES {
            if env.write(write_fd, LINE).unwrap_or(0) != LINE.len() {
                return 1;
            }
        }
        if env.close(write_fd).is_err() {
            return 1;
        }
        let mut received = 0;
        loop {
            let chunk = env.read(read_fd, 64 * 1024).unwrap_or_default();
            if chunk.is_empty() {
                break;
            }
            received += chunk.len();
        }
        if received == WRITES * LINE.len() {
            0
        } else {
            1
        }
    });
    let config = BootConfig::in_memory().with_platform(PlatformConfig::chrome());
    config.registry.register(
        "/usr/bin/ringwriter",
        Arc::new(EmscriptenLauncher::new("bench", writer, EmscriptenMode::AsmJs).with_profile(profile)),
    );
    Kernel::boot(config)
}

fn bench_rings(c: &mut Criterion) {
    let kernel = boot();
    let mut group = c.benchmark_group("rings");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(WRITES as u64));
    for (name, env) in [
        ("framed_submit_256", &[(RINGS_ENV_VAR, "0")][..]),
        ("ring_submit_256", &[][..]),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let handle = kernel.spawn("/usr/bin/ringwriter", &["ringwriter"], env).unwrap();
                assert!(handle.wait().success(), "{name} guest failed");
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, bench_rings);
criterion_main!(benches);
