//! SHA-1, implemented from scratch for the `sha1sum` utility (the paper's
//! Figure 9 benchmark hashes `/usr/bin/node` with it).

/// Computes the SHA-1 digest of `data`.
pub fn sha1_digest(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, then the 64-bit bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut message = data.to_vec();
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in message.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([block[4 * i], block[4 * i + 1], block[4 * i + 2], block[4 * i + 3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &word) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(word);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, value) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&value.to_be_bytes());
    }
    out
}

/// Computes the SHA-1 digest of `data` as a lowercase hex string.
pub fn sha1_hex(data: &[u8]) -> String {
    sha1_digest(data).iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // FIPS 180-1 / RFC 3174 test vectors.
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1_hex(&vec![b'a'; 1_000_000]),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 55/56/64-byte padding boundaries.
        assert_eq!(sha1_hex(&[0u8; 55]).len(), 40);
        assert_ne!(sha1_hex(&[0u8; 55]), sha1_hex(&[0u8; 56]));
        assert_ne!(sha1_hex(&[0u8; 63]), sha1_hex(&[0u8; 64]));
        assert_ne!(sha1_hex(&[0u8; 64]), sha1_hex(&[0u8; 65]));
    }

    #[test]
    fn digest_and_hex_agree() {
        let digest = sha1_digest(b"browsix");
        let hex = sha1_hex(b"browsix");
        assert_eq!(hex.len(), 40);
        assert!(hex.starts_with(&format!("{:02x}", digest[0])));
    }
}
