//! # browsix-utils — Unix utilities as guest programs
//!
//! The Browsix terminal ships "a variety of Unix utilities on the shell's
//! PATH that we wrote for Node.js: cat, cp, curl, echo, exec, grep, head, ls,
//! mkdir, rm, rmdir, sh, sha1sum, sort, stat, tail, tee, touch, wc, and
//! xargs.  These programs run equivalently under Node and BROWSIX without any
//! modifications."
//!
//! This crate provides those utilities as guest programs written against
//! the [`browsix_runtime::RuntimeEnv`] interface, so the *same*
//! implementation runs under the
//! native baseline, the Node.js-on-Linux baseline, and as a Browsix process —
//! which is exactly what Figure 9 of the paper measures.
//!
//! Use [`register_browsix`] to install them at `/usr/bin` in a kernel's
//! executable registry, and [`register_native`] to install them into a
//! [`ProgramTable`] for the no-kernel baselines.

pub mod common;
pub mod programs;
pub mod sha1;

use std::sync::Arc;

use browsix_core::ExecutableRegistry;
use browsix_runtime::{ExecutionProfile, GuestFactory, NodeLauncher, ProgramTable};

pub use programs::all_utilities;
pub use sha1::{sha1_digest, sha1_hex};

/// The list of utility names this crate provides (sorted).
pub fn utility_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_utilities().into_iter().map(|(name, _)| name).collect();
    names.sort_unstable();
    names
}

/// Registers every utility at `/usr/bin/<name>` in a Browsix kernel registry,
/// running under the Node.js runtime with the given execution profile.
pub fn register_browsix(registry: &ExecutableRegistry, profile: ExecutionProfile) {
    for (name, factory) in all_utilities() {
        let launcher = NodeLauncher::new(name, factory).with_profile(profile.clone());
        registry.register(&format!("/usr/bin/{name}"), Arc::new(launcher));
    }
}

/// Registers every utility at `/usr/bin/<name>` in a native-world program
/// table (the no-kernel baselines of Figure 9).
pub fn register_native(table: &ProgramTable) {
    for (name, factory) in all_utilities() {
        table.register(&format!("/usr/bin/{name}"), factory);
    }
}

/// Convenience: a factory for a single named utility.
pub fn utility(name: &str) -> Option<GuestFactory> {
    all_utilities()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, factory)| factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_utilities_are_all_present() {
        let names = utility_names();
        for expected in [
            "cat", "cp", "curl", "echo", "grep", "head", "ls", "mkdir", "rm", "rmdir", "sha1sum", "sort", "stat",
            "tail", "tee", "touch", "wc", "xargs", "true", "false", "pwd",
        ] {
            assert!(names.contains(&expected), "missing utility {expected}");
        }
        assert!(utility("cat").is_some());
        assert!(utility("not-a-utility").is_none());
    }

    #[test]
    fn registration_installs_all_utilities() {
        let registry = ExecutableRegistry::new();
        register_browsix(
            &registry,
            ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async),
        );
        assert!(registry.lookup("/usr/bin/ls").is_some());
        assert!(registry.lookup("/usr/bin/sha1sum").is_some());
        assert_eq!(registry.len(), utility_names().len());

        let table = ProgramTable::new();
        register_native(&table);
        assert!(table.lookup("ls").is_some());
        assert_eq!(table.len(), utility_names().len());
    }
}
