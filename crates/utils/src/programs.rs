//! The utilities themselves.
//!
//! Each utility is an ordinary function over [`RuntimeEnv`]; the same code
//! runs natively, under the Node.js baseline, and as a Browsix process.
//! Behaviour follows the POSIX utilities closely enough for the shell, the
//! case studies and the benchmarks, without aiming for flag-for-flag parity.

use std::time::Duration;

use browsix_fs::{FileType, OpenFlags};
use browsix_runtime::{guest, GuestFactory, RuntimeEnv, SharedArrayBuffer, SpawnStdio};

use crate::common::{charge_for_bytes, flag_value, has_flag, lines, read_inputs, split_args};
use crate::sha1::sha1_hex;

/// Returns every utility as a `(name, factory)` pair.
pub fn all_utilities() -> Vec<(&'static str, GuestFactory)> {
    vec![
        ("cat", guest("cat", run_cat)),
        ("cp", guest("cp", run_cp)),
        ("curl", guest("curl", run_curl)),
        ("echo", guest("echo", run_echo)),
        ("false", guest("false", |_| 1)),
        ("grep", guest("grep", run_grep)),
        ("head", guest("head", run_head)),
        ("kill", guest("kill", run_kill)),
        ("ls", guest("ls", run_ls)),
        ("mkdir", guest("mkdir", run_mkdir)),
        ("pwd", guest("pwd", run_pwd)),
        ("rm", guest("rm", run_rm)),
        ("rmdir", guest("rmdir", run_rmdir)),
        ("sha1sum", guest("sha1sum", run_sha1sum)),
        ("shm-ping", guest("shm-ping", run_shm_ping)),
        ("sleep", guest("sleep", run_sleep)),
        ("sort", guest("sort", run_sort)),
        ("stat", guest("stat", run_stat)),
        ("tail", guest("tail", run_tail)),
        ("tee", guest("tee", run_tee)),
        ("timeout", guest("timeout", run_timeout)),
        ("touch", guest("touch", run_touch)),
        ("true", guest("true", |_| 0)),
        ("wc", guest("wc", run_wc)),
        ("xargs", guest("xargs", run_xargs)),
        ("yes", guest("yes", run_yes)),
    ]
}

fn run_cat(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    if operands.is_empty() {
        // Streaming stdin → stdout chunk by chunk, like coreutils cat: an
        // infinite upstream (`yes | cat`) flows through instead of being
        // slurped to an EOF that never comes.  When both ends are streams
        // (the common pipeline shape) `splice` moves the bytes kernel-side;
        // the first zero-progress error drops to the classic copy loop.
        let _ = env.flush_stdout();
        let mut spliced = 0u64;
        loop {
            match env.splice(0, 1, 64 * 1024) {
                Ok(0) => return 0,
                Ok(moved) => {
                    charge_for_bytes(env, moved as usize);
                    spliced += moved;
                }
                Err(_) if spliced == 0 => break, // not stream-to-stream
                Err(_) => return 1,
            }
        }
        loop {
            match env.read(0, 64 * 1024) {
                Ok(chunk) if chunk.is_empty() => break,
                Ok(chunk) => {
                    charge_for_bytes(env, chunk.len());
                    if env.write(1, &chunk).is_err() || env.flush_stdout().is_err() {
                        return 1;
                    }
                }
                Err(_) => break,
            }
        }
        return 0;
    }
    // A single regular-file operand can flow to stdout over `sendfile`
    // without its bytes entering this process.  Anything else — stdin
    // mixed in, several operands, a non-stream stdout — and the attempt
    // fails before any output, falling back to the buffered path below.
    if operands.len() == 1 && operands[0] != "-" {
        if let Ok(fd) = env.open(&operands[0], OpenFlags::read_only()) {
            if let Some(meta) = env.fstat(fd).ok().filter(|m| !m.is_dir()) {
                let _ = env.flush_stdout();
                let mut sent = 0u64;
                let mut zero_copy = true;
                while sent < meta.size {
                    match env.sendfile(1, fd, sent as i64, meta.size - sent) {
                        Ok(0) => break,
                        Ok(moved) => {
                            charge_for_bytes(env, moved as usize);
                            sent += moved;
                        }
                        Err(_) if sent == 0 => {
                            zero_copy = false; // nothing written yet: safe to retry buffered
                            break;
                        }
                        Err(_) => {
                            let _ = env.close(fd);
                            return 1;
                        }
                    }
                }
                if zero_copy {
                    let _ = env.close(fd);
                    return 0;
                }
            }
            let _ = env.close(fd);
        }
    }
    let (data, code) = read_inputs(env, "cat", &operands);
    charge_for_bytes(env, data.len());
    let _ = env.write(1, &data);
    let _ = env.flush_stdout();
    code
}

fn run_cp(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    if operands.len() != 2 {
        env.eprint("cp: usage: cp SOURCE DEST\n");
        return 1;
    }
    match env.read_file(&operands[0]) {
        Ok(data) => {
            charge_for_bytes(env, data.len());
            // Copying onto a directory places the file inside it.
            let dest = match env.stat(&operands[1]) {
                Ok(meta) if meta.is_dir() => {
                    format!("{}/{}", operands[1], browsix_fs::path::basename(&operands[0]))
                }
                _ => operands[1].clone(),
            };
            match env.write_file(&dest, &data) {
                Ok(()) => 0,
                Err(e) => {
                    env.eprint(&format!("cp: {dest}: {e}\n"));
                    1
                }
            }
        }
        Err(e) => {
            env.eprint(&format!("cp: {}: {e}\n", operands[0]));
            1
        }
    }
}

fn run_curl(env: &mut dyn RuntimeEnv) -> i32 {
    // curl URL [-o FILE]; URLs look like http://localhost:PORT/path and are
    // served by in-Browsix HTTP servers over Browsix sockets.
    let args = env.args();
    let (_, operands) = split_args(&args);
    let Some(url) = operands.first().cloned() else {
        env.eprint("curl: missing url\n");
        return 1;
    };
    let output = flag_value(&args, 'o');
    let Some((port, path)) = parse_localhost_url(&url) else {
        env.eprint(&format!("curl: unsupported url: {url}\n"));
        return 1;
    };
    let request = browsix_http::HttpRequest::new(browsix_http::Method::Get, &path);
    let fd = match env.socket() {
        Ok(fd) => fd,
        Err(e) => {
            env.eprint(&format!("curl: socket: {e}\n"));
            return 1;
        }
    };
    if let Err(e) = env.connect(fd, port) {
        env.eprint(&format!("curl: connect: {e}\n"));
        return 7;
    }
    let _ = env.write(fd, &request.serialize());
    let mut received = Vec::new();
    loop {
        match env.read(fd, 64 * 1024) {
            Ok(chunk) if chunk.is_empty() => break,
            Ok(chunk) => {
                received.extend_from_slice(&chunk);
                if let Ok(Some(_)) = browsix_http::parse_response(&received) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = env.close(fd);
    match browsix_http::parse_response(&received) {
        Ok(Some(response)) => {
            charge_for_bytes(env, response.body.len());
            match output {
                Some(path) => {
                    let _ = env.write_file(&path, &response.body);
                }
                None => {
                    let _ = env.write(1, &response.body);
                }
            }
            if response.is_success() {
                0
            } else {
                22
            }
        }
        _ => {
            env.eprint("curl: malformed response\n");
            1
        }
    }
}

fn parse_localhost_url(url: &str) -> Option<(u16, String)> {
    let rest = url.strip_prefix("http://")?;
    let (host, path) = match rest.find('/') {
        Some(idx) => (&rest[..idx], rest[idx..].to_owned()),
        None => (rest, "/".to_owned()),
    };
    let (_, port) = host.split_once(':')?;
    Some((port.parse().ok()?, path))
}

fn run_echo(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let mut words: Vec<&str> = args.iter().skip(1).map(|s| s.as_str()).collect();
    let no_newline = words.first() == Some(&"-n");
    if no_newline {
        words.remove(0);
    }
    let mut text = words.join(" ");
    if !no_newline {
        text.push('\n');
    }
    env.print(&text);
    0
}

fn run_grep(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let Some(pattern) = operands.first().cloned() else {
        env.eprint("grep: missing pattern\n");
        return 2;
    };
    let ignore_case = has_flag(&flags, 'i');
    let invert = has_flag(&flags, 'v');
    let count_only = has_flag(&flags, 'c');
    let needle = if ignore_case {
        pattern.to_lowercase()
    } else {
        pattern.clone()
    };
    let (data, read_code) = read_inputs(env, "grep", &operands[1..]);
    charge_for_bytes(env, data.len());
    let all_lines = lines(&data);
    let mut matched_lines: Vec<&str> = Vec::new();
    for line in &all_lines {
        let haystack = if ignore_case { line.to_lowercase() } else { line.clone() };
        if haystack.contains(&needle) != invert {
            matched_lines.push(line);
        }
    }
    let matched = matched_lines.len();
    if count_only {
        env.print(&format!("{matched}\n"));
    } else {
        // All matching lines leave the process as one batched submission.
        let mut bufs: Vec<&[u8]> = Vec::with_capacity(matched * 2);
        for line in &matched_lines {
            bufs.push(line.as_bytes());
            bufs.push(b"\n");
        }
        let _ = env.write_vectored(1, &bufs);
    }
    let _ = env.flush_stdout();
    if read_code != 0 {
        2
    } else if matched > 0 {
        0
    } else {
        1
    }
}

fn run_head(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let count_arg = flag_value(&args, 'n');
    let count: usize = count_arg.as_deref().and_then(|v| v.parse().ok()).unwrap_or(10);
    let (_, operands) = split_args(&args);
    let files: Vec<String> = operands
        .into_iter()
        .filter(|o| count_arg.as_deref() != Some(o.as_str()))
        .collect();
    let (data, code) = if files.is_empty() {
        // Reading a pipe: stop as soon as enough lines have arrived instead
        // of draining the writer to EOF.  Exiting then closes the read end,
        // so an infinite upstream (`yes | head -n 1`) gets EPIPE/SIGPIPE —
        // exactly the coreutils behaviour.
        let mut data = Vec::new();
        let mut newlines = 0usize;
        while newlines < count {
            match env.read(0, 64 * 1024) {
                Ok(chunk) if chunk.is_empty() => break,
                Ok(chunk) => {
                    newlines += chunk.iter().filter(|&&b| b == b'\n').count();
                    data.extend_from_slice(&chunk);
                }
                Err(_) => break,
            }
        }
        (data, 0)
    } else {
        read_inputs(env, "head", &files)
    };
    charge_for_bytes(env, data.len());
    let selected: Vec<String> = lines(&data).into_iter().take(count).collect();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(selected.len() * 2);
    for line in &selected {
        bufs.push(line.as_bytes());
        bufs.push(b"\n");
    }
    let _ = env.write_vectored(1, &bufs);
    let _ = env.flush_stdout();
    code
}

fn run_tail(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let count: usize = flag_value(&args, 'n').and_then(|v| v.parse().ok()).unwrap_or(10);
    let (_, operands) = split_args(&args);
    let files: Vec<String> = operands
        .into_iter()
        .filter(|o| flag_value(&args, 'n').as_deref() != Some(o.as_str()))
        .collect();
    let (data, code) = read_inputs(env, "tail", &files);
    charge_for_bytes(env, data.len());
    let all = lines(&data);
    let start = all.len().saturating_sub(count);
    let mut bufs: Vec<&[u8]> = Vec::with_capacity((all.len() - start) * 2);
    for line in &all[start..] {
        bufs.push(line.as_bytes());
        bufs.push(b"\n");
    }
    let _ = env.write_vectored(1, &bufs);
    let _ = env.flush_stdout();
    code
}

fn run_ls(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, mut operands) = split_args(&args);
    let long = has_flag(&flags, 'l');
    if operands.is_empty() {
        operands.push(".".to_owned());
    }
    let mut code = 0;
    let mut output = String::new();
    for (index, target) in operands.iter().enumerate() {
        match env.stat(target) {
            Ok(meta) if meta.is_dir() => match env.readdir(target) {
                Ok(entries) => {
                    if operands.len() > 1 {
                        if index > 0 {
                            output.push('\n');
                        }
                        output.push_str(&format!("{target}:\n"));
                    }
                    // `ls -l` stats every entry, which is what makes the
                    // Figure 9 workload syscall-heavy; all the stats go to
                    // the kernel as one batched submission.
                    if long {
                        let children: Vec<String> = entries
                            .iter()
                            .map(|entry| format!("{}/{}", target.trim_end_matches('/'), entry.name))
                            .collect();
                        let child_refs: Vec<&str> = children.iter().map(|c| c.as_str()).collect();
                        let metas = env.stat_many(&child_refs);
                        for (entry, meta) in entries.iter().zip(metas) {
                            charge_for_bytes(env, 64);
                            let (size, mode, kind) =
                                meta.map(|m| (m.size, m.mode, m.file_type))
                                    .unwrap_or((0, 0, FileType::Regular));
                            output.push_str(&format!("{}{:o} {:>8} {}\n", kind.type_char(), mode, size, entry.name));
                        }
                    } else {
                        for entry in &entries {
                            charge_for_bytes(env, 64);
                            output.push_str(&entry.name);
                            output.push('\n');
                        }
                    }
                }
                Err(e) => {
                    env.eprint(&format!("ls: {target}: {e}\n"));
                    code = 1;
                }
            },
            Ok(meta) => {
                if long {
                    output.push_str(&format!("-{:o} {:>8} {target}\n", meta.mode, meta.size));
                } else {
                    output.push_str(&format!("{target}\n"));
                }
            }
            Err(e) => {
                env.eprint(&format!("ls: {target}: {e}\n"));
                code = 1;
            }
        }
    }
    env.print(&output);
    code
}

fn run_mkdir(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let parents = has_flag(&flags, 'p');
    let mut code = 0;
    for dir in &operands {
        let result = if parents {
            let mut current = String::new();
            let absolute = dir.starts_with('/');
            let mut result = Ok(());
            for part in dir.split('/').filter(|p| !p.is_empty()) {
                if current.is_empty() && !absolute {
                    current = part.to_owned();
                } else {
                    current = format!("{current}/{part}");
                }
                let target = if absolute {
                    format!("/{current}")
                } else {
                    current.clone()
                };
                match env.mkdir(&target) {
                    Ok(()) => {}
                    Err(browsix_core::Errno::EEXIST) => {}
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            result
        } else {
            env.mkdir(dir)
        };
        if let Err(e) = result {
            env.eprint(&format!("mkdir: {dir}: {e}\n"));
            code = 1;
        }
    }
    if operands.is_empty() {
        env.eprint("mkdir: missing operand\n");
        code = 1;
    }
    code
}

fn run_pwd(env: &mut dyn RuntimeEnv) -> i32 {
    let cwd = env.getcwd();
    env.print(&format!("{cwd}\n"));
    0
}

fn run_rm(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let recursive = has_flag(&flags, 'r') || has_flag(&flags, 'R');
    let force = has_flag(&flags, 'f');
    let mut code = 0;
    for target in &operands {
        let result = if recursive {
            remove_recursive(env, target)
        } else {
            env.unlink(target)
        };
        if let Err(e) = result {
            if !force {
                env.eprint(&format!("rm: {target}: {e}\n"));
                code = 1;
            }
        }
    }
    if operands.is_empty() && !force {
        env.eprint("rm: missing operand\n");
        code = 1;
    }
    code
}

fn remove_recursive(env: &mut dyn RuntimeEnv, path: &str) -> Result<(), browsix_core::Errno> {
    let meta = env.stat(path)?;
    if meta.is_dir() {
        for entry in env.readdir(path)? {
            remove_recursive(env, &format!("{}/{}", path.trim_end_matches('/'), entry.name))?;
        }
        env.rmdir(path)
    } else {
        env.unlink(path)
    }
}

fn run_rmdir(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let mut code = 0;
    for dir in &operands {
        if let Err(e) = env.rmdir(dir) {
            env.eprint(&format!("rmdir: {dir}: {e}\n"));
            code = 1;
        }
    }
    code
}

fn run_sha1sum(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let mut code = 0;
    if operands.is_empty() {
        let data = env.read_stdin_to_end();
        charge_for_bytes(env, data.len() * 4);
        let digest = sha1_hex(&data);
        env.print(&format!("{digest}  -\n"));
        return 0;
    }
    for path in &operands {
        match env.read_file(path) {
            Ok(data) => {
                // Hashing dominates: charge a higher per-byte cost than plain
                // text processing (this is the JavaScript SHA-1 of Figure 9).
                charge_for_bytes(env, data.len() * 4);
                let digest = sha1_hex(&data);
                env.print(&format!("{digest}  {path}\n"));
            }
            Err(e) => {
                env.eprint(&format!("sha1sum: {path}: {e}\n"));
                code = 1;
            }
        }
    }
    code
}

/// Byte offset of the turn counter within the `shm-ping` ring.
const SHM_PING_STATE: usize = 0;
/// Byte offset of the ping side's message slot.
const SHM_PING_BUF: usize = 64;
/// Byte offset of the pong side's reply slot.
const SHM_PONG_BUF: usize = 2048;
/// Bounded wait (50 ms x 1200 ≈ one minute) so a dead peer cannot hang us.
const SHM_PING_SPINS: usize = 1200;

/// Blocks until the turn counter reaches `want` (purely in shared memory:
/// loads plus `Atomics.wait`, no system calls).
fn wait_for_turn(sab: &SharedArrayBuffer, want: i32) -> bool {
    for _ in 0..SHM_PING_SPINS {
        match sab.load_i32(SHM_PING_STATE) {
            Ok(v) if v == want => return true,
            Ok(v) => {
                let _ = sab.wait(SHM_PING_STATE, v, Some(Duration::from_millis(50)));
            }
            Err(_) => return false,
        }
    }
    false
}

/// Stores a length-prefixed message into a slot of the shared ring.
fn put_shm_msg(sab: &SharedArrayBuffer, slot: usize, msg: &[u8]) -> bool {
    sab.write_bytes(slot + 4, msg).is_ok() && sab.store_i32(slot, msg.len() as i32).is_ok()
}

/// Reads a length-prefixed message back out of a slot.
fn get_shm_msg(sab: &SharedArrayBuffer, slot: usize) -> Option<Vec<u8>> {
    let len = sab.load_i32(slot).ok()?;
    sab.read_bytes(slot + 4, len.max(0) as usize).ok()
}

/// `shm-ping [-n ROUNDS] ping|pong [NAME]`: two processes bounce messages
/// through a `shm_open` mapping.  After setup (open, size, map) the data path
/// is entirely loads, stores and Atomics on the shared mapping — **zero
/// read/write system calls** — which is the point of the demo: under Browsix
/// each role runs in its own worker and the messages cross through the
/// `SharedArrayBuffer` the kernel handed both sides.
///
/// Protocol: a turn counter at offset 0 alternates `2k` (ping may send round
/// `k`) and `2k+1` (pong may reply); each side writes its slot, bumps the
/// counter with `Atomics.store`+`notify`, and waits for the other.
fn run_shm_ping(env: &mut dyn RuntimeEnv) -> i32 {
    use browsix_runtime::{MAP_SHARED, PAGE_SIZE, PROT_READ, PROT_WRITE};
    let args = env.args();
    let mut rounds: i32 = 16;
    let mut operands = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "-n" {
            rounds = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(0);
            i += 2;
            continue;
        }
        if let Some(rest) = args[i].strip_prefix("-n") {
            rounds = rest.parse().unwrap_or(0);
        } else {
            operands.push(args[i].clone());
        }
        i += 1;
    }
    let role = operands.first().cloned().unwrap_or_default();
    let name = operands.get(1).cloned().unwrap_or_else(|| "/shm-ping".to_owned());
    if (role != "ping" && role != "pong") || rounds < 1 {
        env.eprint("shm-ping: usage: shm-ping [-n ROUNDS] ping|pong [NAME]\n");
        return 2;
    }

    // Either side may arrive first, so both create, size and map the object.
    let flags = OpenFlags {
        create: true,
        ..OpenFlags::read_write()
    };
    let fd = match env.shm_open(&name, flags, 0o600) {
        Ok(fd) => fd,
        Err(e) => {
            env.eprint(&format!("shm-ping: shm_open {name}: {e}\n"));
            return 1;
        }
    };
    if let Err(e) = env.ftruncate(fd, PAGE_SIZE as u64) {
        env.eprint(&format!("shm-ping: ftruncate: {e}\n"));
        return 1;
    }
    let region = match env.mmap(0, PAGE_SIZE as u64, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0) {
        Ok(region) => region,
        Err(e) => {
            env.eprint(&format!("shm-ping: mmap: {e}\n"));
            return 1;
        }
    };
    let Some(sab) = region.buffer().cloned() else {
        env.eprint("shm-ping: mapping has no shared buffer\n");
        return 1;
    };

    let mut code = 0;
    if role == "ping" {
        for k in 0..rounds {
            if !wait_for_turn(&sab, 2 * k) {
                env.eprint("shm-ping: timed out waiting for pong\n");
                code = 1;
                break;
            }
            put_shm_msg(&sab, SHM_PING_BUF, format!("ping {k}").as_bytes());
            let _ = sab.store_and_notify(SHM_PING_STATE, 2 * k + 1);
            if !wait_for_turn(&sab, 2 * k + 2) {
                env.eprint("shm-ping: timed out waiting for reply\n");
                code = 1;
                break;
            }
            let expected = format!("pong {k}").into_bytes();
            if get_shm_msg(&sab, SHM_PONG_BUF).as_ref() != Some(&expected) {
                env.eprint(&format!("shm-ping: bad reply in round {k}\n"));
                code = 1;
                break;
            }
        }
        if code == 0 {
            env.print(&format!("shm-ping: {rounds} round trips via {name}\n"));
        }
        let _ = env.shm_unlink(&name);
    } else {
        for k in 0..rounds {
            if !wait_for_turn(&sab, 2 * k + 1) {
                env.eprint("shm-ping: timed out waiting for ping\n");
                code = 1;
                break;
            }
            let expected = format!("ping {k}").into_bytes();
            if get_shm_msg(&sab, SHM_PING_BUF).as_ref() != Some(&expected) {
                env.eprint(&format!("shm-ping: bad message in round {k}\n"));
                code = 1;
                break;
            }
            put_shm_msg(&sab, SHM_PONG_BUF, format!("pong {k}").as_bytes());
            let _ = sab.store_and_notify(SHM_PING_STATE, 2 * k + 2);
        }
    }
    let _ = env.munmap(region.addr, region.len);
    let _ = env.close(fd);
    code
}

fn run_sort(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let reverse = has_flag(&flags, 'r');
    let numeric = has_flag(&flags, 'n');
    let unique = has_flag(&flags, 'u');
    let (data, code) = read_inputs(env, "sort", &operands);
    charge_for_bytes(env, data.len() * 2);
    let mut all = lines(&data);
    if numeric {
        all.sort_by(|a, b| {
            let na: f64 = a.trim().parse().unwrap_or(0.0);
            let nb: f64 = b.trim().parse().unwrap_or(0.0);
            na.partial_cmp(&nb).unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        all.sort();
    }
    if unique {
        all.dedup();
    }
    if reverse {
        all.reverse();
    }
    // The sorted lines leave the process as one batched submission instead of
    // being copied into a single giant string first.
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(all.len() * 2);
    for line in &all {
        bufs.push(line.as_bytes());
        bufs.push(b"\n");
    }
    let _ = env.write_vectored(1, &bufs);
    let _ = env.flush_stdout();
    code
}

fn run_stat(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let mut code = 0;
    for path in &operands {
        match env.stat(path) {
            Ok(meta) => {
                let kind = if meta.is_dir() { "directory" } else { "regular file" };
                env.print(&format!(
                    "  File: {path}\n  Size: {}\tType: {kind}\n  Mode: {:o}\tModify: {}\n",
                    meta.size, meta.mode, meta.mtime_ms
                ));
            }
            Err(e) => {
                env.eprint(&format!("stat: {path}: {e}\n"));
                code = 1;
            }
        }
    }
    code
}

fn run_tee(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let append = has_flag(&flags, 'a');
    let data = env.read_stdin_to_end();
    charge_for_bytes(env, data.len());
    let _ = env.write(1, &data);
    let _ = env.flush_stdout();
    let mut code = 0;
    for path in &operands {
        let flags = if append {
            OpenFlags::append_create()
        } else {
            OpenFlags::write_create_truncate()
        };
        match env.open(path, flags) {
            Ok(fd) => {
                let _ = env.write(fd, &data);
                let _ = env.close(fd);
            }
            Err(e) => {
                env.eprint(&format!("tee: {path}: {e}\n"));
                code = 1;
            }
        }
    }
    code
}

fn run_touch(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let mut code = 0;
    let now = browsix_fs::types::now_millis();
    for path in &operands {
        if env.exists(path) {
            if let Err(e) = env.utimes(path, now, now) {
                env.eprint(&format!("touch: {path}: {e}\n"));
                code = 1;
            }
        } else {
            match env.open(path, OpenFlags::write_create_truncate()) {
                Ok(fd) => {
                    let _ = env.close(fd);
                }
                Err(e) => {
                    env.eprint(&format!("touch: {path}: {e}\n"));
                    code = 1;
                }
            }
        }
    }
    code
}

fn run_wc(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (flags, operands) = split_args(&args);
    let (data, code) = read_inputs(env, "wc", &operands);
    charge_for_bytes(env, data.len());
    let line_count = data.iter().filter(|&&b| b == b'\n').count();
    let word_count = String::from_utf8_lossy(&data).split_whitespace().count();
    let byte_count = data.len();
    let name = operands.first().cloned().unwrap_or_default();
    let output = if has_flag(&flags, 'l') {
        format!("{line_count} {name}\n")
    } else if has_flag(&flags, 'w') {
        format!("{word_count} {name}\n")
    } else if has_flag(&flags, 'c') {
        format!("{byte_count} {name}\n")
    } else {
        format!("{line_count:>8}{word_count:>8}{byte_count:>8} {name}\n")
    };
    env.print(output.trim_end_matches(' '));
    let _ = env.flush_stdout();
    code
}

fn run_xargs(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let (_, operands) = split_args(&args);
    let Some(command) = operands.first().cloned() else {
        env.eprint("xargs: missing command\n");
        return 1;
    };
    let input = env.read_stdin_to_end();
    charge_for_bytes(env, input.len());
    let extra: Vec<String> = String::from_utf8_lossy(&input)
        .split_whitespace()
        .map(|s| s.to_owned())
        .collect();
    let mut argv: Vec<String> = operands.to_vec();
    argv.extend(extra);
    let path = if command.contains('/') {
        command.clone()
    } else {
        format!("/usr/bin/{command}")
    };
    match env.spawn(&path, &argv, SpawnStdio::inherit()) {
        Ok(pid) => match env.wait(pid as i32) {
            Ok(child) => child.exit_code.unwrap_or(1),
            Err(_) => 1,
        },
        Err(e) => {
            env.eprint(&format!("xargs: {command}: {e}\n"));
            127
        }
    }
}

/// Parses a `sleep`/`timeout` duration: plain seconds (fractions allowed)
/// with an optional `s`/`m`/`h` suffix.
fn parse_duration_ms(text: &str) -> Option<u64> {
    let (number, multiplier) = match text.strip_suffix(['s', 'm', 'h']) {
        Some(prefix) => {
            let unit = text.chars().last().unwrap();
            let factor = match unit {
                's' => 1_000.0,
                'm' => 60_000.0,
                _ => 3_600_000.0,
            };
            (prefix, factor)
        }
        None => (text, 1_000.0),
    };
    let value: f64 = number.parse().ok()?;
    if !(0.0..=u64::MAX as f64 / 3_600_000.0).contains(&value) {
        return None;
    }
    Some((value * multiplier) as u64)
}

fn run_kill(env: &mut dyn RuntimeEnv) -> i32 {
    // kill [-SIGNAL | -s SIGNAL] PID...  A negative PID addresses a whole
    // process group, as with kill(1).
    let args = env.args();
    let mut signal = browsix_core::Signal::SIGTERM;
    let mut targets: Vec<i64> = Vec::new();
    let mut seen_separator = false;
    let mut iter = args.iter().skip(1).peekable();
    let mut code = 0;
    while let Some(arg) = iter.next() {
        if !seen_separator {
            if arg == "--" {
                seen_separator = true;
                continue;
            }
            if arg == "-s" {
                match iter.next().and_then(|name| browsix_core::Signal::from_name(name)) {
                    Some(sig) => signal = sig,
                    None => {
                        env.eprint("kill: invalid signal for -s\n");
                        return 1;
                    }
                }
                continue;
            }
            // `-TERM` / `-15` are signal specs; `-5 10` means signal 5, so a
            // leading dash is only a target once a separator (or a non-flag
            // target) has been seen.
            if let Some(spec) = arg.strip_prefix('-') {
                if targets.is_empty() {
                    let parsed = spec
                        .parse::<i32>()
                        .ok()
                        .and_then(browsix_core::Signal::from_number)
                        .or_else(|| browsix_core::Signal::from_name(spec));
                    match parsed {
                        Some(sig) => {
                            signal = sig;
                            continue;
                        }
                        None => {
                            env.eprint(&format!("kill: {spec}: invalid signal\n"));
                            return 1;
                        }
                    }
                }
            }
        }
        match arg.parse::<i64>() {
            Ok(pid) => targets.push(pid),
            Err(_) => {
                env.eprint(&format!("kill: {arg}: arguments must be pids\n"));
                code = 1;
            }
        }
    }
    if targets.is_empty() {
        env.eprint("kill: usage: kill [-SIGNAL] pid...\n");
        return 1;
    }
    for target in targets {
        let result = if target < 0 {
            env.kill_group((-target) as u32, signal)
        } else {
            env.kill(target as u32, signal)
        };
        if let Err(e) = result {
            env.eprint(&format!("kill: {target}: {e}\n"));
            code = 1;
        }
    }
    code
}

fn run_sleep(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let Some(ms) = operands.first().and_then(|text| parse_duration_ms(text)) else {
        env.eprint("sleep: usage: sleep SECONDS\n");
        return 1;
    };
    // Sleeping is a `poll` over no descriptors: the kernel parks this
    // process on a pure timer, and a signal handler interrupts it with
    // EINTR exactly like any other blocked system call.
    match env.poll(&mut [], ms.min(i32::MAX as u64) as i32) {
        Ok(_) => 0,
        Err(browsix_core::Errno::EINTR) => 1,
        Err(e) => {
            env.eprint(&format!("sleep: {e}\n"));
            1
        }
    }
}

fn run_timeout(env: &mut dyn RuntimeEnv) -> i32 {
    // timeout [-s SIGNAL] DURATION COMMAND [ARG...]
    let args = env.args();
    let mut signal = browsix_core::Signal::SIGTERM;
    let mut rest: Vec<String> = args.iter().skip(1).cloned().collect();
    if rest.first().map(String::as_str) == Some("-s") {
        rest.remove(0);
        if rest.is_empty() {
            env.eprint("timeout: -s needs a signal\n");
            return 125;
        }
        match browsix_core::Signal::from_name(&rest.remove(0)) {
            Some(sig) => signal = sig,
            None => {
                env.eprint("timeout: invalid signal\n");
                return 125;
            }
        }
    }
    if rest.len() < 2 {
        env.eprint("timeout: usage: timeout [-s SIGNAL] DURATION COMMAND [ARG...]\n");
        return 125;
    }
    let Some(limit_ms) = parse_duration_ms(&rest.remove(0)) else {
        env.eprint("timeout: invalid duration\n");
        return 125;
    };
    let command = rest[0].clone();
    let path = if command.contains('/') {
        command.clone()
    } else {
        format!("/usr/bin/{command}")
    };
    let pid = match env.spawn(&path, &rest, SpawnStdio::inherit()) {
        Ok(pid) => pid,
        Err(e) => {
            env.eprint(&format!("timeout: {command}: {e}\n"));
            return 126;
        }
    };
    // Poll the child in slices; there is no descriptor tied to a child's
    // lifetime to park on, so the kernel's poll timeout is the clock.
    let started = std::time::Instant::now();
    loop {
        match env.wait_nohang(pid as i32) {
            Ok(Some(child)) => return child.exit_code.unwrap_or(128 + (child.status & 0x7f)),
            Ok(None) => {}
            Err(_) => return 125,
        }
        let elapsed_ms = started.elapsed().as_millis() as u64;
        if elapsed_ms >= limit_ms {
            break;
        }
        let slice = (limit_ms - elapsed_ms).clamp(1, 20) as i32;
        let _ = env.poll(&mut [], slice);
    }
    // Out of time: signal the child and report 124, like coreutils timeout.
    let _ = env.kill(pid, signal);
    let _ = env.wait(pid as i32);
    124
}

fn run_yes(env: &mut dyn RuntimeEnv) -> i32 {
    let (_, operands) = split_args(&env.args());
    let word = operands.first().map(String::as_str).unwrap_or("y");
    let line = format!("{word}\n");
    // Emit in sizeable chunks so the pipe fills quickly; `yes` runs until
    // its stdout breaks (the reader exited → EPIPE, and with no handler
    // installed the resulting SIGPIPE terminates the process first).
    let repeat = (8 * 1024 / line.len()).max(1);
    let chunk = line.repeat(repeat);
    loop {
        if env.write(1, chunk.as_bytes()).is_err() {
            return 0;
        }
        if env.flush_stdout().is_err() {
            return 0;
        }
        charge_for_bytes(env, chunk.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::{FileSystem, MemFs, MountedFs};
    use browsix_runtime::{ExecutionProfile, NativeWorld, SyscallConvention};
    use std::sync::Arc;

    /// A native world with every utility registered and a few files staged.
    fn world() -> NativeWorld {
        let fs = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
        fs.mkdir("/docs").unwrap();
        fs.write_file("/docs/fruit.txt", b"apple\nbanana\nApple pie\ncherry\n")
            .unwrap();
        fs.write_file("/docs/numbers.txt", b"10\n2\n33\n4\n").unwrap();
        fs.mkdir("/usr").unwrap();
        fs.mkdir("/usr/bin").unwrap();
        fs.write_file("/usr/bin/node", vec![7u8; 4096].as_slice()).unwrap();
        let world = NativeWorld::new(fs, ExecutionProfile::instant(SyscallConvention::Direct));
        crate::register_native(world.table());
        world
    }

    #[test]
    fn cat_concatenates_files_and_stdin() {
        let w = world();
        let out = w.run("cat", &["cat", "/docs/fruit.txt"]);
        assert_eq!(out.exit_code, 0);
        assert!(out.stdout_string().starts_with("apple\n"));
        let out = w.run_with_stdin("cat", &["cat"], b"from stdin");
        assert_eq!(out.stdout, b"from stdin");
        let out = w.run("cat", &["cat", "/missing"]);
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn echo_and_pwd_and_true_false() {
        let w = world();
        assert_eq!(w.run("echo", &["echo", "hello", "world"]).stdout, b"hello world\n");
        assert_eq!(w.run("echo", &["echo", "-n", "x"]).stdout, b"x");
        assert_eq!(w.run("pwd", &["pwd"]).stdout, b"/\n");
        assert_eq!(w.run("true", &["true"]).exit_code, 0);
        assert_eq!(w.run("false", &["false"]).exit_code, 1);
    }

    #[test]
    fn grep_matches_and_sets_exit_code() {
        let w = world();
        let out = w.run("grep", &["grep", "apple", "/docs/fruit.txt"]);
        assert_eq!(out.exit_code, 0);
        assert_eq!(out.stdout, b"apple\n");
        let out = w.run("grep", &["grep", "-i", "apple", "/docs/fruit.txt"]);
        assert_eq!(out.stdout, b"apple\nApple pie\n");
        let out = w.run("grep", &["grep", "-c", "-i", "apple", "/docs/fruit.txt"]);
        assert_eq!(out.stdout, b"2\n");
        let out = w.run("grep", &["grep", "-v", "apple", "/docs/fruit.txt"]);
        assert_eq!(out.stdout, b"banana\nApple pie\ncherry\n");
        assert_eq!(w.run("grep", &["grep", "zebra", "/docs/fruit.txt"]).exit_code, 1);
        assert_eq!(w.run("grep", &["grep"]).exit_code, 2);
    }

    #[test]
    fn head_tail_sort_wc() {
        let w = world();
        assert_eq!(
            w.run("head", &["head", "-n", "2", "/docs/fruit.txt"]).stdout,
            b"apple\nbanana\n"
        );
        assert_eq!(
            w.run("tail", &["tail", "-n", "1", "/docs/fruit.txt"]).stdout,
            b"cherry\n"
        );
        assert_eq!(
            w.run("sort", &["sort", "/docs/fruit.txt"]).stdout,
            b"Apple pie\napple\nbanana\ncherry\n"
        );
        assert_eq!(
            w.run("sort", &["sort", "-n", "-r", "/docs/numbers.txt"]).stdout,
            b"33\n10\n4\n2\n"
        );
        let wc = w.run("wc", &["wc", "-l", "/docs/fruit.txt"]);
        assert!(wc.stdout_string().starts_with('4'));
        let wc = w.run("wc", &["wc", "/docs/fruit.txt"]);
        assert!(wc.stdout_string().contains('4'));
    }

    #[test]
    fn ls_lists_directories_and_files() {
        let w = world();
        let out = w.run("ls", &["ls", "/docs"]);
        assert_eq!(out.stdout, b"fruit.txt\nnumbers.txt\n");
        let out = w.run("ls", &["ls", "-l", "/usr/bin"]);
        assert!(out.stdout_string().contains("node"));
        assert!(out.stdout_string().contains("4096"));
        assert_eq!(w.run("ls", &["ls", "/nope"]).exit_code, 1);
        let out = w.run("ls", &["ls", "/docs/fruit.txt"]);
        assert_eq!(out.stdout, b"/docs/fruit.txt\n");
    }

    #[test]
    fn file_management_utilities() {
        let w = world();
        assert_eq!(w.run("mkdir", &["mkdir", "/newdir"]).exit_code, 0);
        assert!(w.fs().stat("/newdir").unwrap().is_dir());
        assert_eq!(w.run("mkdir", &["mkdir", "-p", "/a/b/c"]).exit_code, 0);
        assert!(w.fs().stat("/a/b/c").unwrap().is_dir());
        assert_eq!(w.run("touch", &["touch", "/newdir/file.txt"]).exit_code, 0);
        assert!(w.fs().exists("/newdir/file.txt"));
        assert_eq!(w.run("cp", &["cp", "/docs/fruit.txt", "/newdir"]).exit_code, 0);
        assert!(w.fs().exists("/newdir/fruit.txt"));
        assert_eq!(w.run("rm", &["rm", "/newdir/fruit.txt"]).exit_code, 0);
        assert!(!w.fs().exists("/newdir/fruit.txt"));
        assert_eq!(w.run("rm", &["rm", "-r", "/a"]).exit_code, 0);
        assert!(!w.fs().exists("/a"));
        assert_eq!(w.run("rmdir", &["rmdir", "/newdir"]).exit_code, 1); // not empty
        assert_eq!(w.run("rm", &["rm", "-r", "/newdir"]).exit_code, 0);
        assert_eq!(w.run("rm", &["rm", "/still-missing"]).exit_code, 1);
        assert_eq!(w.run("rm", &["rm", "-f", "/still-missing"]).exit_code, 0);
        assert_eq!(w.run("cp", &["cp", "/docs/fruit.txt"]).exit_code, 1);
    }

    #[test]
    fn sha1sum_matches_reference_digest() {
        let w = world();
        let out = w.run("sha1sum", &["sha1sum", "/usr/bin/node"]);
        assert_eq!(out.exit_code, 0);
        let expected = sha1_hex(&vec![7u8; 4096]);
        assert!(out.stdout_string().starts_with(&expected));
        let out = w.run_with_stdin("sha1sum", &["sha1sum"], b"abc");
        assert!(out
            .stdout_string()
            .starts_with("a9993e364706816aba3e25717850c26c9cd0d89d"));
        assert_eq!(w.run("sha1sum", &["sha1sum", "/nope"]).exit_code, 1);
    }

    #[test]
    fn stat_tee_and_xargs() {
        let w = world();
        let out = w.run("stat", &["stat", "/docs/fruit.txt"]);
        assert!(out.stdout_string().contains("regular file"));
        assert_eq!(w.run("stat", &["stat", "/missing"]).exit_code, 1);

        let out = w.run_with_stdin("tee", &["tee", "/copy.txt"], b"payload");
        assert_eq!(out.stdout, b"payload");
        assert_eq!(w.fs().read_file("/copy.txt").unwrap(), b"payload");

        // xargs: echo the words found on stdin.
        let out = w.run_with_stdin("xargs", &["xargs", "echo", "prefix"], b"one two");
        assert_eq!(out.stdout, b"prefix one two\n");
        assert_eq!(w.run_with_stdin("xargs", &["xargs", "nosuch"], b"x").exit_code, 127);
    }

    #[test]
    fn url_parsing_for_curl() {
        assert_eq!(
            parse_localhost_url("http://localhost:8080/api/backgrounds"),
            Some((8080, "/api/backgrounds".to_string()))
        );
        assert_eq!(parse_localhost_url("http://localhost:80"), Some((80, "/".to_string())));
        assert_eq!(parse_localhost_url("https://example.com/x"), None);
        assert_eq!(parse_localhost_url("http://nohost/x"), None);
    }
}
