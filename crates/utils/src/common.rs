//! Helpers shared by the utilities: argument handling, input plumbing and the
//! compute-cost accounting that models JavaScript execution.

use browsix_runtime::RuntimeEnv;

/// Splits an argument vector into flags (arguments starting with `-`, before
/// any `--`) and positional operands.
pub fn split_args(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut flags = Vec::new();
    let mut operands = Vec::new();
    let mut no_more_flags = false;
    for arg in args.iter().skip(1) {
        if no_more_flags {
            operands.push(arg.clone());
        } else if arg == "--" {
            no_more_flags = true;
        } else if arg.starts_with('-') && arg.len() > 1 {
            flags.push(arg.clone());
        } else {
            operands.push(arg.clone());
        }
    }
    (flags, operands)
}

/// Whether a single-letter flag (e.g. `-n`) appears in the flag list,
/// including inside grouped flags (`-ln`).
pub fn has_flag(flags: &[String], letter: char) -> bool {
    flags
        .iter()
        .any(|f| !f.starts_with("--") && f.chars().skip(1).any(|c| c == letter))
}

/// Extracts the value of a `-<letter> value` or `-<letter>value` flag.
pub fn flag_value(args: &[String], letter: char) -> Option<String> {
    let prefix = format!("-{letter}");
    let mut iter = args.iter().skip(1).peekable();
    while let Some(arg) = iter.next() {
        if arg == &prefix {
            return iter.peek().map(|s| s.to_string());
        }
        if let Some(rest) = arg.strip_prefix(&prefix) {
            if !rest.is_empty() {
                return Some(rest.to_owned());
            }
        }
    }
    None
}

/// Reads each operand file in order (or standard input when there are no
/// operands), returning the concatenated contents.  Missing files are
/// reported on standard error and reflected in the returned exit code.
pub fn read_inputs(env: &mut dyn RuntimeEnv, name: &str, operands: &[String]) -> (Vec<u8>, i32) {
    if operands.is_empty() {
        return (env.read_stdin_to_end(), 0);
    }
    let mut data = Vec::new();
    let mut code = 0;
    for path in operands {
        match env.read_file(path) {
            Ok(bytes) => data.extend_from_slice(&bytes),
            Err(e) => {
                env.eprint(&format!("{name}: {path}: {e}\n"));
                code = 1;
            }
        }
    }
    (data, code)
}

/// Charges compute proportional to the number of bytes a text-processing
/// utility touched; one unit per 256 bytes approximates the per-byte work of
/// the JavaScript implementations the paper measured.
pub fn charge_for_bytes(env: &mut dyn RuntimeEnv, bytes: usize) {
    env.charge_compute((bytes as u64) / 256 + 1);
}

/// Splits bytes into lines (without trailing newlines), tolerating a missing
/// final newline.
pub fn lines(data: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(data);
    let mut lines: Vec<String> = text.split('\n').map(|s| s.to_owned()).collect();
    if lines.last().map(|l| l.is_empty()).unwrap_or(false) {
        lines.pop();
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_args_separates_flags_and_operands() {
        let (flags, operands) = split_args(&args(&["grep", "-i", "-n", "pattern", "file.txt"]));
        assert_eq!(flags, vec!["-i", "-n"]);
        assert_eq!(operands, vec!["pattern", "file.txt"]);
        // `--` ends flag processing.
        let (flags, operands) = split_args(&args(&["rm", "--", "-weird-name"]));
        assert!(flags.is_empty());
        assert_eq!(operands, vec!["-weird-name"]);
        // A bare "-" is an operand (stdin).
        let (flags, operands) = split_args(&args(&["cat", "-"]));
        assert!(flags.is_empty());
        assert_eq!(operands, vec!["-"]);
    }

    #[test]
    fn flag_helpers() {
        let argv = args(&["ls", "-ln", "/usr"]);
        let (flags, _) = split_args(&argv);
        assert!(has_flag(&flags, 'l'));
        assert!(has_flag(&flags, 'n'));
        assert!(!has_flag(&flags, 'a'));
        assert_eq!(flag_value(&args(&["head", "-n", "3"]), 'n'), Some("3".into()));
        assert_eq!(flag_value(&args(&["head", "-n5"]), 'n'), Some("5".into()));
        assert_eq!(flag_value(&args(&["head"]), 'n'), None);
    }

    #[test]
    fn line_splitting() {
        assert_eq!(lines(b"a\nb\nc\n"), vec!["a", "b", "c"]);
        assert_eq!(lines(b"a\nb"), vec!["a", "b"]);
        assert!(lines(b"").is_empty());
    }
}
