//! Generates the syscall surface from `abi/syscalls.abi` (the single
//! definition point for the ABI) via `browsix-abigen`:
//!
//! * `syscall_gen.rs` — the `Syscall`/`SysResult` enums and wire codec,
//!   included by `src/syscall.rs`;
//! * `dispatch_gen.rs` — the kernel dispatch match, included by
//!   `src/kernel/mod.rs`;
//! * `abi_gen.rs` — the opcode descriptors, generation manifest and
//!   `ring_safe` classifier, included by `src/abi.rs`.

use std::path::Path;

fn main() {
    let idl = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../abi/syscalls.abi");
    println!("cargo:rerun-if-changed={}", idl.display());
    let abi = browsix_abigen::load(&idl).unwrap_or_else(|e| panic!("abi/syscalls.abi: {e}"));
    let out_dir = std::env::var("OUT_DIR").expect("OUT_DIR");
    let out = Path::new(&out_dir);
    std::fs::write(out.join("syscall_gen.rs"), browsix_abigen::codegen::gen_core(&abi)).expect("write syscall_gen.rs");
    std::fs::write(out.join("dispatch_gen.rs"), browsix_abigen::codegen::gen_dispatch(&abi))
        .expect("write dispatch_gen.rs");
    std::fs::write(out.join("abi_gen.rs"), browsix_abigen::codegen::gen_abi_mod(&abi)).expect("write abi_gen.rs");
}
