//! Task structures.
//!
//! "Each BROWSIX process has an associated task structure that lives in the
//! kernel that contains its process ID, parent's process ID, Web Worker
//! object, current working directory, and map of open file descriptors."
//! [`Task`] is that structure, extended with the bookkeeping the kernel needs
//! for signals, `wait4` (the zombie state), synchronous system calls (the
//! registered shared heap) and `fork` (the launcher used to start it).

use std::sync::Arc;

use browsix_browser::{SharedArrayBuffer, Worker};

use crate::exec::ProgramLauncher;
use crate::fd::FdTable;
use crate::ring::Ring;
use crate::signals::{Signal, SignalState};
use crate::syscall::{Completion, SysResult, Transport};
use crate::vm::AddressSpace;

/// A process identifier.
pub type Pid = u32;

/// The lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// The process is running (its worker is alive).
    Running,
    /// The process is suspended by a job-control stop signal.  Its worker is
    /// still alive, but the kernel stashes incoming system-call batches until
    /// SIGCONT, so the process freezes at its next syscall boundary.
    Stopped {
        /// The stop signal that suspended it.
        signal: Signal,
    },
    /// The process has exited but has not yet been reaped by `wait4`.
    Zombie {
        /// The encoded wait status (exit code or terminating signal).
        status: i32,
    },
}

/// The shared heap a process registered for synchronous system calls: the
/// `SharedArrayBuffer` plus the offsets agreed with the kernel for the
/// response area and the wake address.
#[derive(Debug, Clone)]
pub struct SyncHeap {
    /// The shared memory.
    pub sab: SharedArrayBuffer,
    /// Where the kernel writes encoded system-call results.
    pub resp_offset: usize,
    /// The `Atomics.wait`/`Atomics.notify` address.
    pub wake_offset: usize,
}

/// Bookkeeping for the submission batch the task currently has in flight.
///
/// A process issues at most one batch at a time (its runtime blocks until the
/// batch completes), so the kernel tracks completions here and delivers them
/// all at once — a single reply message or a single shared-heap write —
/// when the last entry finishes.
#[derive(Debug)]
pub struct InflightBatch {
    /// Sequence number the reply must carry (asynchronous convention only).
    pub seq: u64,
    /// Whether the batch arrived over the synchronous convention.
    pub sync: bool,
    /// Number of entries the batch was submitted with.
    pub total: u32,
    /// Completions collected so far, in completion (not submission) order.
    pub completions: Vec<Completion>,
}

impl InflightBatch {
    /// Whether every entry has completed and the batch can be delivered.
    pub fn is_complete(&self) -> bool {
        self.completions.len() as u32 >= self.total
    }
}

/// A kernel task.
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Parent process id (0 for processes started by the embedding web
    /// application through the host API).
    pub ppid: Pid,
    /// Process-group id (initially the parent's group; host-started
    /// processes lead their own group).
    pub pgid: Pid,
    /// Executable name, for diagnostics (`ps`-style listings).
    pub name: String,
    /// Path of the executable the task was started from.
    pub exe_path: String,
    /// Current working directory.
    pub cwd: String,
    /// Lifecycle state.
    pub state: TaskState,
    /// Open file descriptors.
    pub files: FdTable,
    /// The Web Worker running the process, if still alive.
    pub worker: Option<Worker>,
    /// Signal state: installed actions, blocked mask, pending set.
    pub signals: SignalState,
    /// Whether the current stop has been reported to a `WUNTRACED` waiter
    /// (each stop is reported at most once, like Linux).
    pub stop_reported: bool,
    /// System-call batches that arrived while the task was stopped; replayed
    /// in arrival order on SIGCONT.
    pub stashed_transports: Vec<Transport>,
    /// Registered shared heap for synchronous system calls.
    pub sync_heap: Option<SyncHeap>,
    /// Persistent submission/completion ring mapped into the shared heap
    /// (set up once by `RingSetup` after heap registration).
    pub ring: Option<Ring>,
    /// Ring completions that could not be posted yet (completion queue full
    /// or no registered buffer free); flushed on every ring drain pass.
    pub pending_cqes: std::collections::VecDeque<(u32, SysResult)>,
    /// The submission batch currently awaiting delivery of its completions.
    pub inflight: Option<InflightBatch>,
    /// Child process ids (live or zombie).
    pub children: Vec<Pid>,
    /// Argument vector the task was started with.
    pub args: Vec<String>,
    /// Environment the task was started with.
    pub env: Vec<(String, String)>,
    /// The launcher that started this task; reused by `fork`.
    pub launcher: Option<Arc<dyn ProgramLauncher>>,
    /// The task's virtual address space: `mmap` regions, COW pages, shared
    /// mappings.
    pub address_space: AddressSpace,
    /// System calls dispatched for this task, over every transport
    /// (reported by `getrusage` as the `syscalls` counter).
    pub syscall_count: u64,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("pid", &self.pid)
            .field("ppid", &self.ppid)
            .field("name", &self.name)
            .field("cwd", &self.cwd)
            .field("state", &self.state)
            .field("fds", &self.files.len())
            .field("children", &self.children)
            .finish()
    }
}

impl Task {
    /// Creates a fresh running task with an empty descriptor table.
    pub fn new(pid: Pid, ppid: Pid, name: &str, exe_path: &str, cwd: &str) -> Task {
        Task {
            pid,
            ppid,
            pgid: pid,
            name: name.to_owned(),
            exe_path: exe_path.to_owned(),
            cwd: cwd.to_owned(),
            state: TaskState::Running,
            files: FdTable::new(),
            worker: None,
            signals: SignalState::new(),
            stop_reported: false,
            stashed_transports: Vec::new(),
            sync_heap: None,
            ring: None,
            pending_cqes: std::collections::VecDeque::new(),
            inflight: None,
            children: Vec::new(),
            args: Vec::new(),
            env: Vec::new(),
            launcher: None,
            address_space: AddressSpace::new(),
            syscall_count: 0,
        }
    }

    /// Whether the task is still running.
    pub fn is_running(&self) -> bool {
        matches!(self.state, TaskState::Running)
    }

    /// Whether the task is alive (running or stopped) — i.e. a valid signal
    /// target.
    pub fn is_alive(&self) -> bool {
        !self.is_zombie()
    }

    /// Whether the task is suspended by a stop signal.
    pub fn is_stopped(&self) -> bool {
        matches!(self.state, TaskState::Stopped { .. })
    }

    /// Whether the task is a zombie awaiting `wait4`.
    pub fn is_zombie(&self) -> bool {
        matches!(self.state, TaskState::Zombie { .. })
    }

    /// The zombie's wait status, if it has one.
    pub fn wait_status(&self) -> Option<i32> {
        match self.state {
            TaskState::Zombie { status } => Some(status),
            TaskState::Running | TaskState::Stopped { .. } => None,
        }
    }

    /// The stop signal currently suspending the task, if any.
    pub fn stop_signal(&self) -> Option<Signal> {
        match self.state {
            TaskState::Stopped { signal } => Some(signal),
            _ => None,
        }
    }

    /// Whether the task has installed a handler for `signal`.
    pub fn handles_signal(&self, signal: Signal) -> bool {
        self.signals.handles(signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_is_running_with_no_fds() {
        let task = Task::new(3, 1, "cat", "/usr/bin/cat", "/home");
        assert!(task.is_running());
        assert!(!task.is_zombie());
        assert_eq!(task.wait_status(), None);
        assert_eq!(task.files.len(), 0);
        assert_eq!(task.cwd, "/home");
        assert_eq!(task.pid, 3);
        assert_eq!(task.ppid, 1);
    }

    #[test]
    fn zombie_state_carries_status() {
        let mut task = Task::new(5, 1, "ls", "/usr/bin/ls", "/");
        task.state = TaskState::Zombie { status: 0x100 };
        assert!(task.is_zombie());
        assert_eq!(task.wait_status(), Some(0x100));
    }

    #[test]
    fn signal_handler_registration() {
        use crate::signals::SigAction;
        let mut task = Task::new(2, 1, "sh", "/bin/sh", "/");
        assert!(!task.handles_signal(Signal::SIGCHLD));
        task.signals
            .set_action(Signal::SIGCHLD, SigAction::Handler { restart: false });
        assert!(task.handles_signal(Signal::SIGCHLD));
        task.signals.set_action(Signal::SIGCHLD, SigAction::Default);
        assert!(!task.handles_signal(Signal::SIGCHLD));
    }

    #[test]
    fn stopped_state_is_alive_but_not_running() {
        let mut task = Task::new(6, 1, "cat", "/usr/bin/cat", "/");
        assert_eq!(task.pgid, 6);
        task.state = TaskState::Stopped {
            signal: Signal::SIGTSTP,
        };
        assert!(!task.is_running());
        assert!(task.is_stopped());
        assert!(task.is_alive());
        assert_eq!(task.stop_signal(), Some(Signal::SIGTSTP));
        assert_eq!(task.wait_status(), None);
    }

    #[test]
    fn debug_output_is_compact() {
        let task = Task::new(1, 0, "make", "/usr/bin/make", "/proj");
        let text = format!("{task:?}");
        assert!(text.contains("make"));
        assert!(text.contains("pid: 1"));
    }
}
