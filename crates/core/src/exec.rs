//! Executable resolution and the program-launcher interface.
//!
//! In Browsix, "executables include JavaScript files, files beginning with a
//! shebang line, and WebAssembly files."  The kernel starts a worker from a
//! dynamically created blob URL holding the executable's bytes, and the
//! process's runtime delays `main()` until an "init" message delivers the
//! argument vector and environment.
//!
//! The Rust reproduction keeps the same flow.  Compiled-to-JavaScript programs
//! are stood in for by [`ProgramLauncher`] implementations registered in an
//! [`ExecutableRegistry`] (the runtime crates register the coreutils, the
//! shell, the TeX tools and so on), and shebang scripts on the shared file
//! system are resolved to the interpreter registered for them.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::RwLock;

use browsix_browser::{PlatformConfig, WorkerScope};
use browsix_fs::{Errno, FileSystem};

use crate::events::KernelEvent;
use crate::task::Pid;

/// A snapshot of a forked process's guest state, shipped to the kernel by the
/// parent's runtime and handed to the child in its init message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForkImage {
    /// Serialized guest memory (the Emscripten heap and stack).
    pub image: Vec<u8>,
    /// Resume point for the interpreter (the Emterpreter program counter).
    pub resume_point: u64,
}

/// Everything a launcher needs to run a process inside its worker.
pub struct LaunchContext {
    /// The process id assigned by the kernel.
    pub pid: Pid,
    /// The platform cost model in effect.
    pub config: PlatformConfig,
    /// Channel for sending system calls to the kernel (the analogue of
    /// `postMessage` to the main browser context).
    pub kernel: Sender<KernelEvent>,
    /// The worker's receive side: the init message, system-call responses and
    /// signals arrive here.
    pub scope: WorkerScope,
}

impl std::fmt::Debug for LaunchContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchContext").field("pid", &self.pid).finish()
    }
}

/// The init-message payload the kernel sends right after starting a worker.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcessStart {
    /// Argument vector (`argv[0]` is the program name).
    pub args: Vec<String>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Working directory.
    pub cwd: String,
    /// Blob URL of the executable's bytes, when the executable came from the
    /// shared file system.
    pub blob_url: Option<String>,
    /// Fork snapshot, present only for children created by `fork`.
    pub fork_image: Option<ForkImage>,
}

/// Launches a program inside a freshly created worker.
///
/// Implementations live in the runtime crates (Emscripten, GopherJS and
/// Node.js integrations); the kernel only needs to know how to hand over the
/// worker scope and process id.
pub trait ProgramLauncher: Send + Sync {
    /// Runs the program.  Called on the worker's thread; returns when the
    /// process is finished (the launcher is responsible for issuing the final
    /// `exit` system call, as the paper requires of Browsix runtimes).
    fn launch(&self, ctx: LaunchContext);

    /// A short name describing the runtime, for diagnostics.
    fn runtime_name(&self) -> &'static str {
        "unknown"
    }
}

#[derive(Default)]
struct RegistryInner {
    programs: HashMap<String, Arc<dyn ProgramLauncher>>,
    interpreters: HashMap<String, Arc<dyn ProgramLauncher>>,
}

/// The table of runnable programs and interpreters known to the kernel.
#[derive(Clone, Default)]
pub struct ExecutableRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl std::fmt::Debug for ExecutableRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("ExecutableRegistry")
            .field("programs", &inner.programs.len())
            .field("interpreters", &inner.interpreters.len())
            .finish()
    }
}

impl ExecutableRegistry {
    /// Creates an empty registry.
    pub fn new() -> ExecutableRegistry {
        ExecutableRegistry::default()
    }

    /// Registers a program at an absolute path (e.g. `/usr/bin/ls`).
    pub fn register(&self, path: &str, launcher: Arc<dyn ProgramLauncher>) {
        self.inner
            .write()
            .programs
            .insert(browsix_fs::path::normalize(path), launcher);
    }

    /// Registers an interpreter by name (e.g. `node`, `sh`), used to resolve
    /// shebang lines such as `#!/usr/bin/env node`.
    pub fn register_interpreter(&self, name: &str, launcher: Arc<dyn ProgramLauncher>) {
        self.inner.write().interpreters.insert(name.to_owned(), launcher);
    }

    /// Looks up a program by exact (normalised) path.
    pub fn lookup(&self, path: &str) -> Option<Arc<dyn ProgramLauncher>> {
        self.inner
            .read()
            .programs
            .get(&browsix_fs::path::normalize(path))
            .cloned()
    }

    /// Looks up an interpreter by name or by the basename of a path.
    pub fn lookup_interpreter(&self, name_or_path: &str) -> Option<Arc<dyn ProgramLauncher>> {
        let inner = self.inner.read();
        if let Some(launcher) = inner.interpreters.get(name_or_path) {
            return Some(Arc::clone(launcher));
        }
        let base = browsix_fs::path::basename(name_or_path);
        inner.interpreters.get(&base).cloned()
    }

    /// All registered program paths, sorted (used by `ls`-style tooling and
    /// the Figure 2 component report).
    pub fn registered_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.inner.read().programs.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.inner.read().programs.len()
    }

    /// Whether no programs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The outcome of resolving a path into something the kernel can start.
pub struct ResolvedExecutable {
    /// The launcher that will run the process.
    pub launcher: Arc<dyn ProgramLauncher>,
    /// Arguments to insert before the caller's argv (for shebang scripts the
    /// interpreter name and the script path).
    pub prepend_args: Vec<String>,
    /// The executable's bytes, if they were read from the file system (used
    /// to create the blob URL).
    pub file_bytes: Option<Vec<u8>>,
}

impl std::fmt::Debug for ResolvedExecutable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedExecutable")
            .field("runtime", &self.launcher.runtime_name())
            .field("prepend_args", &self.prepend_args)
            .finish()
    }
}

/// Parses a shebang line, returning the interpreter and an optional single
/// argument, e.g. `#!/usr/bin/env node` -> `("node", None)` and
/// `#!/bin/sh -e` -> `("/bin/sh", Some("-e"))`.
pub fn parse_shebang(contents: &[u8]) -> Option<(String, Option<String>)> {
    if !contents.starts_with(b"#!") {
        return None;
    }
    let line_end = contents.iter().position(|&b| b == b'\n').unwrap_or(contents.len());
    let line = std::str::from_utf8(&contents[2..line_end]).ok()?.trim();
    let mut parts = line.split_whitespace();
    let interpreter = parts.next()?.to_owned();
    let first_arg = parts.next().map(|s| s.to_owned());
    // `#!/usr/bin/env node` means "find node"; collapse it.
    if browsix_fs::path::basename(&interpreter) == "env" {
        let real = first_arg?;
        return Some((real, parts.next().map(|s| s.to_owned())));
    }
    Some((interpreter, first_arg))
}

/// Resolves `path` into a launcher, consulting the registry first and falling
/// back to shebang scripts stored on the shared file system.
///
/// # Errors
///
/// * [`Errno::ENOENT`] if the path does not exist anywhere.
/// * [`Errno::EACCES`] if the file exists but is not something the kernel can
///   execute (no registered launcher, no shebang).
/// * [`Errno::EISDIR`] if the path is a directory.
pub fn resolve_executable(
    fs: &dyn FileSystem,
    registry: &ExecutableRegistry,
    path: &str,
) -> Result<ResolvedExecutable, Errno> {
    if let Some(launcher) = registry.lookup(path) {
        return Ok(ResolvedExecutable {
            launcher,
            prepend_args: Vec::new(),
            file_bytes: None,
        });
    }
    let meta = fs.stat(path)?;
    if meta.is_dir() {
        return Err(Errno::EISDIR);
    }
    let contents = fs.read_file(path)?;
    if let Some((interpreter, arg)) = parse_shebang(&contents) {
        // Prefer a program registered at the interpreter path, then a named
        // interpreter registration.
        let launcher = registry
            .lookup(&interpreter)
            .or_else(|| registry.lookup_interpreter(&interpreter))
            .ok_or(Errno::ENOENT)?;
        let mut prepend = vec![interpreter];
        if let Some(arg) = arg {
            prepend.push(arg);
        }
        prepend.push(browsix_fs::path::normalize(path));
        return Ok(ResolvedExecutable {
            launcher,
            prepend_args: prepend,
            file_bytes: Some(contents),
        });
    }
    Err(Errno::EACCES)
}

/// Searches `PATH`-style directories for a command name, returning the first
/// absolute path that exists in the registry or on the file system.  Used by
/// the shell and by `kernel.system`.
pub fn search_path(
    fs: &dyn FileSystem,
    registry: &ExecutableRegistry,
    command: &str,
    path_var: &str,
) -> Option<String> {
    if command.contains('/') {
        let normalized = browsix_fs::path::normalize(command);
        if registry.lookup(&normalized).is_some() || fs.exists(&normalized) {
            return Some(normalized);
        }
        return None;
    }
    for dir in path_var.split(':').filter(|d| !d.is_empty()) {
        let candidate = browsix_fs::path::resolve(dir, command);
        if registry.lookup(&candidate).is_some() || fs.exists(&candidate) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::MemFs;

    struct DummyLauncher(&'static str);
    impl ProgramLauncher for DummyLauncher {
        fn launch(&self, _ctx: LaunchContext) {}
        fn runtime_name(&self) -> &'static str {
            self.0
        }
    }

    fn launcher(name: &'static str) -> Arc<dyn ProgramLauncher> {
        Arc::new(DummyLauncher(name))
    }

    #[test]
    fn registry_lookup_by_normalized_path() {
        let registry = ExecutableRegistry::new();
        assert!(registry.is_empty());
        registry.register("/usr/bin/ls", launcher("node"));
        assert!(registry.lookup("/usr/bin/ls").is_some());
        assert!(registry.lookup("/usr/bin/../bin/ls").is_some());
        assert!(registry.lookup("/usr/bin/cat").is_none());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.registered_paths(), vec!["/usr/bin/ls".to_string()]);
    }

    #[test]
    fn interpreter_lookup_by_name_or_path() {
        let registry = ExecutableRegistry::new();
        registry.register_interpreter("node", launcher("node"));
        assert!(registry.lookup_interpreter("node").is_some());
        assert!(registry.lookup_interpreter("/usr/bin/node").is_some());
        assert!(registry.lookup_interpreter("python").is_none());
    }

    #[test]
    fn shebang_parsing() {
        assert_eq!(
            parse_shebang(b"#!/usr/bin/env node\nconsole.log(1)"),
            Some(("node".into(), None))
        );
        assert_eq!(
            parse_shebang(b"#!/bin/sh -e\necho hi"),
            Some(("/bin/sh".into(), Some("-e".into())))
        );
        assert_eq!(parse_shebang(b"#!/bin/dash\n"), Some(("/bin/dash".into(), None)));
        assert_eq!(parse_shebang(b"echo no shebang"), None);
        assert_eq!(parse_shebang(b""), None);
    }

    #[test]
    fn resolve_prefers_registry_then_shebang() {
        let fs = MemFs::new();
        let registry = ExecutableRegistry::new();
        registry.register("/usr/bin/ls", launcher("node"));
        registry.register_interpreter("sh", launcher("shell"));

        // Registered program.
        let resolved = resolve_executable(&fs, &registry, "/usr/bin/ls").unwrap();
        assert_eq!(resolved.launcher.runtime_name(), "node");
        assert!(resolved.prepend_args.is_empty());

        // Shebang script on the file system.
        fs.mkdir("/scripts").unwrap();
        fs.write_file("/scripts/build.sh", b"#!/bin/sh\nmake all\n").unwrap();
        let resolved = resolve_executable(&fs, &registry, "/scripts/build.sh").unwrap();
        assert_eq!(resolved.launcher.runtime_name(), "shell");
        assert_eq!(
            resolved.prepend_args,
            vec!["/bin/sh".to_string(), "/scripts/build.sh".to_string()]
        );
        assert!(resolved.file_bytes.is_some());
    }

    #[test]
    fn resolve_error_cases() {
        let fs = MemFs::new();
        let registry = ExecutableRegistry::new();
        assert_eq!(
            resolve_executable(&fs, &registry, "/missing").err(),
            Some(Errno::ENOENT)
        );
        fs.mkdir("/dir").unwrap();
        assert_eq!(resolve_executable(&fs, &registry, "/dir").err(), Some(Errno::EISDIR));
        fs.write_file("/data.bin", &[0u8, 1, 2]).unwrap();
        assert_eq!(
            resolve_executable(&fs, &registry, "/data.bin").err(),
            Some(Errno::EACCES)
        );
        // Shebang pointing at an unknown interpreter.
        fs.write_file("/script.py", b"#!/usr/bin/python\nprint(1)\n").unwrap();
        assert_eq!(
            resolve_executable(&fs, &registry, "/script.py").err(),
            Some(Errno::ENOENT)
        );
    }

    #[test]
    fn path_search() {
        let fs = MemFs::new();
        let registry = ExecutableRegistry::new();
        registry.register("/usr/bin/grep", launcher("node"));
        fs.mkdir("/home").unwrap();
        fs.write_file("/home/tool.sh", b"#!/bin/sh\n").unwrap();

        assert_eq!(
            search_path(&fs, &registry, "grep", "/bin:/usr/bin"),
            Some("/usr/bin/grep".to_string())
        );
        assert_eq!(search_path(&fs, &registry, "missing", "/bin:/usr/bin"), None);
        // Commands containing a slash bypass the search.
        assert_eq!(
            search_path(&fs, &registry, "/home/tool.sh", "/bin"),
            Some("/home/tool.sh".to_string())
        );
        assert_eq!(search_path(&fs, &registry, "/home/nothing", "/bin"), None);
    }
}
