//! The generated ABI manifest: per-opcode descriptors, generation counts and
//! the ring-safety classifier, all derived from `abi/syscalls.abi` at build
//! time by `browsix-abigen`.
//!
//! This module is how the rest of the system asks questions *about* the ABI
//! (as opposed to using it): the runtime's ring submission path consults
//! [`ring_safe`], and `table1_features` prints [`MANIFEST`] so ABI growth is
//! visible release over release.
//!
//! # Example
//!
//! ```
//! use browsix_core::abi;
//!
//! // Every opcode is described, in order, and the manifest counts agree.
//! assert_eq!(abi::SYSCALLS.len() as u32, abi::MANIFEST.syscall_count);
//! assert_eq!(abi::SYSCALLS[0].name, "spawn");
//!
//! // `getpid` is ring-safe; a directory read never rides the ring.
//! use browsix_core::Syscall;
//! assert!(abi::ring_safe(&Syscall::GetPid, 4096));
//! assert!(!abi::ring_safe(&Syscall::Readdir { path: "/".into() }, 4096));
//! ```

use crate::syscall::Syscall;

/// Compile-time description of one system call, straight from the IDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallDesc {
    /// Wire/statistics name, e.g. `"llseek"`.
    pub name: &'static str,
    /// Wire opcode; append-only, never reused.
    pub opcode: u8,
    /// Figure 3 class, e.g. `"File IO"`.
    pub class: &'static str,
    /// Human-readable ring-safety classification.
    pub ring: &'static str,
}

/// Counts describing the generated ABI, printed by `table1_features` and CI
/// so the surface's growth shows up in the paper figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbiManifest {
    /// Wire codec version (the byte after the frame magic).
    pub wire_version: u8,
    /// Number of system calls.
    pub syscall_count: u32,
    /// Highest assigned opcode (equals `syscall_count` while the space stays
    /// dense; a retired call would leave a permanent gap).
    pub max_opcode: u32,
    /// Number of result tags.
    pub result_count: u32,
    /// Calls eligible for the persistent-ring transport (including capped
    /// ones).
    pub ring_eligible: u32,
    /// Calls that always use a framed batch.
    pub framed_only: u32,
}

include!(concat!(env!("OUT_DIR"), "/abi_gen.rs"));
