//! Pipes.
//!
//! Browsix pipes are "implemented as in-memory buffers with read-side wait
//! queues": a bounded byte buffer living inside the kernel.  Reads on an empty
//! pipe and writes to a full pipe are not completed until data or space is
//! available — the kernel keeps the system call pending and retries it when
//! the pipe's state changes (see `kernel::pending`).  The same buffers also
//! carry socket streams (one pipe per direction).

use std::collections::{HashMap, VecDeque};

/// Identifier of a kernel pipe buffer.
pub type PipeId = u64;

/// Default pipe capacity, matching the Linux default of 64 KiB.
pub const DEFAULT_PIPE_CAPACITY: usize = 64 * 1024;

/// A single in-kernel pipe buffer.
#[derive(Debug)]
pub struct Pipe {
    buffer: VecDeque<u8>,
    capacity: usize,
    /// Number of live open-file descriptions referring to the read end.
    pub readers: usize,
    /// Number of live open-file descriptions referring to the write end.
    pub writers: usize,
}

impl Pipe {
    /// Creates an empty pipe with the given capacity.
    pub fn new(capacity: usize) -> Pipe {
        Pipe {
            buffer: VecDeque::new(),
            capacity,
            readers: 0,
            writers: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Remaining space before writers must block.
    pub fn space(&self) -> usize {
        self.capacity.saturating_sub(self.buffer.len())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether all write ends are closed (EOF once drained).
    pub fn write_end_closed(&self) -> bool {
        self.writers == 0
    }

    /// Whether all read ends are closed (writes raise EPIPE).
    pub fn read_end_closed(&self) -> bool {
        self.readers == 0
    }

    /// Appends as much of `data` as fits, returning the number of bytes
    /// accepted.
    pub fn push(&mut self, data: &[u8]) -> usize {
        let accept = data.len().min(self.space());
        self.buffer.extend(&data[..accept]);
        accept
    }

    /// Removes and returns up to `len` bytes.
    pub fn pop(&mut self, len: usize) -> Vec<u8> {
        let take = len.min(self.buffer.len());
        self.buffer.drain(..take).collect()
    }
}

/// The kernel's table of pipes.
#[derive(Debug, Default)]
pub struct PipeTable {
    next_id: PipeId,
    pipes: HashMap<PipeId, Pipe>,
}

impl PipeTable {
    /// Creates an empty table.
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Allocates a new pipe with the default capacity and returns its id.
    pub fn create(&mut self) -> PipeId {
        self.create_with_capacity(DEFAULT_PIPE_CAPACITY)
    }

    /// Allocates a new pipe with an explicit capacity.
    pub fn create_with_capacity(&mut self, capacity: usize) -> PipeId {
        let id = self.next_id;
        self.next_id += 1;
        self.pipes.insert(id, Pipe::new(capacity));
        id
    }

    /// Looks up a pipe.
    pub fn get(&self, id: PipeId) -> Option<&Pipe> {
        self.pipes.get(&id)
    }

    /// Looks up a pipe mutably.
    pub fn get_mut(&mut self, id: PipeId) -> Option<&mut Pipe> {
        self.pipes.get_mut(&id)
    }

    /// Removes a pipe whose endpoints are all gone.
    pub fn remove(&mut self, id: PipeId) {
        self.pipes.remove(&id);
    }

    /// Number of live pipes.
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// Whether there are no live pipes.
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Resets every pipe's endpoint counts to zero; the kernel recomputes them
    /// by scanning all descriptor tables after any change (close, exit,
    /// spawn), which keeps the reference counts trivially correct.
    pub fn reset_endpoint_counts(&mut self) {
        for pipe in self.pipes.values_mut() {
            pipe.readers = 0;
            pipe.writers = 0;
        }
    }

    /// Drops pipes with no readers, no writers and no buffered data.
    pub fn collect_garbage(&mut self) {
        self.pipes
            .retain(|_, pipe| pipe.readers > 0 || pipe.writers > 0 || !pipe.is_empty());
    }

    /// Ids of all live pipes (used by tests and statistics).
    pub fn ids(&self) -> Vec<PipeId> {
        self.pipes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_preserve_fifo_order() {
        let mut pipe = Pipe::new(16);
        assert_eq!(pipe.push(b"hello "), 6);
        assert_eq!(pipe.push(b"world"), 5);
        assert_eq!(pipe.pop(6), b"hello ");
        assert_eq!(pipe.pop(100), b"world");
        assert!(pipe.is_empty());
    }

    #[test]
    fn push_respects_capacity() {
        let mut pipe = Pipe::new(4);
        assert_eq!(pipe.push(b"abcdef"), 4);
        assert_eq!(pipe.space(), 0);
        assert_eq!(pipe.push(b"x"), 0);
        pipe.pop(2);
        assert_eq!(pipe.space(), 2);
        assert_eq!(pipe.push(b"yz!"), 2);
        assert_eq!(pipe.pop(10), b"cdyz");
    }

    #[test]
    fn endpoint_flags() {
        let mut pipe = Pipe::new(8);
        assert!(pipe.write_end_closed());
        assert!(pipe.read_end_closed());
        pipe.readers = 1;
        pipe.writers = 2;
        assert!(!pipe.write_end_closed());
        assert!(!pipe.read_end_closed());
        assert_eq!(pipe.capacity(), 8);
    }

    #[test]
    fn table_creates_unique_ids() {
        let mut table = PipeTable::new();
        let a = table.create();
        let b = table.create_with_capacity(128);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(b).unwrap().capacity(), 128);
        assert!(table.get(999).is_none());
        assert_eq!(table.ids().len(), 2);
    }

    #[test]
    fn garbage_collection_keeps_pipes_with_data_or_endpoints() {
        let mut table = PipeTable::new();
        let dead = table.create();
        let buffered = table.create();
        let referenced = table.create();
        table.get_mut(buffered).unwrap().push(b"pending data");
        table.get_mut(referenced).unwrap().readers = 1;
        table.collect_garbage();
        assert!(table.get(dead).is_none());
        assert!(table.get(buffered).is_some());
        assert!(table.get(referenced).is_some());
        assert!(!table.is_empty());
    }

    #[test]
    fn reset_endpoint_counts_zeroes_everything() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.get_mut(id).unwrap().readers = 3;
        table.get_mut(id).unwrap().writers = 2;
        table.reset_endpoint_counts();
        assert_eq!(table.get(id).unwrap().readers, 0);
        assert_eq!(table.get(id).unwrap().writers, 0);
    }

    #[test]
    fn remove_deletes_pipe() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.remove(id);
        assert!(table.get(id).is_none());
    }
}
