//! POSIX signals.
//!
//! Browsix "supports a substantial subset of the POSIX signals API, including
//! kill and signal handlers, letting processes communicate with each other
//! asynchronously".  The kernel dispatches signals to processes over the same
//! message-passing interface as system-call responses; SIGKILL is handled in
//! the kernel by terminating the target's worker.

use std::fmt;

/// The subset of POSIX signals Browsix understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Hang up (1).
    SIGHUP,
    /// Interactive interrupt (2).
    SIGINT,
    /// Quit (3).
    SIGQUIT,
    /// Kill, cannot be caught (9).
    SIGKILL,
    /// User-defined signal 1 (10).
    SIGUSR1,
    /// User-defined signal 2 (12).
    SIGUSR2,
    /// Broken pipe (13).
    SIGPIPE,
    /// Alarm clock (14).
    SIGALRM,
    /// Termination request (15).
    SIGTERM,
    /// Child stopped or terminated (17).
    SIGCHLD,
    /// Continue (18).
    SIGCONT,
    /// Stop, cannot be caught (19).
    SIGSTOP,
}

/// What the kernel does with a signal when the process has not installed a
/// handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalDisposition {
    /// Terminate the process.
    Terminate,
    /// Ignore the signal.
    Ignore,
}

impl Signal {
    /// The Linux signal number.
    pub fn number(self) -> i32 {
        match self {
            Signal::SIGHUP => 1,
            Signal::SIGINT => 2,
            Signal::SIGQUIT => 3,
            Signal::SIGKILL => 9,
            Signal::SIGUSR1 => 10,
            Signal::SIGUSR2 => 12,
            Signal::SIGPIPE => 13,
            Signal::SIGALRM => 14,
            Signal::SIGTERM => 15,
            Signal::SIGCHLD => 17,
            Signal::SIGCONT => 18,
            Signal::SIGSTOP => 19,
        }
    }

    /// Reconstructs a signal from its number.
    pub fn from_number(number: i32) -> Option<Signal> {
        ALL_SIGNALS.iter().copied().find(|s| s.number() == number)
    }

    /// Parses a symbolic name, with or without the `SIG` prefix
    /// (`"KILL"`, `"SIGKILL"` and `"sigkill"` all work, as with `kill(1)`).
    pub fn from_name(name: &str) -> Option<Signal> {
        let upper = name.to_ascii_uppercase();
        let full = if upper.starts_with("SIG") {
            upper
        } else {
            format!("SIG{upper}")
        };
        ALL_SIGNALS.iter().copied().find(|s| s.name() == full)
    }

    /// The symbolic name, e.g. `"SIGTERM"`.
    pub fn name(self) -> &'static str {
        match self {
            Signal::SIGHUP => "SIGHUP",
            Signal::SIGINT => "SIGINT",
            Signal::SIGQUIT => "SIGQUIT",
            Signal::SIGKILL => "SIGKILL",
            Signal::SIGUSR1 => "SIGUSR1",
            Signal::SIGUSR2 => "SIGUSR2",
            Signal::SIGPIPE => "SIGPIPE",
            Signal::SIGALRM => "SIGALRM",
            Signal::SIGTERM => "SIGTERM",
            Signal::SIGCHLD => "SIGCHLD",
            Signal::SIGCONT => "SIGCONT",
            Signal::SIGSTOP => "SIGSTOP",
        }
    }

    /// The action taken when no handler is installed.
    pub fn default_disposition(self) -> SignalDisposition {
        match self {
            Signal::SIGCHLD | Signal::SIGCONT => SignalDisposition::Ignore,
            _ => SignalDisposition::Terminate,
        }
    }

    /// Whether user code is allowed to install a handler (SIGKILL and SIGSTOP
    /// cannot be caught).
    pub fn catchable(self) -> bool {
        !matches!(self, Signal::SIGKILL | Signal::SIGSTOP)
    }

    /// The wait-status value reported for a process terminated by this signal
    /// (the low 7 bits of the status word, as in Linux).
    pub fn termination_status(self) -> i32 {
        self.number() & 0x7f
    }
}

/// All signals known to the kernel.
pub const ALL_SIGNALS: &[Signal] = &[
    Signal::SIGHUP,
    Signal::SIGINT,
    Signal::SIGQUIT,
    Signal::SIGKILL,
    Signal::SIGUSR1,
    Signal::SIGUSR2,
    Signal::SIGPIPE,
    Signal::SIGALRM,
    Signal::SIGTERM,
    Signal::SIGCHLD,
    Signal::SIGCONT,
    Signal::SIGSTOP,
];

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for &sig in ALL_SIGNALS {
            assert_eq!(Signal::from_number(sig.number()), Some(sig));
        }
        assert_eq!(Signal::from_number(0), None);
        assert_eq!(Signal::from_number(64), None);
    }

    #[test]
    fn names_parse_flexibly() {
        assert_eq!(Signal::from_name("SIGKILL"), Some(Signal::SIGKILL));
        assert_eq!(Signal::from_name("kill"), Some(Signal::SIGKILL));
        assert_eq!(Signal::from_name("TERM"), Some(Signal::SIGTERM));
        assert_eq!(Signal::from_name("sigchld"), Some(Signal::SIGCHLD));
        assert_eq!(Signal::from_name("NOTASIG"), None);
    }

    #[test]
    fn default_dispositions() {
        assert_eq!(Signal::SIGTERM.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGKILL.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGPIPE.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGCHLD.default_disposition(), SignalDisposition::Ignore);
        assert_eq!(Signal::SIGCONT.default_disposition(), SignalDisposition::Ignore);
    }

    #[test]
    fn kill_and_stop_cannot_be_caught() {
        assert!(!Signal::SIGKILL.catchable());
        assert!(!Signal::SIGSTOP.catchable());
        assert!(Signal::SIGTERM.catchable());
        assert!(Signal::SIGUSR1.catchable());
    }

    #[test]
    fn linux_numbers_match() {
        assert_eq!(Signal::SIGKILL.number(), 9);
        assert_eq!(Signal::SIGTERM.number(), 15);
        assert_eq!(Signal::SIGCHLD.number(), 17);
        assert_eq!(Signal::SIGPIPE.number(), 13);
    }

    #[test]
    fn display_and_termination_status() {
        assert_eq!(Signal::SIGKILL.to_string(), "SIGKILL");
        assert_eq!(Signal::SIGKILL.termination_status(), 9);
    }
}
