//! POSIX signals: numbers, names, dispositions, and the per-task signal
//! state (pending set, blocked mask, installed actions).
//!
//! Browsix "supports a substantial subset of the POSIX signals API, including
//! kill and signal handlers, letting processes communicate with each other
//! asynchronously".  The kernel dispatches signals to processes over the same
//! message-passing interface as system-call responses; SIGKILL is handled in
//! the kernel by terminating the target's worker, and the job-control stop
//! signals (SIGSTOP/SIGTSTP/SIGTTIN/SIGTTOU) are handled in the kernel by
//! parking the task in the `Stopped` state.
//!
//! [`SignalState`] is the pure model of `sigaction`/`sigprocmask` semantics:
//! a signal sent while blocked sits in the pending *set* (so repeated sends
//! coalesce, as POSIX specifies for standard signals) and is delivered
//! exactly once when unblocked.  The kernel embeds one per task; the
//! model-based property tests exercise it directly.

use std::collections::HashMap;
use std::fmt;

/// The subset of POSIX signals Browsix understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Hang up (1).
    SIGHUP,
    /// Interactive interrupt (2).
    SIGINT,
    /// Quit (3).
    SIGQUIT,
    /// Kill, cannot be caught (9).
    SIGKILL,
    /// User-defined signal 1 (10).
    SIGUSR1,
    /// User-defined signal 2 (12).
    SIGUSR2,
    /// Broken pipe (13).
    SIGPIPE,
    /// Alarm clock (14).
    SIGALRM,
    /// Termination request (15).
    SIGTERM,
    /// Child stopped or terminated (17).
    SIGCHLD,
    /// Continue (18).
    SIGCONT,
    /// Stop, cannot be caught (19).
    SIGSTOP,
    /// Interactive stop from the terminal, `Ctrl-Z` (20).
    SIGTSTP,
    /// Background read from the controlling terminal (21).
    SIGTTIN,
    /// Background write to the controlling terminal (22).
    SIGTTOU,
}

/// What the kernel does with a signal when the process has not installed a
/// handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalDisposition {
    /// Terminate the process.
    Terminate,
    /// Ignore the signal.
    Ignore,
    /// Stop (suspend) the process until SIGCONT.
    Stop,
    /// Resume the process if stopped.
    Continue,
}

impl Signal {
    /// The Linux signal number.
    pub fn number(self) -> i32 {
        match self {
            Signal::SIGHUP => 1,
            Signal::SIGINT => 2,
            Signal::SIGQUIT => 3,
            Signal::SIGKILL => 9,
            Signal::SIGUSR1 => 10,
            Signal::SIGUSR2 => 12,
            Signal::SIGPIPE => 13,
            Signal::SIGALRM => 14,
            Signal::SIGTERM => 15,
            Signal::SIGCHLD => 17,
            Signal::SIGCONT => 18,
            Signal::SIGSTOP => 19,
            Signal::SIGTSTP => 20,
            Signal::SIGTTIN => 21,
            Signal::SIGTTOU => 22,
        }
    }

    /// Reconstructs a signal from its number.
    pub fn from_number(number: i32) -> Option<Signal> {
        ALL_SIGNALS.iter().copied().find(|s| s.number() == number)
    }

    /// Parses a symbolic name, with or without the `SIG` prefix
    /// (`"KILL"`, `"SIGKILL"` and `"sigkill"` all work, as with `kill(1)`).
    pub fn from_name(name: &str) -> Option<Signal> {
        let upper = name.to_ascii_uppercase();
        let full = if upper.starts_with("SIG") {
            upper
        } else {
            format!("SIG{upper}")
        };
        ALL_SIGNALS.iter().copied().find(|s| s.name() == full)
    }

    /// The symbolic name, e.g. `"SIGTERM"`.
    pub fn name(self) -> &'static str {
        match self {
            Signal::SIGHUP => "SIGHUP",
            Signal::SIGINT => "SIGINT",
            Signal::SIGQUIT => "SIGQUIT",
            Signal::SIGKILL => "SIGKILL",
            Signal::SIGUSR1 => "SIGUSR1",
            Signal::SIGUSR2 => "SIGUSR2",
            Signal::SIGPIPE => "SIGPIPE",
            Signal::SIGALRM => "SIGALRM",
            Signal::SIGTERM => "SIGTERM",
            Signal::SIGCHLD => "SIGCHLD",
            Signal::SIGCONT => "SIGCONT",
            Signal::SIGSTOP => "SIGSTOP",
            Signal::SIGTSTP => "SIGTSTP",
            Signal::SIGTTIN => "SIGTTIN",
            Signal::SIGTTOU => "SIGTTOU",
        }
    }

    /// The action taken when no handler is installed.
    pub fn default_disposition(self) -> SignalDisposition {
        match self {
            Signal::SIGCHLD => SignalDisposition::Ignore,
            Signal::SIGCONT => SignalDisposition::Continue,
            Signal::SIGSTOP | Signal::SIGTSTP | Signal::SIGTTIN | Signal::SIGTTOU => SignalDisposition::Stop,
            _ => SignalDisposition::Terminate,
        }
    }

    /// Whether user code is allowed to install a handler (SIGKILL and SIGSTOP
    /// cannot be caught, blocked or ignored).
    pub fn catchable(self) -> bool {
        !matches!(self, Signal::SIGKILL | Signal::SIGSTOP)
    }

    /// The wait-status value reported for a process terminated by this signal
    /// (the low 7 bits of the status word, as in Linux).
    pub fn termination_status(self) -> i32 {
        self.number() & 0x7f
    }

    /// The bit this signal occupies in a [`SigSet`].
    fn bit(self) -> u64 {
        1u64 << (self.number() - 1)
    }
}

/// All signals known to the kernel.
pub const ALL_SIGNALS: &[Signal] = &[
    Signal::SIGHUP,
    Signal::SIGINT,
    Signal::SIGQUIT,
    Signal::SIGKILL,
    Signal::SIGUSR1,
    Signal::SIGUSR2,
    Signal::SIGPIPE,
    Signal::SIGALRM,
    Signal::SIGTERM,
    Signal::SIGCHLD,
    Signal::SIGCONT,
    Signal::SIGSTOP,
    Signal::SIGTSTP,
    Signal::SIGTTIN,
    Signal::SIGTTOU,
];

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of signals, stored as a Linux-style bitmask (bit `n-1` is signal
/// `n`).  This is the representation `sigprocmask` exchanges over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigSet(u64);

impl SigSet {
    /// The empty set.
    pub fn empty() -> SigSet {
        SigSet(0)
    }

    /// Builds a set from its raw bitmask (unknown bits are kept, so a mask
    /// round-trips through the wire unchanged).
    pub fn from_bits(bits: u64) -> SigSet {
        SigSet(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether the set contains `signal`.
    pub fn contains(self, signal: Signal) -> bool {
        self.0 & signal.bit() != 0
    }

    /// Adds a signal.
    pub fn insert(&mut self, signal: Signal) {
        self.0 |= signal.bit();
    }

    /// Removes a signal.
    pub fn remove(&mut self, signal: Signal) {
        self.0 &= !signal.bit();
    }

    /// Whether no signal is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: SigSet) -> SigSet {
        SigSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: SigSet) -> SigSet {
        SigSet(self.0 & !other.0)
    }

    /// The signals in the set, in number order.
    pub fn iter(self) -> impl Iterator<Item = Signal> {
        ALL_SIGNALS.iter().copied().filter(move |s| self.contains(*s))
    }
}

/// How a process asked a signal to be handled (`sigaction`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SigAction {
    /// Apply the signal's default disposition.
    #[default]
    Default,
    /// Discard the signal (`SIG_IGN`).
    Ignore,
    /// Deliver the signal to the process's handler.  With `restart` set
    /// (`SA_RESTART`), a system call interrupted by this signal is restarted
    /// instead of failing with `EINTR`.
    Handler {
        /// Whether `SA_RESTART` was requested.
        restart: bool,
    },
}

/// `sigprocmask` operation: add the mask to the blocked set.
pub const SIG_BLOCK: u32 = 0;
/// `sigprocmask` operation: remove the mask from the blocked set.
pub const SIG_UNBLOCK: u32 = 1;
/// `sigprocmask` operation: replace the blocked set with the mask.
pub const SIG_SETMASK: u32 = 2;

/// Per-task signal state: installed actions, the blocked mask, and the
/// pending set.  Pure (no kernel types), so it can be model-checked directly.
#[derive(Debug, Clone, Default)]
pub struct SignalState {
    actions: HashMap<Signal, SigAction>,
    blocked: SigSet,
    pending: SigSet,
}

impl SignalState {
    /// Fresh state: all defaults, nothing blocked, nothing pending.
    pub fn new() -> SignalState {
        SignalState::default()
    }

    /// The action installed for `signal` (SIGKILL and SIGSTOP always report
    /// [`SigAction::Default`]; they cannot be caught or ignored).
    pub fn action(&self, signal: Signal) -> SigAction {
        if !signal.catchable() {
            return SigAction::Default;
        }
        self.actions.get(&signal).copied().unwrap_or_default()
    }

    /// Installs an action.  The caller must have rejected uncatchable
    /// signals already; this silently ignores them as a second line of
    /// defence.
    pub fn set_action(&mut self, signal: Signal, action: SigAction) {
        if !signal.catchable() {
            return;
        }
        match action {
            SigAction::Default => {
                self.actions.remove(&signal);
            }
            other => {
                self.actions.insert(signal, other);
            }
        }
    }

    /// Whether a handler is installed for `signal`.
    pub fn handles(&self, signal: Signal) -> bool {
        matches!(self.action(signal), SigAction::Handler { .. })
    }

    /// The currently blocked mask.
    pub fn blocked(&self) -> SigSet {
        self.blocked
    }

    /// The currently pending set.
    pub fn pending(&self) -> SigSet {
        self.pending
    }

    /// Applies a `sigprocmask` operation, returning the *previous* mask and
    /// the signals that became deliverable (they were pending and are no
    /// longer blocked) — already removed from the pending set, so each is
    /// delivered exactly once.  SIGKILL and SIGSTOP can never be blocked.
    pub fn change_mask(&mut self, how: u32, mask: SigSet) -> Option<(SigSet, Vec<Signal>)> {
        let old = self.blocked;
        let unblockable = SigSet::from_bits(Signal::SIGKILL.bit() | Signal::SIGSTOP.bit());
        let new = match how {
            SIG_BLOCK => old.union(mask),
            SIG_UNBLOCK => old.difference(mask),
            SIG_SETMASK => mask,
            _ => return None,
        };
        self.blocked = new.difference(unblockable);
        let deliverable: Vec<Signal> = self.pending.difference(self.blocked).iter().collect();
        for signal in &deliverable {
            self.pending.remove(*signal);
        }
        Some((old, deliverable))
    }

    /// Records an incoming signal.  Returns `true` if the signal must be
    /// acted on now, or `false` if it was parked in the pending set (blocked,
    /// and not one of the unblockable pair).  A signal already pending
    /// coalesces, as POSIX specifies for standard (non-realtime) signals.
    pub fn admit(&mut self, signal: Signal) -> bool {
        if signal.catchable() && self.blocked.contains(signal) {
            self.pending.insert(signal);
            return false;
        }
        true
    }

    /// Drops any pending stop signals (delivery of SIGCONT discards pending
    /// stops, and vice versa, as on Linux).
    pub fn discard_pending_stops(&mut self) {
        for signal in [Signal::SIGSTOP, Signal::SIGTSTP, Signal::SIGTTIN, Signal::SIGTTOU] {
            self.pending.remove(signal);
        }
    }

    /// Drops a pending SIGCONT (delivery of a stop signal discards it).
    pub fn discard_pending_continue(&mut self) {
        self.pending.remove(Signal::SIGCONT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for &sig in ALL_SIGNALS {
            assert_eq!(Signal::from_number(sig.number()), Some(sig));
        }
        assert_eq!(Signal::from_number(0), None);
        assert_eq!(Signal::from_number(64), None);
    }

    #[test]
    fn names_parse_flexibly() {
        assert_eq!(Signal::from_name("SIGKILL"), Some(Signal::SIGKILL));
        assert_eq!(Signal::from_name("kill"), Some(Signal::SIGKILL));
        assert_eq!(Signal::from_name("TERM"), Some(Signal::SIGTERM));
        assert_eq!(Signal::from_name("sigchld"), Some(Signal::SIGCHLD));
        assert_eq!(Signal::from_name("tstp"), Some(Signal::SIGTSTP));
        assert_eq!(Signal::from_name("NOTASIG"), None);
    }

    #[test]
    fn default_dispositions() {
        assert_eq!(Signal::SIGTERM.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGKILL.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGPIPE.default_disposition(), SignalDisposition::Terminate);
        assert_eq!(Signal::SIGCHLD.default_disposition(), SignalDisposition::Ignore);
        assert_eq!(Signal::SIGCONT.default_disposition(), SignalDisposition::Continue);
        assert_eq!(Signal::SIGSTOP.default_disposition(), SignalDisposition::Stop);
        assert_eq!(Signal::SIGTSTP.default_disposition(), SignalDisposition::Stop);
        assert_eq!(Signal::SIGTTIN.default_disposition(), SignalDisposition::Stop);
    }

    #[test]
    fn kill_and_stop_cannot_be_caught() {
        assert!(!Signal::SIGKILL.catchable());
        assert!(!Signal::SIGSTOP.catchable());
        assert!(Signal::SIGTERM.catchable());
        assert!(Signal::SIGTSTP.catchable());
        assert!(Signal::SIGUSR1.catchable());
    }

    #[test]
    fn linux_numbers_match() {
        assert_eq!(Signal::SIGKILL.number(), 9);
        assert_eq!(Signal::SIGTERM.number(), 15);
        assert_eq!(Signal::SIGCHLD.number(), 17);
        assert_eq!(Signal::SIGPIPE.number(), 13);
        assert_eq!(Signal::SIGTSTP.number(), 20);
        assert_eq!(Signal::SIGTTIN.number(), 21);
        assert_eq!(Signal::SIGTTOU.number(), 22);
    }

    #[test]
    fn display_and_termination_status() {
        assert_eq!(Signal::SIGKILL.to_string(), "SIGKILL");
        assert_eq!(Signal::SIGKILL.termination_status(), 9);
    }

    #[test]
    fn sigset_operations() {
        let mut set = SigSet::empty();
        assert!(set.is_empty());
        set.insert(Signal::SIGTERM);
        set.insert(Signal::SIGUSR1);
        assert!(set.contains(Signal::SIGTERM));
        assert!(!set.contains(Signal::SIGINT));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![Signal::SIGUSR1, Signal::SIGTERM]);
        set.remove(Signal::SIGTERM);
        assert!(!set.contains(Signal::SIGTERM));
        assert_eq!(SigSet::from_bits(set.bits()), set);

        let a = SigSet::from_bits(0b0110);
        let b = SigSet::from_bits(0b0011);
        assert_eq!(a.union(b).bits(), 0b0111);
        assert_eq!(a.difference(b).bits(), 0b0100);
    }

    #[test]
    fn blocked_signal_is_pending_until_unblocked_then_delivered_once() {
        let mut state = SignalState::new();
        let mut mask = SigSet::empty();
        mask.insert(Signal::SIGUSR1);
        let (old, deliverable) = state.change_mask(SIG_BLOCK, mask).unwrap();
        assert!(old.is_empty());
        assert!(deliverable.is_empty());

        // Three sends coalesce into one pending bit.
        for _ in 0..3 {
            assert!(!state.admit(Signal::SIGUSR1));
        }
        assert!(state.pending().contains(Signal::SIGUSR1));

        let (_, deliverable) = state.change_mask(SIG_UNBLOCK, mask).unwrap();
        assert_eq!(deliverable, vec![Signal::SIGUSR1]);
        // Exactly once: the pending bit is consumed.
        assert!(state.pending().is_empty());
        let (_, deliverable) = state.change_mask(SIG_UNBLOCK, mask).unwrap();
        assert!(deliverable.is_empty());
    }

    #[test]
    fn kill_and_stop_cannot_be_blocked() {
        let mut state = SignalState::new();
        let mut mask = SigSet::empty();
        mask.insert(Signal::SIGKILL);
        mask.insert(Signal::SIGSTOP);
        mask.insert(Signal::SIGTERM);
        state.change_mask(SIG_SETMASK, mask).unwrap();
        assert!(!state.blocked().contains(Signal::SIGKILL));
        assert!(!state.blocked().contains(Signal::SIGSTOP));
        assert!(state.blocked().contains(Signal::SIGTERM));
        assert!(state.admit(Signal::SIGKILL), "SIGKILL is never parked");
        assert!(!state.admit(Signal::SIGTERM));
    }

    #[test]
    fn actions_install_and_reset() {
        let mut state = SignalState::new();
        assert_eq!(state.action(Signal::SIGINT), SigAction::Default);
        state.set_action(Signal::SIGINT, SigAction::Handler { restart: true });
        assert_eq!(state.action(Signal::SIGINT), SigAction::Handler { restart: true });
        assert!(state.handles(Signal::SIGINT));
        state.set_action(Signal::SIGINT, SigAction::Ignore);
        assert_eq!(state.action(Signal::SIGINT), SigAction::Ignore);
        state.set_action(Signal::SIGINT, SigAction::Default);
        assert_eq!(state.action(Signal::SIGINT), SigAction::Default);
        // Uncatchable signals silently keep their defaults.
        state.set_action(Signal::SIGKILL, SigAction::Ignore);
        assert_eq!(state.action(Signal::SIGKILL), SigAction::Default);
    }

    #[test]
    fn stops_and_continue_discard_each_other() {
        let mut state = SignalState::new();
        let mut mask = SigSet::empty();
        mask.insert(Signal::SIGTSTP);
        mask.insert(Signal::SIGCONT);
        state.change_mask(SIG_BLOCK, mask).unwrap();
        assert!(!state.admit(Signal::SIGTSTP));
        state.discard_pending_stops();
        assert!(state.pending().is_empty());
        assert!(!state.admit(Signal::SIGCONT));
        state.discard_pending_continue();
        assert!(state.pending().is_empty());
    }

    #[test]
    fn bad_sigprocmask_how_is_rejected() {
        let mut state = SignalState::new();
        assert!(state.change_mask(99, SigSet::empty()).is_none());
    }
}
