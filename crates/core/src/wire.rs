//! Primitives for the system-call wire codec.
//!
//! Every frame that crosses the process↔kernel boundary — submission batches
//! and completion batches, over either transport convention — is built from
//! the little-endian primitives here: fixed-width integers, booleans, and
//! `u32`-length-prefixed byte strings.  Keeping the primitives in one place is
//! what lets [`syscall`](crate::syscall) have exactly one codec for both the
//! asynchronous (structured-clone message) and synchronous (shared-heap)
//! conventions.
//!
//! # Example
//!
//! Encoding writes into a growing `Vec<u8>`; decoding walks a [`Reader`]
//! that yields `None` past the end instead of panicking:
//!
//! ```
//! use browsix_core::wire::{self, Reader};
//!
//! let mut frame = Vec::new();
//! wire::put_u32(&mut frame, 7);
//! wire::put_str(&mut frame, "/etc/motd");
//!
//! let mut r = Reader::new(&frame);
//! assert_eq!(r.u32(), Some(7));
//! assert_eq!(r.str(), Some("/etc/motd"));
//! assert!(r.is_empty());
//! assert_eq!(r.u32(), None, "reads past the end fail cleanly");
//! ```

/// A cursor over an encoded frame.  Every accessor returns `None` on
/// truncated or malformed input instead of panicking, so decoding a hostile
/// or corrupt frame degrades to "not a system call".
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Whether the whole frame has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a boolean encoded as one byte.
    pub fn bool(&mut self) -> Option<bool> {
        self.u8().map(|b| b != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Option<i32> {
        self.u32().map(|v| v as i32)
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a boolean as one byte.
pub fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(value as u8);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `i32`.
pub fn put_i32(out: &mut Vec<u8>, value: i32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, value: &[u8]) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value);
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, value: &str) {
    put_bytes(out, value.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_bool(&mut out, true);
        put_u16(&mut out, 65535);
        put_u32(&mut out, 123_456);
        put_i32(&mut out, -5);
        put_u64(&mut out, u64::MAX);
        put_i64(&mut out, -9_000_000_000);
        put_bytes(&mut out, b"abc");
        put_str(&mut out, "/usr/bin");

        let mut r = Reader::new(&out);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.u16(), Some(65535));
        assert_eq!(r.u32(), Some(123_456));
        assert_eq!(r.i32(), Some(-5));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.i64(), Some(-9_000_000_000));
        assert_eq!(r.bytes(), Some(&b"abc"[..]));
        assert_eq!(r.str(), Some("/usr/bin"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_yields_none() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), None);
        let mut r = Reader::new(&[255, 255, 255, 255]);
        assert_eq!(r.bytes(), None, "length prefix larger than the frame");
        let mut r = Reader::new(&[]);
        assert_eq!(r.u8(), None);
        assert!(r.is_empty());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xff, 0xfe]);
        assert_eq!(Reader::new(&out).str(), None);
    }
}
