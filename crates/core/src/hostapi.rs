//! The host API: what the embedding web application sees.
//!
//! Figure 4 of the paper shows the JavaScript interface — `kernel.system()`
//! starts a program, callbacks receive its standard output and standard error,
//! and a final callback receives the exit code.  This module provides the
//! same surface for Rust embedders: [`Kernel::boot`], [`Kernel::system`],
//! [`Kernel::spawn`], the `XMLHttpRequest`-like [`Kernel::http_request`], and
//! socket notifications via [`Kernel::wait_for_port`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use browsix_browser::PlatformConfig;
use browsix_fs::{Errno, MemFs, MountedFs};
use browsix_http::{HttpRequest, HttpResponse};

use crate::events::{HostRequest, KernelEvent, OutputSink};
use crate::exec::ExecutableRegistry;
use crate::kernel::shard::{resolve_shards, shard_of, RouterState};
use crate::kernel::{KernelConfig, KernelState};
use crate::signals::Signal;
use crate::stats::KernelStats;
use crate::syscall::{wait_status_exit_code, wait_status_signal};
use crate::task::Pid;

/// Configuration for [`Kernel::boot`].
#[derive(Clone)]
pub struct BootConfig {
    /// The simulated browser platform (cost model, shared-memory support).
    pub platform: PlatformConfig,
    /// The shared file system the kernel will serve.
    pub fs: Arc<MountedFs>,
    /// Registered executables and interpreters.
    pub registry: ExecutableRegistry,
    /// Environment variables handed to processes started through the host API.
    pub env: Vec<(String, String)>,
    /// Number of kernel shards (event-loop threads).  `0` reads the
    /// `BROWSIX_SHARDS` environment variable, defaulting to one shard — the
    /// classic single-event-loop Browsix kernel.
    pub shards: usize,
}

impl std::fmt::Debug for BootConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootConfig")
            .field("browser", &self.platform.browser)
            .field("registry", &self.registry)
            .field("shards", &self.shards)
            .finish()
    }
}

impl BootConfig {
    /// A minimal configuration: an empty in-memory root file system, no
    /// registered executables and no injected platform delays.  Useful for
    /// tests and as a starting point for builders.
    pub fn in_memory() -> BootConfig {
        BootConfig {
            platform: PlatformConfig::fast(),
            fs: Arc::new(MountedFs::new(Arc::new(MemFs::new()))),
            registry: ExecutableRegistry::new(),
            env: vec![
                ("PATH".to_owned(), "/usr/bin:/bin".to_owned()),
                ("HOME".to_owned(), "/home".to_owned()),
            ],
            shards: 0,
        }
    }

    /// Replaces the platform configuration.
    pub fn with_platform(mut self, platform: PlatformConfig) -> BootConfig {
        self.platform = platform;
        self
    }

    /// Replaces the file system.
    pub fn with_fs(mut self, fs: Arc<MountedFs>) -> BootConfig {
        self.fs = fs;
        self
    }

    /// Replaces the executable registry.
    pub fn with_registry(mut self, registry: ExecutableRegistry) -> BootConfig {
        self.registry = registry;
        self
    }

    /// Adds (or overrides) a default environment variable.
    pub fn with_env(mut self, key: &str, value: &str) -> BootConfig {
        self.env.retain(|(k, _)| k != key);
        self.env.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Sets the number of kernel shards (0 = `BROWSIX_SHARDS` env, default 1).
    pub fn with_shards(mut self, shards: usize) -> BootConfig {
        self.shards = shards;
        self
    }
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig::in_memory()
    }
}

/// The decoded exit status of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitStatus {
    /// The raw wait-status word.
    pub raw: i32,
    /// Exit code, if the process exited normally.
    pub code: Option<i32>,
    /// Terminating signal, if the process was killed.
    pub signal: Option<Signal>,
}

impl ExitStatus {
    /// Builds a decoded status from the raw wait-status word.
    pub fn from_raw(raw: i32) -> ExitStatus {
        ExitStatus {
            raw,
            code: wait_status_exit_code(raw),
            signal: wait_status_signal(raw),
        }
    }

    /// Whether the process exited normally with code 0.
    pub fn success(&self) -> bool {
        self.code == Some(0)
    }
}

/// A handle to a process started through [`Kernel::system`] or
/// [`Kernel::spawn`], with captured output.
#[derive(Debug)]
pub struct ProcessHandle {
    /// The process id.
    pub pid: Pid,
    stdout: Arc<Mutex<Vec<u8>>>,
    stderr: Arc<Mutex<Vec<u8>>>,
    exit: Receiver<i32>,
}

impl ProcessHandle {
    /// Bytes written to standard output so far.
    pub fn stdout(&self) -> Vec<u8> {
        self.stdout.lock().clone()
    }

    /// Bytes written to standard error so far.
    pub fn stderr(&self) -> Vec<u8> {
        self.stderr.lock().clone()
    }

    /// Standard output interpreted as UTF-8 (lossily).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout()).into_owned()
    }

    /// Standard error interpreted as UTF-8 (lossily).
    pub fn stderr_string(&self) -> String {
        String::from_utf8_lossy(&self.stderr()).into_owned()
    }

    /// Blocks until the process exits.
    pub fn wait(&self) -> ExitStatus {
        match self.exit.recv() {
            Ok(status) => ExitStatus::from_raw(status),
            Err(_) => ExitStatus::from_raw(127 << 8),
        }
    }

    /// Blocks for at most `timeout`; returns `None` if the process is still
    /// running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ExitStatus> {
        self.exit.recv_timeout(timeout).ok().map(ExitStatus::from_raw)
    }
}

/// The Browsix kernel, as seen by the embedding application.
///
/// Booting starts one event-loop thread per shard; dropping the handle (or
/// calling [`Kernel::shutdown`]) terminates every process and stops the
/// loops.  Tasks are owned by the shard `pid % shards` (see
/// [`crate::kernel::shard`]); host requests are routed to the shard that
/// owns the resource they name, so the host never takes a cross-shard lock.
pub struct Kernel {
    shards: Vec<Sender<KernelEvent>>,
    router: Arc<RouterState>,
    fs: Arc<MountedFs>,
    registry: ExecutableRegistry,
    platform: PlatformConfig,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("browser", &self.platform.browser)
            .field("registry", &self.registry)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Kernel {
    /// Boots a kernel: starts one event-loop thread per shard, ready to run
    /// processes.  This is the analogue of calling `Boot(...)` from the
    /// page's script tag.
    pub fn boot(config: BootConfig) -> Kernel {
        let nshards = resolve_shards(config.shards);
        let router = Arc::new(RouterState::new(nshards));
        let mut senders: Vec<Sender<KernelEvent>> = Vec::with_capacity(nshards);
        let mut receivers = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut threads = Vec::with_capacity(nshards);
        for (shard_id, events_rx) in receivers.into_iter().enumerate() {
            let state = KernelState::new(
                KernelConfig {
                    platform: config.platform.clone(),
                    fs: Arc::clone(&config.fs),
                    registry: config.registry.clone(),
                    default_env: config.env.clone(),
                },
                shard_id,
                Arc::clone(&router),
                senders.clone(),
            );
            let thread = std::thread::Builder::new()
                .name(format!("browsix-kernel-{shard_id}"))
                .spawn(move || state.run(events_rx))
                .expect("failed to start kernel shard thread");
            threads.push(thread);
        }
        Kernel {
            shards: senders,
            router,
            fs: config.fs,
            registry: config.registry,
            platform: config.platform,
            threads,
        }
    }

    /// The number of shards this kernel runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The event queue of the shard that owns `pid`.
    fn shard_for_pid(&self, pid: Pid) -> &Sender<KernelEvent> {
        &self.shards[shard_of(pid, self.shards.len())]
    }

    /// The shared file system, directly accessible to the embedding
    /// application (the paper's host file-access API).
    pub fn fs(&self) -> Arc<MountedFs> {
        Arc::clone(&self.fs)
    }

    /// The executable registry (runtimes use this to register programs before
    /// spawning them).
    pub fn registry(&self) -> &ExecutableRegistry {
        &self.registry
    }

    /// The platform configuration the kernel was booted with.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// The raw event channel of shard 0.  Worker syscall clients are wired to
    /// their owning shard's queue by the kernel at launch (via
    /// `LaunchContext`); this accessor exists for embedders that inject
    /// events by hand and is correct only for shard-0-owned state.
    pub fn event_sender(&self) -> Sender<KernelEvent> {
        self.shards[0].clone()
    }

    /// Starts a program with explicit output callbacks, returning its pid.
    ///
    /// # Errors
    ///
    /// Returns the executable-resolution error ([`Errno::ENOENT`],
    /// [`Errno::EACCES`], ...) if the program cannot be started.
    pub fn spawn_with_sinks(
        &self,
        path: &str,
        args: &[&str],
        env: &[(&str, &str)],
        stdout: OutputSink,
        stderr: OutputSink,
    ) -> Result<Pid, Errno> {
        let (reply_tx, reply_rx) = bounded(1);
        let request = HostRequest::Spawn {
            path: path.to_owned(),
            args: args.iter().map(|s| s.to_string()).collect(),
            env: env.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            cwd: "/".to_owned(),
            stdout,
            stderr,
            reply: reply_tx,
        };
        // Spawns enter at shard 0; the kernel's round-robin placement may
        // install the task on any shard (the reply carries the pid either way).
        self.shards[0]
            .send(KernelEvent::Host(request))
            .map_err(|_| Errno::EIO)?;
        reply_rx.recv().map_err(|_| Errno::EIO)?
    }

    /// Starts a program, capturing its output into the returned handle.
    ///
    /// # Errors
    ///
    /// Returns the executable-resolution error if the program cannot start.
    pub fn spawn(&self, path: &str, args: &[&str], env: &[(&str, &str)]) -> Result<ProcessHandle, Errno> {
        let stdout = Arc::new(Mutex::new(Vec::new()));
        let stderr = Arc::new(Mutex::new(Vec::new()));
        let stdout_sink: OutputSink = {
            let stdout = Arc::clone(&stdout);
            Arc::new(move |data: &[u8]| stdout.lock().extend_from_slice(data))
        };
        let stderr_sink: OutputSink = {
            let stderr = Arc::clone(&stderr);
            Arc::new(move |data: &[u8]| stderr.lock().extend_from_slice(data))
        };
        let pid = self.spawn_with_sinks(path, args, env, stdout_sink, stderr_sink)?;
        let exit = self.watch_exit(pid);
        Ok(ProcessHandle {
            pid,
            stdout,
            stderr,
            exit,
        })
    }

    /// The paper's `kernel.system(cmd, onExit, onStdout, onStderr)`: splits a
    /// command line on whitespace, resolves the program on `PATH`, runs it and
    /// captures its output.  Use the shell for anything needing quoting or
    /// pipelines.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] for an empty command, [`Errno::ENOENT`] if the
    /// program is not found on `PATH`.
    pub fn system(&self, command: &str) -> Result<ProcessHandle, Errno> {
        let words: Vec<&str> = command.split_whitespace().collect();
        let Some((program, _rest)) = words.split_first() else {
            return Err(Errno::EINVAL);
        };
        let path = crate::exec::search_path(self.fs.as_ref(), &self.registry, program, "/usr/bin:/bin")
            .ok_or(Errno::ENOENT)?;
        self.spawn(&path, &words, &[])
    }

    /// Registers interest in a process's exit; the returned channel receives
    /// the raw wait status exactly once.
    pub fn watch_exit(&self, pid: Pid) -> Receiver<i32> {
        let (tx, rx) = bounded(1);
        // Exit records live on the shard that owned the task.
        let _ = self
            .shard_for_pid(pid)
            .send(KernelEvent::Host(HostRequest::WatchExit { pid, reply: tx }));
        rx
    }

    /// Blocks until `pid` exits (or `timeout` elapses).
    pub fn wait(&self, pid: Pid, timeout: Duration) -> Option<ExitStatus> {
        self.watch_exit(pid)
            .recv_timeout(timeout)
            .ok()
            .map(ExitStatus::from_raw)
    }

    /// Sends a signal to a process, like the `kill` shell builtin.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if the process does not exist.
    pub fn kill(&self, pid: Pid, signal: Signal) -> Result<(), Errno> {
        let (tx, rx) = bounded(1);
        self.shard_for_pid(pid)
            .send(KernelEvent::Host(HostRequest::Kill { pid, signal, reply: tx }))
            .map_err(|_| Errno::EIO)?;
        rx.recv().map_err(|_| Errno::EIO)?
    }

    /// Sends a signal to the foreground process group of the controlling
    /// terminal — the kernel half of a terminal key binding.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if no foreground group is set (no shell has called
    /// `tcsetpgrp`) or it has no live members.
    pub fn signal_foreground(&self, signal: Signal) -> Result<(), Errno> {
        let (tx, rx) = bounded(1);
        // Any shard can resolve the foreground group (membership lives on
        // the router); shard 0 keeps host-initiated signals ordered.
        self.shards[0]
            .send(KernelEvent::Host(HostRequest::SignalForeground { signal, reply: tx }))
            .map_err(|_| Errno::EIO)?;
        rx.recv().map_err(|_| Errno::EIO)?
    }

    /// `Ctrl-C`: SIGINT to the foreground process group.
    ///
    /// # Errors
    ///
    /// See [`Kernel::signal_foreground`].
    pub fn interrupt(&self) -> Result<(), Errno> {
        self.signal_foreground(Signal::SIGINT)
    }

    /// Issues an HTTP request to an in-Browsix server listening on `port`
    /// (the `XMLHttpRequest`-like API of §4.1).
    ///
    /// # Errors
    ///
    /// [`Errno::ECONNREFUSED`] if nothing is listening on the port, or the
    /// transport error encountered mid-exchange.
    pub fn http_request(&self, port: u16, request: HttpRequest, timeout: Duration) -> Result<HttpResponse, Errno> {
        let (tx, rx) = bounded(1);
        // Route to the shard that owns the listening socket, so the whole
        // exchange is shard-local; an unclaimed port goes to shard 0, which
        // refuses it.
        let shard = self.router.port_owner(port).unwrap_or(0);
        self.shards[shard]
            .send(KernelEvent::Host(HostRequest::HttpRequest {
                port,
                request,
                reply: tx,
            }))
            .map_err(|_| Errno::EIO)?;
        rx.recv_timeout(timeout).map_err(|_| Errno::ETIMEDOUT)?
    }

    /// Subscribes to socket notifications: the returned channel receives a
    /// port number every time a process starts listening.
    pub fn port_notifications(&self) -> Receiver<u16> {
        let (tx, rx) = unbounded();
        // Subscriptions register on the router, so any shard's `listen`
        // notifies them; shard 0 performs the registration.
        let _ = self.shards[0].send(KernelEvent::Host(HostRequest::SubscribePortListen { listener: tx }));
        rx
    }

    /// Blocks until some process is listening on `port` (or `timeout`
    /// elapses).  This is how the meme-generator client knows its in-Browsix
    /// server is ready without polling.
    pub fn wait_for_port(&self, port: u16, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let notifications = self.port_notifications();
        loop {
            if self.listening_ports().contains(&port) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            match notifications.recv_timeout((deadline - now).min(Duration::from_millis(20))) {
                Ok(p) if p == port => return true,
                _ => {}
            }
        }
    }

    /// Ports that currently have listening sockets.
    pub fn listening_ports(&self) -> Vec<u16> {
        let (tx, rx) = bounded(1);
        if self.shards[0]
            .send(KernelEvent::Host(HostRequest::ListeningPorts { reply: tx }))
            .is_err()
        {
            return Vec::new();
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default()
    }

    /// A fleet-wide snapshot of kernel statistics: every shard's counters
    /// summed, plus the (shared) file-system cache counters absorbed once.
    pub fn stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for shard in self.stats_per_shard() {
            total.merge(&shard);
        }
        total.absorb_fs(browsix_fs::FileSystem::io_stats(self.fs.as_ref()));
        total
    }

    /// One raw statistics snapshot per shard, in shard order.  Per-shard
    /// counters show how work spread across the fleet; the file-system
    /// counters are global and deliberately left out (see [`Kernel::stats`]).
    pub fn stats_per_shard(&self) -> Vec<KernelStats> {
        let mut snapshots = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = bounded(1);
            if shard
                .send(KernelEvent::Host(HostRequest::ReadStats { reply: tx }))
                .is_err()
            {
                snapshots.push(KernelStats::default());
                continue;
            }
            snapshots.push(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default());
        }
        snapshots
    }

    /// Lists live tasks as `(pid, ppid, name, state)`, for terminal-style
    /// inspection of kernel state.  Tasks from every shard, sorted by pid.
    pub fn tasks(&self) -> Vec<(Pid, Pid, String, String)> {
        let mut all: Vec<(Pid, Pid, String, String)> = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = bounded(1);
            if shard
                .send(KernelEvent::Host(HostRequest::ListTasks { reply: tx }))
                .is_err()
            {
                continue;
            }
            all.extend(rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default());
        }
        all.sort_by_key(|(pid, ..)| *pid);
        all
    }

    /// Stops the kernel: terminates every process and joins every shard's
    /// event-loop thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for shard in &self.shards {
            let _ = shard.send(KernelEvent::Shutdown);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::FileSystem;

    #[test]
    fn boot_and_shutdown_cleanly() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        assert!(kernel.listening_ports().is_empty());
        assert_eq!(kernel.stats().total_syscalls, 0);
        kernel.shutdown();
    }

    #[test]
    fn boot_multi_shard_and_shutdown() {
        let kernel = Kernel::boot(BootConfig::in_memory().with_shards(3));
        assert_eq!(kernel.shard_count(), 3);
        assert_eq!(kernel.stats().total_syscalls, 0);
        assert_eq!(kernel.stats_per_shard().len(), 3);
        assert_eq!(kernel.kill(42, Signal::SIGTERM), Err(Errno::ESRCH));
        kernel.shutdown();
    }

    #[test]
    fn fs_is_shared_with_host() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        kernel.fs().write_file("/hello.txt", b"hi").unwrap();
        assert_eq!(kernel.fs().read_file("/hello.txt").unwrap(), b"hi");
        kernel.shutdown();
    }

    #[test]
    fn spawning_missing_program_fails_with_enoent() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        let err = kernel
            .spawn("/usr/bin/doesnotexist", &["doesnotexist"], &[])
            .unwrap_err();
        assert_eq!(err, Errno::ENOENT);
        assert!(kernel.system("").is_err());
        assert_eq!(kernel.system("nosuchcommand").unwrap_err(), Errno::ENOENT);
        kernel.shutdown();
    }

    #[test]
    fn http_request_to_unused_port_is_refused() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        let err = kernel
            .http_request(
                8080,
                HttpRequest::new(browsix_http::Method::Get, "/"),
                Duration::from_millis(200),
            )
            .unwrap_err();
        assert_eq!(err, Errno::ECONNREFUSED);
        kernel.shutdown();
    }

    #[test]
    fn kill_unknown_process_is_esrch() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        assert_eq!(kernel.kill(42, Signal::SIGTERM), Err(Errno::ESRCH));
        kernel.shutdown();
    }

    #[test]
    fn exit_status_decoding() {
        let ok = ExitStatus::from_raw(0);
        assert!(ok.success());
        let failed = ExitStatus::from_raw(3 << 8);
        assert_eq!(failed.code, Some(3));
        assert!(!failed.success());
        let killed = ExitStatus::from_raw(Signal::SIGKILL.number());
        assert_eq!(killed.signal, Some(Signal::SIGKILL));
        assert_eq!(killed.code, None);
    }

    #[test]
    fn boot_config_builder() {
        let config = BootConfig::in_memory()
            .with_platform(PlatformConfig::firefox().without_delays())
            .with_env("PATH", "/custom/bin")
            .with_env("LANG", "C");
        assert_eq!(config.platform.browser, browsix_browser::BrowserKind::Firefox);
        assert!(config.env.iter().any(|(k, v)| k == "PATH" && v == "/custom/bin"));
        assert!(config.env.iter().any(|(k, v)| k == "LANG" && v == "C"));
        let formatted = format!("{config:?}");
        assert!(formatted.contains("Firefox"));
    }

    #[test]
    fn wait_for_port_times_out_when_nothing_listens() {
        let kernel = Kernel::boot(BootConfig::in_memory());
        assert!(!kernel.wait_for_port(9999, Duration::from_millis(50)));
        kernel.shutdown();
    }
}
