//! File descriptors and per-task descriptor tables.
//!
//! Each Browsix task owns a map of open file descriptors.  Child processes
//! inherit their parent's descriptor table, and the kernel manages each
//! underlying object (file, directory, pipe or socket) with reference
//! counting — here expressed as shared [`OpenFile`] descriptions behind
//! `Arc`s, exactly like Unix "open file descriptions" shared by `dup` and
//! inheritance.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use browsix_fs::{Errno, FileHandle, OpenFlags};

use crate::socket::ConnectionId;
use crate::streams::StreamId;

/// A file-descriptor number.
pub type Fd = i32;

/// Which side of a socket connection a descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketSide {
    /// The side that called `connect`.
    Client,
    /// The side returned by `accept`.
    Server,
}

/// What an open descriptor refers to.
#[derive(Clone)]
pub enum FileKind {
    /// A regular file in the shared file system.  The path was resolved once
    /// at `open`; all I/O goes through the handle, never a path string.
    File {
        /// Handle bound to the resolved node.
        handle: Arc<dyn FileHandle>,
        /// Flags it was opened with.
        flags: OpenFlags,
    },
    /// An open directory (usable with `fstat`/`getdents`).
    Directory {
        /// Absolute path of the directory.
        path: String,
    },
    /// The read end of a pipe.
    PipeReader {
        /// Kernel stream carrying the pipe's bytes.
        stream: StreamId,
    },
    /// The write end of a pipe.
    PipeWriter {
        /// Kernel stream carrying the pipe's bytes.
        stream: StreamId,
    },
    /// An unbound/unconnected TCP socket.
    Socket {
        /// Port it has been bound to, if any.
        bound_port: Option<u16>,
    },
    /// A listening TCP socket.
    SocketListener {
        /// The port being listened on.
        port: u16,
    },
    /// One endpoint of an established connection.
    SocketStream {
        /// Kernel connection id.
        connection: ConnectionId,
        /// Which side of the connection this is.
        side: SocketSide,
    },
    /// A sink owned by the embedding web application (the stdout/stderr
    /// callbacks passed to `kernel.system(...)`).
    HostSink {
        /// Host stream id.
        stream: u64,
    },
    /// The controlling terminal's input.  Reads return EOF (the terminal UI
    /// feeds input by other means) — unless the reader is in a background
    /// process group, in which case the kernel raises `SIGTTIN`, as Unix job
    /// control does.  Writes are discarded.
    Tty,
    /// `/dev/null`-style descriptor: reads return EOF, writes are discarded.
    Null,
}

impl fmt::Debug for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileKind::File { handle, flags } => f
                .debug_struct("File")
                .field("backend", &handle.backend_name())
                .field("flags", flags)
                .finish(),
            FileKind::Directory { path } => f.debug_struct("Directory").field("path", path).finish(),
            FileKind::PipeReader { stream } => f.debug_struct("PipeReader").field("stream", stream).finish(),
            FileKind::PipeWriter { stream } => f.debug_struct("PipeWriter").field("stream", stream).finish(),
            FileKind::Socket { bound_port } => f.debug_struct("Socket").field("bound_port", bound_port).finish(),
            FileKind::SocketListener { port } => f.debug_struct("SocketListener").field("port", port).finish(),
            FileKind::SocketStream { connection, side } => f
                .debug_struct("SocketStream")
                .field("connection", connection)
                .field("side", side)
                .finish(),
            FileKind::HostSink { stream } => f.debug_struct("HostSink").field("stream", stream).finish(),
            FileKind::Tty => f.write_str("Tty"),
            FileKind::Null => f.write_str("Null"),
        }
    }
}

/// A shared "open file description": the object a descriptor number points
/// at.  `dup`, `dup2` and child inheritance all share the same description,
/// which is how they share a file offset — and the `O_NONBLOCK` status flag,
/// which on Unix likewise lives on the description, not the descriptor.
#[derive(Debug)]
pub struct OpenFile {
    kind: Mutex<FileKind>,
    offset: Mutex<u64>,
    nonblocking: AtomicBool,
}

impl OpenFile {
    /// Creates a description with offset zero, in blocking mode.
    pub fn new(kind: FileKind) -> Arc<OpenFile> {
        Arc::new(OpenFile {
            kind: Mutex::new(kind),
            offset: Mutex::new(0),
            nonblocking: AtomicBool::new(false),
        })
    }

    /// Whether `O_NONBLOCK` is set: reads, writes and accepts that would
    /// otherwise park on a wait queue return `EAGAIN` instead.
    pub fn nonblocking(&self) -> bool {
        self.nonblocking.load(Ordering::Relaxed)
    }

    /// Sets or clears `O_NONBLOCK` (the `SetFlags` system call).
    pub fn set_nonblocking(&self, nonblocking: bool) {
        self.nonblocking.store(nonblocking, Ordering::Relaxed);
    }

    /// What this description refers to.
    pub fn kind(&self) -> FileKind {
        self.kind.lock().clone()
    }

    /// Replaces what this description refers to (sockets transition from
    /// unbound to bound to listening to connected in place, so `dup`ed copies
    /// observe the change).
    pub fn set_kind(&self, kind: FileKind) {
        *self.kind.lock() = kind;
    }

    /// Current file offset (meaningful for regular files only).
    pub fn offset(&self) -> u64 {
        *self.offset.lock()
    }

    /// Sets the file offset.
    pub fn set_offset(&self, offset: u64) {
        *self.offset.lock() = offset;
    }

    /// Advances the file offset by `delta` and returns the new value.
    pub fn advance_offset(&self, delta: u64) -> u64 {
        let mut offset = self.offset.lock();
        *offset += delta;
        *offset
    }
}

/// A per-task table of descriptor numbers.
#[derive(Debug, Default)]
pub struct FdTable {
    entries: BTreeMap<Fd, Arc<OpenFile>>,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Installs `file` at the lowest free descriptor number at or above
    /// `min`, returning the number (the POSIX allocation rule).
    pub fn insert(&mut self, file: Arc<OpenFile>, min: Fd) -> Fd {
        let mut fd = min.max(0);
        while self.entries.contains_key(&fd) {
            fd += 1;
        }
        self.entries.insert(fd, file);
        fd
    }

    /// Installs `file` at exactly `fd`, replacing any existing entry
    /// (`dup2` semantics).
    pub fn insert_at(&mut self, fd: Fd, file: Arc<OpenFile>) {
        self.entries.insert(fd, file);
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] if the descriptor is not open.
    pub fn get(&self, fd: Fd) -> Result<Arc<OpenFile>, Errno> {
        self.entries.get(&fd).cloned().ok_or(Errno::EBADF)
    }

    /// Removes a descriptor, returning its description.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] if the descriptor is not open.
    pub fn remove(&mut self, fd: Fd) -> Result<Arc<OpenFile>, Errno> {
        self.entries.remove(&fd).ok_or(Errno::EBADF)
    }

    /// Whether `fd` is open.
    pub fn contains(&self, fd: Fd) -> bool {
        self.entries.contains_key(&fd)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(fd, description)` pairs in ascending fd order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &Arc<OpenFile>)> {
        self.entries.iter().map(|(fd, file)| (*fd, file))
    }

    /// Clones the table, sharing every description — what `fork`/`spawn`
    /// inheritance does.
    pub fn inherit(&self) -> FdTable {
        FdTable {
            entries: self.entries.clone(),
        }
    }

    /// Removes every descriptor (process exit).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null_file() -> Arc<OpenFile> {
        OpenFile::new(FileKind::Null)
    }

    /// An open-file description over a real (memfs) handle.
    fn file_description(flags: OpenFlags) -> Arc<OpenFile> {
        use browsix_fs::{FileSystem, MemFs};
        let fs = MemFs::new();
        fs.write_file("/data", b"0123456789").unwrap();
        let handle = fs.open_handle("/data", flags).unwrap();
        OpenFile::new(FileKind::File { handle, flags })
    }

    #[test]
    fn insert_allocates_lowest_free_descriptor() {
        let mut table = FdTable::new();
        assert_eq!(table.insert(null_file(), 0), 0);
        assert_eq!(table.insert(null_file(), 0), 1);
        assert_eq!(table.insert(null_file(), 0), 2);
        table.remove(1).unwrap();
        assert_eq!(table.insert(null_file(), 0), 1);
        assert_eq!(table.insert(null_file(), 10), 10);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn get_and_remove_unknown_fd_is_ebadf() {
        let mut table = FdTable::new();
        assert_eq!(table.get(5).err(), Some(Errno::EBADF));
        assert_eq!(table.remove(5).err(), Some(Errno::EBADF));
    }

    #[test]
    fn dup_shares_the_offset() {
        let mut table = FdTable::new();
        let file = file_description(OpenFlags::read_only());
        let fd = table.insert(file.clone(), 0);
        let dup_fd = table.insert(table.get(fd).unwrap(), 0);
        table.get(fd).unwrap().set_offset(100);
        assert_eq!(table.get(dup_fd).unwrap().offset(), 100);
        table.get(dup_fd).unwrap().advance_offset(5);
        assert_eq!(table.get(fd).unwrap().offset(), 105);
    }

    #[test]
    fn insert_at_replaces_existing_entry() {
        let mut table = FdTable::new();
        let first = null_file();
        let second = OpenFile::new(FileKind::PipeReader { stream: 3 });
        table.insert_at(1, first);
        table.insert_at(1, second);
        assert!(matches!(
            table.get(1).unwrap().kind(),
            FileKind::PipeReader { stream: 3 }
        ));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn inherit_shares_descriptions() {
        let mut parent = FdTable::new();
        let file = file_description(OpenFlags::read_write());
        parent.insert_at(0, file.clone());
        let child = parent.inherit();
        child.get(0).unwrap().set_offset(42);
        assert_eq!(parent.get(0).unwrap().offset(), 42);
        assert!(Arc::ptr_eq(&parent.get(0).unwrap(), &child.get(0).unwrap()));
    }

    #[test]
    fn iter_is_in_fd_order_and_clear_empties() {
        let mut table = FdTable::new();
        table.insert_at(2, null_file());
        table.insert_at(0, null_file());
        table.insert_at(1, null_file());
        let fds: Vec<Fd> = table.iter().map(|(fd, _)| fd).collect();
        assert_eq!(fds, vec![0, 1, 2]);
        assert!(!table.is_empty());
        table.clear();
        assert!(table.is_empty());
    }
}
