//! Events processed by the kernel's main loop.
//!
//! Everything that happens to the kernel arrives as a [`KernelEvent`] on a
//! single queue, mirroring the way every interaction with the real Browsix
//! kernel arrives as a `postMessage` on the main browser thread: system calls
//! from processes, registrations of shared heaps, and calls made by the
//! embedding web application through the host API.

use std::sync::Arc;

use crossbeam::channel::Sender;

use browsix_browser::SharedArrayBuffer;
use browsix_fs::Errno;
use browsix_http::{HttpRequest, HttpResponse};

use crate::signals::Signal;
use crate::stats::KernelStats;
use crate::syscall::Transport;
use crate::task::Pid;

/// A callback the embedding application supplies for a process's standard
/// output or standard error (the `logStdout`/`logStderr` parameters of
/// `kernel.system` in Figure 4 of the paper).
pub type OutputSink = Arc<dyn Fn(&[u8]) + Send + Sync>;

/// A host-API request, carried to the kernel thread with a reply channel.
pub enum HostRequest {
    /// Start a process on behalf of the web application.
    Spawn {
        /// Path of the executable.
        path: String,
        /// Argument vector.
        args: Vec<String>,
        /// Environment variables (merged over the boot-time defaults).
        env: Vec<(String, String)>,
        /// Working directory.
        cwd: String,
        /// Callback receiving the process's standard output.
        stdout: OutputSink,
        /// Callback receiving the process's standard error.
        stderr: OutputSink,
        /// Receives the new pid, or the reason the spawn failed.
        reply: Sender<Result<Pid, Errno>>,
    },
    /// Deliver a signal to a process (the host-side `kill`).
    Kill {
        /// Target process.
        pid: Pid,
        /// Signal to deliver.
        signal: Signal,
        /// Receives whether the signal was delivered.
        reply: Sender<Result<(), Errno>>,
    },
    /// Deliver a signal to the foreground process group of the controlling
    /// terminal (what the terminal UI sends for `Ctrl-C`/`Ctrl-Z`).
    SignalForeground {
        /// Signal to deliver (typically SIGINT or SIGTSTP).
        signal: Signal,
        /// Receives whether a foreground group existed and was signalled.
        reply: Sender<Result<(), Errno>>,
    },
    /// Ask to be told when a process exits (used by the host-side `wait`).
    WatchExit {
        /// The process to watch.
        pid: Pid,
        /// Receives the wait status; fires immediately if the process has
        /// already exited.
        reply: Sender<i32>,
    },
    /// Issue an HTTP request to an in-Browsix server (the paper's
    /// `XMLHttpRequest`-like API).
    HttpRequest {
        /// The loopback port the server is listening on.
        port: u16,
        /// The request to send.
        request: HttpRequest,
        /// Receives the parsed response.
        reply: Sender<Result<HttpResponse, Errno>>,
    },
    /// Subscribe to socket notifications: the channel receives the port
    /// number every time a process starts listening.
    SubscribePortListen {
        /// Receives port numbers as listeners appear.
        listener: Sender<u16>,
    },
    /// Fetch the ports that currently have listening sockets.
    ListeningPorts {
        /// Receives the sorted port list.
        reply: Sender<Vec<u16>>,
    },
    /// Fetch a snapshot of kernel statistics.
    ReadStats {
        /// Receives the snapshot.
        reply: Sender<KernelStats>,
    },
    /// List the live tasks as `(pid, ppid, name, state)` tuples, for the
    /// terminal's `ps`-like inspection of kernel state.
    ListTasks {
        /// Receives the task list.
        reply: Sender<Vec<(Pid, Pid, String, String)>>,
    },
}

impl std::fmt::Debug for HostRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HostRequest::Spawn { path, .. } => return write!(f, "Spawn({path})"),
            HostRequest::Kill { pid, signal, .. } => return write!(f, "Kill({pid}, {signal})"),
            HostRequest::SignalForeground { signal, .. } => return write!(f, "SignalForeground({signal})"),
            HostRequest::WatchExit { pid, .. } => return write!(f, "WatchExit({pid})"),
            HostRequest::HttpRequest { port, .. } => return write!(f, "HttpRequest(:{port})"),
            HostRequest::SubscribePortListen { .. } => "SubscribePortListen",
            HostRequest::ListeningPorts { .. } => "ListeningPorts",
            HostRequest::ReadStats { .. } => "ReadStats",
            HostRequest::ListTasks { .. } => "ListTasks",
        };
        f.write_str(name)
    }
}

/// An event on the kernel's queue.
pub enum KernelEvent {
    /// A submission batch of system calls issued by a process.
    Syscall {
        /// The calling process.
        pid: Pid,
        /// How the batch travelled (and how to reply).
        transport: Transport,
    },
    /// A process registering its shared heap for synchronous system calls
    /// (sent once at runtime startup, as described in §3.2 of the paper).
    RegisterSyncHeap {
        /// The registering process.
        pid: Pid,
        /// The shared memory.
        sab: SharedArrayBuffer,
        /// Offset of the response area.
        resp_offset: usize,
        /// Offset of the wake address.
        wake_offset: usize,
    },
    /// A process ringing its submission-ring doorbell: its SQ went from
    /// empty to non-empty while the kernel had the `NEED_WAKEUP` flag set.
    /// Carries no payload — the entries themselves sit in shared memory
    /// (this models `Atomics.notify` on the kernel's wait address).
    Doorbell {
        /// The submitting process.
        pid: Pid,
    },
    /// A host-API request from the embedding application.
    Host(HostRequest),
    /// A message from a peer kernel shard (cross-shard pipe traffic, remote
    /// spawns, group signals...); see [`ShardMsg`](crate::kernel::shard::ShardMsg).
    Shard(crate::kernel::shard::ShardMsg),
    /// Stop the kernel: terminate all workers and end the event loop.
    Shutdown,
}

impl std::fmt::Debug for KernelEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelEvent::Syscall { pid, transport } => {
                let kind = match transport {
                    Transport::Async { .. } => "async",
                    Transport::Sync { .. } => "sync",
                };
                write!(f, "Syscall(pid={pid}, {kind})")
            }
            KernelEvent::RegisterSyncHeap { pid, .. } => write!(f, "RegisterSyncHeap(pid={pid})"),
            KernelEvent::Doorbell { pid } => write!(f, "Doorbell(pid={pid})"),
            KernelEvent::Host(req) => write!(f, "Host({req:?})"),
            KernelEvent::Shard(msg) => write!(f, "Shard({msg:?})"),
            KernelEvent::Shutdown => write!(f, "Shutdown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::{Syscall, SyscallBatch};
    use crossbeam::channel::unbounded;

    #[test]
    fn debug_formatting_is_informative() {
        let (tx, _rx) = unbounded();
        let event = KernelEvent::Host(HostRequest::WatchExit { pid: 4, reply: tx });
        assert_eq!(format!("{event:?}"), "Host(WatchExit(4))");

        let event = KernelEvent::Syscall {
            pid: 2,
            transport: Transport::Sync {
                payload: SyscallBatch::single(Syscall::GetPid).encode(),
            },
        };
        assert_eq!(format!("{event:?}"), "Syscall(pid=2, sync)");

        let event = KernelEvent::Syscall {
            pid: 3,
            transport: Transport::Async {
                seq: 1,
                payload: Vec::new(),
            },
        };
        assert!(format!("{event:?}").contains("async"));
        assert_eq!(format!("{:?}", KernelEvent::Shutdown), "Shutdown");
    }

    #[test]
    fn host_request_debug_variants() {
        let (tx, _rx) = unbounded::<Vec<u16>>();
        assert_eq!(
            format!("{:?}", HostRequest::ListeningPorts { reply: tx }),
            "ListeningPorts"
        );
        let (tx, _rx) = unbounded();
        assert_eq!(
            format!(
                "{:?}",
                HostRequest::Kill {
                    pid: 9,
                    signal: Signal::SIGKILL,
                    reply: tx
                }
            ),
            "Kill(9, SIGKILL)"
        );
    }
}
