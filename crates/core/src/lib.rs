//! # browsix-core — the Browsix kernel
//!
//! This crate is the paper's primary contribution: a kernel that lives in the
//! main browser context and provides Unix services — processes, a shared file
//! system, pipes, sockets and signals — to processes running in Web Workers,
//! reached exclusively through a system-call interface.
//!
//! Architecture (mirroring §3 of the paper):
//!
//! * The kernel owns all shared state and runs an event loop on its own
//!   thread (the analogue of the main browser thread).  Everything arrives as
//!   an event: system calls from processes, host API calls from the embedding
//!   web application.
//! * Each process is a worker created through `browsix-browser`.  Processes
//!   issue system calls over two conventions:
//!   [asynchronous](syscall::Transport::Async) (structured-clone messages,
//!   works everywhere) and [synchronous](syscall::Transport::Sync)
//!   (integer arguments plus a `SharedArrayBuffer` heap and `Atomics.wait`,
//!   Chrome-only at publication time but much faster).
//! * The file system is a [`browsix_fs::MountedFs`] shared by every process.
//! * Pipes, sockets and signals live in kernel tables and are reference
//!   counted across `spawn`/`fork`/`dup`/process exit.
//!
//! The public entry point for embedding applications is [`Kernel`] (see
//! [`hostapi`]), whose `boot`/`system` methods correspond to the JavaScript
//! API in Figure 4 of the paper.
//!
//! # Example
//!
//! ```
//! use browsix_core::{BootConfig, Kernel};
//! use browsix_fs::FileSystem;
//!
//! // Boot a kernel with an empty in-memory file system and no registered
//! // executables; the runtime crates register real programs.
//! let kernel = Kernel::boot(BootConfig::in_memory());
//! kernel.fs().mkdir("/etc").unwrap();
//! kernel.fs().write_file("/etc/motd", b"hello from browsix").unwrap();
//! assert_eq!(kernel.fs().read_file("/etc/motd").unwrap(), b"hello from browsix");
//! kernel.shutdown();
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod events;
pub mod exec;
pub mod fd;
pub mod hostapi;
pub mod kernel;
pub mod ring;
pub mod signals;
pub mod socket;
pub mod stats;
pub mod streams;
pub mod syscall;
pub mod task;
pub mod vm;
pub mod wire;

pub use events::{HostRequest, KernelEvent, OutputSink};
pub use exec::{ExecutableRegistry, ForkImage, LaunchContext, ProcessStart, ProgramLauncher};
pub use fd::{Fd, FdTable, OpenFile};
pub use hostapi::{BootConfig, ExitStatus, Kernel, ProcessHandle};
pub use ring::{Ring, RingGeometry};
pub use signals::{SigAction, SigSet, Signal, SignalDisposition, SignalState, SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK};
pub use stats::KernelStats;
pub use streams::{Stream, StreamId, StreamTable};
pub use syscall::{
    encode_stop_status, encode_wait_status, wait_status_exit_code, wait_status_signal, wait_status_stop_signal,
    ByteSource, Completion, CompletionBatch, PollRequest, SysResult, Syscall, SyscallBatch, Transport, NONBLOCK,
    POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT, WNOHANG, WUNTRACED,
};
pub use task::{Pid, TaskState};
pub use vm::{
    AddressSpace, ShmObject, VmDelta, MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED, PAGE_SIZE, PROT_READ, PROT_WRITE,
};

/// Re-export of the error type shared with the file system layer.
pub use browsix_fs::Errno;
