//! Persistent shared-memory syscall rings.
//!
//! The synchronous convention originally built one wire frame per batch and
//! handed it to the kernel by value.  Rings replace that with an io_uring
//! style pair of fixed-slot queues living *inside* the process's shared heap:
//!
//! * the **submission queue** (SQ): the process encodes each call directly
//!   into the next free slot and publishes it by advancing the tail index;
//! * the **completion queue** (CQ): the kernel encodes each result into the
//!   next free slot, advances the tail and notifies the waiting process;
//! * the **registered-buffer table**: a small pool of fixed-size buffers the
//!   kernel can fill with bulk read data, so a large `read` completion is a
//!   12-byte `DataFixed` entry instead of a payload copy through the codec.
//!
//! Each queue is single-producer/single-consumer: the process owns the SQ
//! tail and CQ head, the kernel owns the SQ head and CQ tail.  Indices are
//! free-running `u32`s (slot = index % slots), mirroring io_uring, so empty
//! is `head == tail` and full is `tail - head == slots`.
//!
//! The doorbell protocol avoids a kernel wake-up per submission: the kernel
//! sets the `NEED_WAKEUP` flag in the SQ header only once it has drained the
//! queue dry, and the process rings the doorbell (a kernel event, modelling
//! `Atomics.notify` on the kernel's wait address) only when it observes the
//! flag set — i.e. only on empty→non-empty transitions.
//!
//! Slot payloads reuse the exact wire encoding of [`crate::Syscall`] and
//! [`crate::syscall::SysResult`]; the frame codec stays the oracle for what
//! travels through a slot, and the asynchronous `postMessage` transport keeps
//! using full frames unchanged.
//!
//! Which calls may ride a ring slot is decided by the generated classifier
//! [`crate::abi::ring_safe`], straight from each call's `ring:` class in
//! `abi/syscalls.abi`.
//!
//! # Example
//!
//! A call crosses a ring slot in its ordinary wire encoding and comes back
//! out identical:
//!
//! ```
//! use browsix_core::ring::{Ring, RingGeometry, RING_REGION_BYTES};
//! use browsix_core::{wire::Reader, Syscall};
//!
//! let sab = browsix_browser::SharedArrayBuffer::new(RING_REGION_BYTES as usize);
//! let ring = Ring::new(sab, RingGeometry::standard(0));
//!
//! let call = Syscall::Read { fd: 3, len: 512 };
//! let mut payload = Vec::new();
//! call.encode_into(&mut payload);
//! assert!(ring.push_sqe(1, &payload));
//!
//! let (user_data, bytes) = ring.pop_sqe().unwrap();
//! assert_eq!(user_data, 1);
//! assert_eq!(Syscall::decode_from(&mut Reader::new(&bytes)), Some(call));
//! ```

use browsix_browser::SharedArrayBuffer;

/// Number of slots in each queue (power of two).
pub const RING_SLOTS: u32 = 64;
/// Byte size of one slot: an 8-byte entry header (`user_data`, payload
/// length) plus payload capacity.
pub const RING_SLOT_BYTES: u32 = 256;
/// Byte size of a queue header: head, tail, flags, one reserved word.
pub const RING_HEADER_BYTES: u32 = 16;
/// Byte size of one full queue (header + slots).
pub const RING_BYTES: u32 = RING_HEADER_BYTES + RING_SLOTS * RING_SLOT_BYTES;
/// Number of registered buffers.
pub const REG_BUF_COUNT: u32 = 7;
/// Byte size of one registered buffer.
pub const REG_BUF_BYTES: u32 = 64 * 1024;
/// Byte size of the registered-buffer table header (allocation bitmap word
/// plus reserved words).
pub const REG_BUF_TABLE_HEADER_BYTES: u32 = 16;
/// Byte size of the whole registered-buffer table.
pub const REG_BUF_TABLE_BYTES: u32 = REG_BUF_TABLE_HEADER_BYTES + REG_BUF_COUNT * REG_BUF_BYTES;
/// Byte size of the whole ring region (SQ + CQ + registered buffers).
pub const RING_REGION_BYTES: u32 = 2 * RING_BYTES + REG_BUF_TABLE_BYTES;

/// SQ header flag: the kernel has drained the queue dry and parked; the next
/// submission must ring the doorbell.
pub const NEED_WAKEUP: i32 = 1;

/// Maximum payload bytes one slot can carry.
pub const SLOT_PAYLOAD_BYTES: u32 = RING_SLOT_BYTES - 8;

/// Where the two queues and the buffer table sit inside the shared heap.
///
/// Carried by [`crate::Syscall::RingSetup`]; the kernel validates a geometry
/// against the registered heap before accepting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingGeometry {
    /// Byte offset of the SQ header.
    pub sq_offset: u32,
    /// Byte offset of the CQ header.
    pub cq_offset: u32,
    /// Slots per queue (power of two).
    pub slots: u32,
    /// Byte size of one slot.
    pub slot_bytes: u32,
    /// Byte offset of the registered-buffer table.
    pub buf_offset: u32,
    /// Number of registered buffers.
    pub buf_count: u32,
    /// Byte size of one registered buffer.
    pub buf_bytes: u32,
}

impl RingGeometry {
    /// The standard layout: SQ, CQ and buffer table packed back to back
    /// starting at `region_offset` within the shared heap.
    pub fn standard(region_offset: u32) -> RingGeometry {
        RingGeometry {
            sq_offset: region_offset,
            cq_offset: region_offset + RING_BYTES,
            slots: RING_SLOTS,
            slot_bytes: RING_SLOT_BYTES,
            buf_offset: region_offset + 2 * RING_BYTES,
            buf_count: REG_BUF_COUNT,
            buf_bytes: REG_BUF_BYTES,
        }
    }

    /// Whether this geometry is sane and fits a heap of `heap_len` bytes.
    pub fn validate(&self, heap_len: usize) -> bool {
        let queue_bytes = match self
            .slot_bytes
            .checked_mul(self.slots)
            .and_then(|b| b.checked_add(RING_HEADER_BYTES))
        {
            Some(b) => b as usize,
            None => return false,
        };
        let buf_bytes = match self
            .buf_bytes
            .checked_mul(self.buf_count)
            .and_then(|b| b.checked_add(REG_BUF_TABLE_HEADER_BYTES))
        {
            Some(b) => b as usize,
            None => return false,
        };
        let in_bounds = |off: u32, len: usize| (off as usize).checked_add(len).map(|end| end <= heap_len) == Some(true);
        self.slots.is_power_of_two()
            && self.slots > 0
            && self.slot_bytes > 8
            && in_bounds(self.sq_offset, queue_bytes)
            && in_bounds(self.cq_offset, queue_bytes)
            && in_bounds(self.buf_offset, buf_bytes)
    }

    fn sq_head_off(&self) -> usize {
        self.sq_offset as usize
    }
    fn sq_tail_off(&self) -> usize {
        self.sq_offset as usize + 4
    }
    fn sq_flags_off(&self) -> usize {
        self.sq_offset as usize + 8
    }
    fn cq_head_off(&self) -> usize {
        self.cq_offset as usize
    }
    /// Byte offset of the CQ tail word — the address the process blocks on
    /// with `Atomics.wait` while expecting completions.
    pub fn cq_tail_off(&self) -> usize {
        self.cq_offset as usize + 4
    }
    fn sq_slot_off(&self, index: u32) -> usize {
        self.sq_offset as usize + RING_HEADER_BYTES as usize + (index % self.slots * self.slot_bytes) as usize
    }
    fn cq_slot_off(&self, index: u32) -> usize {
        self.cq_offset as usize + RING_HEADER_BYTES as usize + (index % self.slots * self.slot_bytes) as usize
    }
    fn bitmap_off(&self) -> usize {
        self.buf_offset as usize
    }
    fn buf_slot_off(&self, index: u32) -> usize {
        self.buf_offset as usize + REG_BUF_TABLE_HEADER_BYTES as usize + (index * self.buf_bytes) as usize
    }

    /// Maximum payload bytes one slot of this geometry can carry.
    pub fn slot_payload_bytes(&self) -> usize {
        self.slot_bytes as usize - 8
    }
}

/// One side's handle to a ring pair mapped into a shared heap.
///
/// Both the kernel and the `SyscallClient` hold one of these over the *same*
/// `SharedArrayBuffer`; the SPSC ownership discipline (documented on the
/// module) is what keeps the two sides coherent.
#[derive(Debug, Clone)]
pub struct Ring {
    sab: SharedArrayBuffer,
    geo: RingGeometry,
}

impl Ring {
    /// Wraps a shared heap and a validated geometry.
    pub fn new(sab: SharedArrayBuffer, geo: RingGeometry) -> Ring {
        Ring { sab, geo }
    }

    /// The geometry this ring was mapped with.
    pub fn geometry(&self) -> &RingGeometry {
        &self.geo
    }

    /// The shared heap backing this ring.
    pub fn sab(&self) -> &SharedArrayBuffer {
        &self.sab
    }

    fn load(&self, off: usize) -> u32 {
        self.sab.load_u32(off).unwrap_or(0)
    }

    fn store(&self, off: usize, value: u32) {
        let _ = self.sab.store_i32(off, value as i32);
    }

    // --- submission queue -------------------------------------------------

    /// Free SQ slots from the producer's point of view.
    pub fn sq_space(&self) -> u32 {
        let head = self.load(self.geo.sq_head_off());
        let tail = self.load(self.geo.sq_tail_off());
        self.geo.slots - tail.wrapping_sub(head)
    }

    /// Whether the SQ currently holds no published entries.
    pub fn sq_is_empty(&self) -> bool {
        self.load(self.geo.sq_head_off()) == self.load(self.geo.sq_tail_off())
    }

    /// Producer: writes one entry into the next free slot and publishes it.
    ///
    /// Returns `false` (without side effects) if the queue is full or the
    /// payload exceeds the slot capacity.
    pub fn push_sqe(&self, user_data: u32, payload: &[u8]) -> bool {
        if self.sq_space() == 0 || payload.len() > self.geo.slot_payload_bytes() {
            return false;
        }
        let tail = self.load(self.geo.sq_tail_off());
        let slot = self.geo.sq_slot_off(tail);
        let mut entry = Vec::with_capacity(8 + payload.len());
        entry.extend_from_slice(&user_data.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        entry.extend_from_slice(payload);
        if self.sab.write_bytes(slot, &entry).is_err() {
            return false;
        }
        self.store(self.geo.sq_tail_off(), tail.wrapping_add(1));
        true
    }

    /// Consumer: pops the oldest entry, if any.
    pub fn pop_sqe(&self) -> Option<(u32, Vec<u8>)> {
        let head = self.load(self.geo.sq_head_off());
        if head == self.load(self.geo.sq_tail_off()) {
            return None;
        }
        let slot = self.geo.sq_slot_off(head);
        let header = self.sab.read_bytes(slot, 8).ok()?;
        let user_data = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let payload = self
            .sab
            .read_bytes(slot + 8, len.min(self.geo.slot_payload_bytes()))
            .ok()?;
        self.store(self.geo.sq_head_off(), head.wrapping_add(1));
        Some((user_data, payload))
    }

    /// Current SQ flags word.
    pub fn sq_flags(&self) -> i32 {
        self.sab.load_i32(self.geo.sq_flags_off()).unwrap_or(0)
    }

    /// Kernel: parks the queue — sets `NEED_WAKEUP` so the next submission
    /// rings the doorbell.
    pub fn set_need_wakeup(&self) {
        let _ = self.sab.fetch_or_i32(self.geo.sq_flags_off(), NEED_WAKEUP);
    }

    /// Kernel: clears `NEED_WAKEUP` before re-draining.
    pub fn clear_need_wakeup(&self) {
        let _ = self.sab.fetch_and_i32(self.geo.sq_flags_off(), !NEED_WAKEUP);
    }

    /// Process: atomically consumes the `NEED_WAKEUP` flag.  Returns whether
    /// it was set, i.e. whether the doorbell must ring for this submission.
    pub fn take_doorbell(&self) -> bool {
        matches!(
            self.sab.fetch_and_i32(self.geo.sq_flags_off(), !NEED_WAKEUP),
            Ok(old) if old & NEED_WAKEUP != 0
        )
    }

    // --- completion queue -------------------------------------------------

    /// Free CQ slots from the producer's (kernel's) point of view.
    pub fn cq_space(&self) -> u32 {
        let head = self.load(self.geo.cq_head_off());
        let tail = self.load(self.geo.cq_tail_off());
        self.geo.slots - tail.wrapping_sub(head)
    }

    /// The CQ tail index, which the process also uses as the `Atomics.wait`
    /// expected value while blocking for completions.
    pub fn cq_tail(&self) -> u32 {
        self.load(self.geo.cq_tail_off())
    }

    /// Kernel: writes one completion into the next free slot, publishes it
    /// and notifies the process blocked on the CQ tail word.
    ///
    /// Returns `false` (without side effects) if the queue is full or the
    /// payload exceeds the slot capacity; the caller is expected to hold the
    /// completion in an overflow queue and retry later.
    pub fn push_cqe(&self, user_data: u32, payload: &[u8]) -> bool {
        if self.cq_space() == 0 || payload.len() > self.geo.slot_payload_bytes() {
            return false;
        }
        let tail = self.load(self.geo.cq_tail_off());
        let slot = self.geo.cq_slot_off(tail);
        let mut entry = Vec::with_capacity(8 + payload.len());
        entry.extend_from_slice(&user_data.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        entry.extend_from_slice(payload);
        if self.sab.write_bytes(slot, &entry).is_err() {
            return false;
        }
        let _ = self
            .sab
            .store_and_notify(self.geo.cq_tail_off(), tail.wrapping_add(1) as i32);
        true
    }

    /// Process: pops the oldest completion, if any.
    pub fn pop_cqe(&self) -> Option<(u32, Vec<u8>)> {
        let head = self.load(self.geo.cq_head_off());
        if head == self.load(self.geo.cq_tail_off()) {
            return None;
        }
        let slot = self.geo.cq_slot_off(head);
        let header = self.sab.read_bytes(slot, 8).ok()?;
        let user_data = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let payload = self
            .sab
            .read_bytes(slot + 8, len.min(self.geo.slot_payload_bytes()))
            .ok()?;
        self.store(self.geo.cq_head_off(), head.wrapping_add(1));
        Some((user_data, payload))
    }

    // --- registered buffers -----------------------------------------------

    /// Kernel: claims a free registered buffer, marking it in the shared
    /// allocation bitmap.  Returns its index, or `None` if all are in use.
    pub fn alloc_buf(&self) -> Option<u32> {
        let bitmap = self.sab.load_i32(self.geo.bitmap_off()).ok()? as u32;
        for index in 0..self.geo.buf_count {
            if bitmap & (1 << index) == 0 {
                let _ = self.sab.fetch_or_i32(self.geo.bitmap_off(), 1 << index);
                return Some(index);
            }
        }
        None
    }

    /// Process: releases a registered buffer after copying its bytes out.
    pub fn free_buf(&self, index: u32) {
        if index < self.geo.buf_count {
            let _ = self.sab.fetch_and_i32(self.geo.bitmap_off(), !(1 << index));
        }
    }

    /// Kernel: fills a registered buffer with result bytes.
    ///
    /// Returns `false` if the index or length is out of range.
    pub fn write_buf(&self, index: u32, data: &[u8]) -> bool {
        if index >= self.geo.buf_count || data.len() > self.geo.buf_bytes as usize {
            return false;
        }
        self.sab.write_bytes(self.geo.buf_slot_off(index), data).is_ok()
    }

    /// Process: copies result bytes out of a registered buffer.
    pub fn read_buf(&self, index: u32, len: usize) -> Option<Vec<u8>> {
        if index >= self.geo.buf_count || len > self.geo.buf_bytes as usize {
            return None;
        }
        self.sab.read_bytes(self.geo.buf_slot_off(index), len).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        let geo = RingGeometry::standard(0);
        let sab = SharedArrayBuffer::new(RING_REGION_BYTES as usize);
        Ring::new(sab, geo)
    }

    #[test]
    fn standard_geometry_is_valid_and_packed() {
        let geo = RingGeometry::standard(512 * 1024);
        assert!(geo.validate(1024 * 1024));
        assert_eq!(geo.cq_offset - geo.sq_offset, RING_BYTES);
        assert_eq!(geo.buf_offset - geo.cq_offset, RING_BYTES);
        assert!(geo.buf_offset + REG_BUF_TABLE_BYTES <= 1024 * 1024);
        // Too small a heap is rejected.
        assert!(!geo.validate(512 * 1024));
        // Non-power-of-two slot counts are rejected.
        let mut bad = geo;
        bad.slots = 48;
        assert!(!bad.validate(1024 * 1024));
    }

    #[test]
    fn sq_round_trips_in_fifo_order() {
        let ring = ring();
        assert!(ring.sq_is_empty());
        assert!(ring.push_sqe(7, b"first"));
        assert!(ring.push_sqe(8, b"second"));
        assert!(!ring.sq_is_empty());
        assert_eq!(ring.pop_sqe(), Some((7, b"first".to_vec())));
        assert_eq!(ring.pop_sqe(), Some((8, b"second".to_vec())));
        assert_eq!(ring.pop_sqe(), None);
    }

    #[test]
    fn sq_rejects_overfill_and_oversize() {
        let ring = ring();
        for i in 0..RING_SLOTS {
            assert!(ring.push_sqe(i, b"x"));
        }
        assert_eq!(ring.sq_space(), 0);
        assert!(!ring.push_sqe(99, b"full"));
        assert!(ring.pop_sqe().is_some());
        assert!(ring.push_sqe(99, b"now fits"));
        let oversized = vec![0u8; SLOT_PAYLOAD_BYTES as usize + 1];
        assert!(!ring.push_sqe(100, &oversized));
        let exactly = vec![0u8; SLOT_PAYLOAD_BYTES as usize];
        assert!(ring.pop_sqe().is_some());
        assert!(ring.push_sqe(100, &exactly));
    }

    #[test]
    fn indices_wrap_around() {
        let ring = ring();
        // Push/pop enough entries to wrap the u8-sized slot window many times.
        for i in 0..(RING_SLOTS * 3 + 5) {
            assert!(ring.push_sqe(i, &i.to_le_bytes()));
            let (user_data, payload) = ring.pop_sqe().unwrap();
            assert_eq!(user_data, i);
            assert_eq!(payload, i.to_le_bytes());
        }
    }

    #[test]
    fn cq_round_trips_and_notifies() {
        let ring = ring();
        let before = ring.cq_tail();
        assert!(ring.push_cqe(3, b"done"));
        assert_eq!(ring.cq_tail(), before.wrapping_add(1));
        assert_eq!(ring.pop_cqe(), Some((3, b"done".to_vec())));
        assert_eq!(ring.pop_cqe(), None);
    }

    #[test]
    fn doorbell_flag_protocol() {
        let ring = ring();
        // No flag: no doorbell needed.
        assert!(!ring.take_doorbell());
        ring.set_need_wakeup();
        assert_eq!(ring.sq_flags() & NEED_WAKEUP, NEED_WAKEUP);
        // First submitter consumes the flag; the second does not ring again.
        assert!(ring.take_doorbell());
        assert!(!ring.take_doorbell());
        ring.set_need_wakeup();
        ring.clear_need_wakeup();
        assert!(!ring.take_doorbell());
    }

    #[test]
    fn registered_buffers_allocate_fill_and_free() {
        let ring = ring();
        let mut claimed = Vec::new();
        for _ in 0..REG_BUF_COUNT {
            claimed.push(ring.alloc_buf().unwrap());
        }
        assert_eq!(ring.alloc_buf(), None, "pool exhausted");
        let buf = claimed[2];
        assert!(ring.write_buf(buf, b"bulk read payload"));
        assert_eq!(ring.read_buf(buf, 17).unwrap(), b"bulk read payload");
        ring.free_buf(buf);
        assert_eq!(ring.alloc_buf(), Some(buf), "freed buffer is reused");
        // Out-of-range indices and lengths are rejected.
        assert!(!ring.write_buf(REG_BUF_COUNT, b"x"));
        assert!(ring.read_buf(0, REG_BUF_BYTES as usize + 1).is_none());
        assert!(!ring.write_buf(0, &vec![0u8; REG_BUF_BYTES as usize + 1]));
    }
}
