//! Kernel statistics.
//!
//! The evaluation needs to know what the kernel actually did: how many system
//! calls were issued over each convention and in each Figure 3 class, how
//! large the submission batches were, how many bytes were copied between
//! heaps, how many processes ran.  [`KernelStats`] is the snapshot handed to
//! the host through the statistics host request.

use std::collections::BTreeMap;

/// A snapshot of kernel activity since boot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// System calls by name.
    pub syscalls_by_name: BTreeMap<String, u64>,
    /// System calls by Figure 3 class ("File IO", "Process Management", ...).
    pub syscalls_by_class: BTreeMap<String, u64>,
    /// Total system calls.
    pub total_syscalls: u64,
    /// Calls made over the asynchronous (message-passing) convention.
    pub async_syscalls: u64,
    /// Calls made over the synchronous (shared-memory) convention.
    pub sync_syscalls: u64,
    /// Submission batches received (each carries one or more calls).
    pub batches: u64,
    /// Histogram of submission-batch sizes: entries-per-batch → batch count.
    pub batch_size_histogram: BTreeMap<u32, u64>,
    /// Bytes of system-call arguments and results copied between heaps by the
    /// asynchronous convention's structured clones.
    pub bytes_copied: u64,
    /// Processes created (spawn + fork + host spawns).
    pub processes_spawned: u64,
    /// Processes that have exited.
    pub processes_exited: u64,
    /// Signals sent (accepted by the kernel for a live target, whether
    /// dispatched immediately or parked in a pending set).
    pub signals_sent: u64,
    /// Signals delivered (handler ran or a default disposition acted);
    /// ignored and coalesced-pending signals are not counted.
    pub signals_delivered: u64,
    /// Blocked system calls completed early with `EINTR` because a signal
    /// handler interrupted their process.
    pub eintr_wakeups: u64,
    /// Messages posted from the kernel to workers (responses, signals, init).
    pub messages_to_workers: u64,
    /// Dentry-cache hits in the mount table (paths resolved without a scan).
    pub dentry_cache_hits: u64,
    /// Dentry-cache misses in the mount table.
    pub dentry_cache_misses: u64,
    /// Pages served from `httpfs` page caches without touching the network.
    pub page_cache_hits: u64,
    /// Pages fetched from remote servers (page-cache misses).
    pub page_cache_misses: u64,
    /// Files materialised in overlay writable layers by copy-up.
    pub overlay_copy_ups: u64,
    /// Blocked system calls parked on a wait queue.
    pub waiters_parked: u64,
    /// Parked waiters woken by a targeted wait-queue wakeup that then
    /// completed.
    pub wakeups: u64,
    /// Parked waiters woken whose retry still could not make progress (they
    /// re-parked).  A healthy wait-queue design keeps this near zero.
    pub spurious_wakeups: u64,
    /// Non-blocking operations (`O_NONBLOCK` reads/writes/accepts) that
    /// returned `EAGAIN` instead of parking.
    pub eagain_returns: u64,
    /// `poll` calls completed by their timeout rather than a readiness
    /// wakeup.
    pub poll_timeouts: u64,
    /// Copy-on-write faults serviced (a `VmWrite` hit a page shared with a
    /// forked sibling or a page cache).
    pub cow_faults: u64,
    /// Pages shared by reference instead of copied (fork, file-backed
    /// `mmap`).
    pub pages_shared: u64,
    /// Pages physically copied by COW faults.
    pub pages_copied: u64,
    /// Named shared-memory objects created by `shm_open`.
    pub shm_objects: u64,
    /// Submission-queue entries the kernel consumed from syscall rings.
    pub sq_polled: u64,
    /// Doorbell events received (empty→non-empty SQ transitions; every other
    /// submission was picked up by an already-awake kernel).
    pub doorbells: u64,
    /// Completion-queue entries the kernel posted to syscall rings.
    pub cq_posted: u64,
    /// Bytes moved by `sendfile`/`splice` without entering guest memory.
    pub sendfile_bytes: u64,
    /// Page-cache pages streamed to a socket or pipe by reference (`sendfile`
    /// from a mapped page) rather than copied through the guest.
    pub zero_copy_pages: u64,
    /// Cross-shard [`ShardMsg`](crate::kernel::shard::ShardMsg)s this shard
    /// sent to peers (remote reads/writes, spawns, signals, endpoint
    /// snapshots...).  Zero with one shard.
    pub shard_msgs_sent: u64,
    /// Remote stream operations this shard executed on behalf of a peer (a
    /// peer's process read from or wrote to a stream this shard owns).
    pub steals: u64,
    /// Wakeups whose completion was delivered to a waiter living on another
    /// shard (the cross-shard subset of `wakeups`).
    pub cross_shard_wakeups: u64,
}

impl KernelStats {
    /// Records a submission batch arriving at the kernel.  `wire_bytes` is the
    /// size of the encoded frame, charged as copy cost only for the
    /// asynchronous convention (the synchronous frame lives in shared memory).
    pub fn record_batch(&mut self, entries: usize, synchronous: bool, wire_bytes: usize) {
        self.batches += 1;
        *self.batch_size_histogram.entry(entries as u32).or_insert(0) += 1;
        if !synchronous {
            self.bytes_copied += wire_bytes as u64;
        }
    }

    /// Records one system call dispatched from a batch.
    pub fn record_syscall(&mut self, name: &str, class: &str, synchronous: bool) {
        *self.syscalls_by_name.entry(name.to_owned()).or_insert(0) += 1;
        *self.syscalls_by_class.entry(class.to_owned()).or_insert(0) += 1;
        self.total_syscalls += 1;
        if synchronous {
            self.sync_syscalls += 1;
        } else {
            self.async_syscalls += 1;
        }
    }

    /// Records a message posted from the kernel to a worker, with the number
    /// of payload bytes it copied.
    pub fn record_message_to_worker(&mut self, copied_bytes: usize) {
        self.messages_to_workers += 1;
        self.bytes_copied += copied_bytes as u64;
    }

    /// Copies a VFS counter snapshot ([`browsix_fs::IoStats`]) into the
    /// kernel statistics; called when a snapshot is handed to the host.
    pub fn absorb_fs(&mut self, io: browsix_fs::IoStats) {
        self.dentry_cache_hits = io.dentry_hits;
        self.dentry_cache_misses = io.dentry_misses;
        self.page_cache_hits = io.page_cache_hits;
        self.page_cache_misses = io.page_cache_misses;
        self.overlay_copy_ups = io.copy_ups;
    }

    /// Accumulates page-sharing/copying activity reported by an
    /// [`AddressSpace`](crate::vm::AddressSpace) operation.
    pub fn record_vm(&mut self, delta: crate::vm::VmDelta) {
        self.cow_faults += delta.cow_faults;
        self.pages_shared += delta.pages_shared;
        self.pages_copied += delta.pages_copied;
    }

    /// Folds another shard's snapshot into this one: every counter and
    /// histogram is summed, so merging all per-shard snapshots yields the
    /// fleet-wide totals the paper figures report.  The VFS cache fields are
    /// summed too — per-shard snapshots carry them as zero (the shared
    /// mount table's counters are absorbed exactly once, after the merge).
    pub fn merge(&mut self, other: &KernelStats) {
        for (name, count) in &other.syscalls_by_name {
            *self.syscalls_by_name.entry(name.clone()).or_insert(0) += count;
        }
        for (class, count) in &other.syscalls_by_class {
            *self.syscalls_by_class.entry(class.clone()).or_insert(0) += count;
        }
        for (size, count) in &other.batch_size_histogram {
            *self.batch_size_histogram.entry(*size).or_insert(0) += count;
        }
        self.total_syscalls += other.total_syscalls;
        self.async_syscalls += other.async_syscalls;
        self.sync_syscalls += other.sync_syscalls;
        self.batches += other.batches;
        self.bytes_copied += other.bytes_copied;
        self.processes_spawned += other.processes_spawned;
        self.processes_exited += other.processes_exited;
        self.signals_sent += other.signals_sent;
        self.signals_delivered += other.signals_delivered;
        self.eintr_wakeups += other.eintr_wakeups;
        self.messages_to_workers += other.messages_to_workers;
        self.dentry_cache_hits += other.dentry_cache_hits;
        self.dentry_cache_misses += other.dentry_cache_misses;
        self.page_cache_hits += other.page_cache_hits;
        self.page_cache_misses += other.page_cache_misses;
        self.overlay_copy_ups += other.overlay_copy_ups;
        self.waiters_parked += other.waiters_parked;
        self.wakeups += other.wakeups;
        self.spurious_wakeups += other.spurious_wakeups;
        self.eagain_returns += other.eagain_returns;
        self.poll_timeouts += other.poll_timeouts;
        self.cow_faults += other.cow_faults;
        self.pages_shared += other.pages_shared;
        self.pages_copied += other.pages_copied;
        self.shm_objects += other.shm_objects;
        self.sq_polled += other.sq_polled;
        self.doorbells += other.doorbells;
        self.cq_posted += other.cq_posted;
        self.sendfile_bytes += other.sendfile_bytes;
        self.zero_copy_pages += other.zero_copy_pages;
        self.shard_msgs_sent += other.shard_msgs_sent;
        self.steals += other.steals;
        self.cross_shard_wakeups += other.cross_shard_wakeups;
    }

    /// The count for a particular system call.
    pub fn count(&self, name: &str) -> u64 {
        self.syscalls_by_name.get(name).copied().unwrap_or(0)
    }

    /// The count for a Figure 3 class.
    pub fn class_count(&self, class: &str) -> u64 {
        self.syscalls_by_class.get(class).copied().unwrap_or(0)
    }

    /// The distinct system calls observed, sorted by name (used to regenerate
    /// Figure 3).
    pub fn observed_syscalls(&self) -> Vec<String> {
        self.syscalls_by_name.keys().cloned().collect()
    }

    /// Mean entries per submission batch (0.0 before any batch arrives).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_syscalls as f64 / self.batches as f64
        }
    }

    /// The largest submission batch seen so far.
    pub fn max_batch_size(&self) -> u32 {
        self.batch_size_histogram.keys().max().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_convention_and_class() {
        let mut stats = KernelStats::default();
        stats.record_batch(2, false, 120);
        stats.record_syscall("open", "File IO", false);
        stats.record_syscall("read", "File IO", false);
        stats.record_batch(1, true, 64);
        stats.record_syscall("read", "File IO", true);
        assert_eq!(stats.total_syscalls, 3);
        assert_eq!(stats.async_syscalls, 2);
        assert_eq!(stats.sync_syscalls, 1);
        assert_eq!(stats.bytes_copied, 120, "sync frames are not structured-clone copied");
        assert_eq!(stats.count("read"), 2);
        assert_eq!(stats.count("open"), 1);
        assert_eq!(stats.count("write"), 0);
        assert_eq!(stats.class_count("File IO"), 3);
        assert_eq!(stats.class_count("Sockets"), 0);
        assert_eq!(stats.observed_syscalls(), vec!["open".to_string(), "read".to_string()]);
    }

    #[test]
    fn batch_histogram_tracks_sizes() {
        let mut stats = KernelStats::default();
        stats.record_batch(1, false, 10);
        stats.record_batch(1, false, 10);
        stats.record_batch(8, false, 200);
        for _ in 0..10 {
            stats.record_syscall("write", "File IO", false);
        }
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.batch_size_histogram.get(&1), Some(&2));
        assert_eq!(stats.batch_size_histogram.get(&8), Some(&1));
        assert_eq!(stats.max_batch_size(), 8);
        let mean = stats.mean_batch_size();
        assert!((mean - 10.0 / 3.0).abs() < 1e-9, "mean was {mean}");
    }

    #[test]
    fn worker_messages_accumulate_bytes() {
        let mut stats = KernelStats::default();
        stats.record_message_to_worker(64);
        stats.record_message_to_worker(16);
        assert_eq!(stats.messages_to_workers, 2);
        assert_eq!(stats.bytes_copied, 80);
    }

    #[test]
    fn absorb_fs_copies_vfs_counters() {
        let mut stats = KernelStats::default();
        stats.absorb_fs(browsix_fs::IoStats {
            dentry_hits: 10,
            dentry_misses: 2,
            page_cache_hits: 7,
            page_cache_misses: 3,
            copy_ups: 1,
        });
        assert_eq!(stats.dentry_cache_hits, 10);
        assert_eq!(stats.dentry_cache_misses, 2);
        assert_eq!(stats.page_cache_hits, 7);
        assert_eq!(stats.page_cache_misses, 3);
        assert_eq!(stats.overlay_copy_ups, 1);
    }

    #[test]
    fn merge_sums_counters_and_maps() {
        let mut a = KernelStats::default();
        a.record_batch(2, false, 100);
        a.record_syscall("read", "File IO", false);
        a.record_syscall("open", "File IO", false);
        a.shard_msgs_sent = 3;
        let mut b = KernelStats::default();
        b.record_batch(1, true, 50);
        b.record_syscall("read", "File IO", true);
        b.steals = 2;
        b.cross_shard_wakeups = 1;
        a.merge(&b);
        assert_eq!(a.total_syscalls, 3);
        assert_eq!(a.count("read"), 2);
        assert_eq!(a.class_count("File IO"), 3);
        assert_eq!(a.batches, 2);
        assert_eq!(a.batch_size_histogram.get(&1), Some(&1));
        assert_eq!(a.batch_size_histogram.get(&2), Some(&1));
        assert_eq!(a.sync_syscalls, 1);
        assert_eq!(a.shard_msgs_sent, 3);
        assert_eq!(a.steals, 2);
        assert_eq!(a.cross_shard_wakeups, 1);
    }

    #[test]
    fn default_snapshot_is_zeroed() {
        let stats = KernelStats::default();
        assert_eq!(stats.total_syscalls, 0);
        assert_eq!(stats.processes_spawned, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.mean_batch_size(), 0.0);
        assert_eq!(stats.max_batch_size(), 0);
        assert!(stats.observed_syscalls().is_empty());
    }
}
