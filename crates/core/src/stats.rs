//! Kernel statistics.
//!
//! The evaluation needs to know what the kernel actually did: how many system
//! calls were issued over each convention, how many bytes were copied between
//! heaps, how many processes ran.  [`KernelStats`] is the snapshot handed to
//! the host through the statistics host request.

use std::collections::BTreeMap;

/// A snapshot of kernel activity since boot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// System calls by name.
    pub syscalls_by_name: BTreeMap<String, u64>,
    /// Total system calls.
    pub total_syscalls: u64,
    /// Calls made over the asynchronous (message-passing) convention.
    pub async_syscalls: u64,
    /// Calls made over the synchronous (shared-memory) convention.
    pub sync_syscalls: u64,
    /// Bytes of system-call arguments and results copied between heaps by the
    /// asynchronous convention's structured clones.
    pub bytes_copied: u64,
    /// Processes created (spawn + fork + host spawns).
    pub processes_spawned: u64,
    /// Processes that have exited.
    pub processes_exited: u64,
    /// Signals delivered to processes.
    pub signals_delivered: u64,
    /// Messages posted from the kernel to workers (responses, signals, init).
    pub messages_to_workers: u64,
}

impl KernelStats {
    /// Records a system call arriving at the kernel.
    pub fn record_syscall(&mut self, name: &str, synchronous: bool, copied_bytes: usize) {
        *self.syscalls_by_name.entry(name.to_owned()).or_insert(0) += 1;
        self.total_syscalls += 1;
        if synchronous {
            self.sync_syscalls += 1;
        } else {
            self.async_syscalls += 1;
            self.bytes_copied += copied_bytes as u64;
        }
    }

    /// Records a message posted from the kernel to a worker, with the number
    /// of payload bytes it copied.
    pub fn record_message_to_worker(&mut self, copied_bytes: usize) {
        self.messages_to_workers += 1;
        self.bytes_copied += copied_bytes as u64;
    }

    /// The count for a particular system call.
    pub fn count(&self, name: &str) -> u64 {
        self.syscalls_by_name.get(name).copied().unwrap_or(0)
    }

    /// The distinct system calls observed, sorted by name (used to regenerate
    /// Figure 3).
    pub fn observed_syscalls(&self) -> Vec<String> {
        self.syscalls_by_name.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_convention() {
        let mut stats = KernelStats::default();
        stats.record_syscall("open", false, 120);
        stats.record_syscall("read", false, 40);
        stats.record_syscall("read", true, 0);
        assert_eq!(stats.total_syscalls, 3);
        assert_eq!(stats.async_syscalls, 2);
        assert_eq!(stats.sync_syscalls, 1);
        assert_eq!(stats.bytes_copied, 160);
        assert_eq!(stats.count("read"), 2);
        assert_eq!(stats.count("open"), 1);
        assert_eq!(stats.count("write"), 0);
        assert_eq!(stats.observed_syscalls(), vec!["open".to_string(), "read".to_string()]);
    }

    #[test]
    fn worker_messages_accumulate_bytes() {
        let mut stats = KernelStats::default();
        stats.record_message_to_worker(64);
        stats.record_message_to_worker(16);
        assert_eq!(stats.messages_to_workers, 2);
        assert_eq!(stats.bytes_copied, 80);
    }

    #[test]
    fn default_snapshot_is_zeroed() {
        let stats = KernelStats::default();
        assert_eq!(stats.total_syscalls, 0);
        assert_eq!(stats.processes_spawned, 0);
        assert!(stats.observed_syscalls().is_empty());
    }
}
