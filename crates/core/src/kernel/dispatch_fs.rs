//! File and directory system-call handlers.
//!
//! Browsix "implements system calls that operate on paths, like `open` and
//! `stat`, as method calls to the kernel's BrowserFS instance".  Here the
//! path-based calls still route through the shared [`MountedFs`]
//! (`browsix_fs::MountedFs`) — behind its dentry cache — but `sys_open` is
//! the **only** place a descriptor's path is ever resolved: it obtains a
//! [`browsix_fs::FileHandle`] bound to the node, and every descriptor-based
//! call (`read`, `write`, `pread`, `pwrite`, `seek`, `fstat`, `fsync`) goes
//! through that handle without touching a path string again.

use browsix_fs::{Errno, FileSystem, FileType, Metadata, OpenFlags};

use crate::fd::{Fd, FileKind, OpenFile};
use crate::kernel::waitq::WaitChannel;
use crate::kernel::{KernelState, Outcome, ReplyTo, WaitKind, Waiter};
use crate::signals::Signal;
use crate::streams::StreamId;
use crate::syscall::{ByteSource, SysResult};
use crate::task::Pid;

impl KernelState {
    pub(crate) fn sys_open(&mut self, pid: Pid, path: String, flags: OpenFlags, mode: u32) -> Outcome {
        let path = self.resolve_path(pid, &path);
        let meta = match self.fs().stat(&path) {
            Ok(meta) => {
                if flags.create && flags.exclusive {
                    return Outcome::Complete(SysResult::Err(Errno::EEXIST));
                }
                Some(meta)
            }
            Err(Errno::ENOENT) if flags.create => {
                if let Err(e) = self.fs().create(&path, mode & 0o7777) {
                    return Outcome::Complete(SysResult::Err(e));
                }
                None
            }
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let is_dir = meta.map(|m| m.is_dir()).unwrap_or(false);
        if is_dir {
            if flags.write {
                return Outcome::Complete(SysResult::Err(Errno::EISDIR));
            }
            let file = OpenFile::new(FileKind::Directory { path });
            let fd = match self.task_mut(pid) {
                Ok(task) => task.files.insert(file, 0),
                Err(e) => return Outcome::Complete(SysResult::Err(e)),
            };
            return Outcome::Complete(SysResult::Int(fd as i64));
        }
        // The single point where a descriptor's path is resolved: from here
        // on, all I/O goes through the handle.
        let handle = match self.fs().open_handle(&path, flags) {
            Ok(handle) => handle,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        if flags.truncate && flags.write {
            if let Err(e) = handle.truncate(0) {
                return Outcome::Complete(SysResult::Err(e));
            }
        }
        // POSIX: the offset starts at 0 even with O_APPEND; append writes
        // seek-to-end atomically at the handle layer instead.
        let file = OpenFile::new(FileKind::File { handle, flags });
        let fd = match self.task_mut(pid) {
            Ok(task) => task.files.insert(file, 0),
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        Outcome::Complete(SysResult::Int(fd as i64))
    }

    pub(crate) fn sys_close(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let removed = match self.task_mut(pid) {
            Ok(task) => task.files.remove(fd),
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match removed {
            Ok(file) => {
                if let FileKind::SocketListener { port } = file.kind() {
                    self.sockets_mut().close_listener(port);
                    self.router.release_port(port, self.shard_id);
                    self.wake(WaitChannel::Listener(port));
                }
                self.recompute_endpoints();
                Outcome::Complete(SysResult::Ok)
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    /// The foreign stream a read/write on `fd` would touch, if its backing
    /// stream is owned by another shard (`None` for every local case —
    /// including errors, which the normal path reports properly).
    fn remote_stream_target(&self, pid: Pid, fd: Fd, write: bool) -> Option<StreamId> {
        let file = self.task(pid).ok()?.files.get(fd).ok()?;
        let kind = file.kind();
        if !matches!(
            kind,
            FileKind::PipeReader { .. } | FileKind::PipeWriter { .. } | FileKind::SocketStream { .. }
        ) {
            return None;
        }
        let stream = if write {
            self.write_stream_of(&kind)?
        } else {
            self.read_stream_of(&kind)?
        };
        self.stream_is_remote(stream).then_some(stream)
    }

    /// Attempts a read; `Ok(None)` means "would block".
    pub(crate) fn try_read_fd(&mut self, pid: Pid, fd: Fd, len: usize) -> Result<Option<Vec<u8>>, Errno> {
        let file = self.task(pid)?.files.get(fd)?;
        let kind = file.kind();
        match &kind {
            FileKind::File { handle, flags } => {
                if !flags.read {
                    return Err(Errno::EBADF);
                }
                let offset = file.offset();
                let data = handle.read_at(offset, len)?;
                file.advance_offset(data.len() as u64);
                Ok(Some(data))
            }
            FileKind::Directory { .. } => Err(Errno::EISDIR),
            FileKind::Null => Ok(Some(Vec::new())),
            FileKind::Tty => {
                // Job control: a background process group reading from the
                // controlling terminal gets SIGTTIN (default: stop).  A
                // reader that blocks or ignores SIGTTIN gets EIO instead, as
                // POSIX specifies — returning EINTR there would make a
                // retry-on-EINTR loop raise SIGTTIN forever.  The foreground
                // group (or a terminal with no foreground set) reads EOF,
                // since the terminal has no input source.
                if let Some(fg) = self.foreground_pgid() {
                    let task = self.task(pid)?;
                    if task.pgid != fg {
                        let shrugged = task.signals.blocked().contains(Signal::SIGTTIN)
                            || matches!(task.signals.action(Signal::SIGTTIN), crate::signals::SigAction::Ignore);
                        if shrugged {
                            return Err(Errno::EIO);
                        }
                        let _ = self.send_signal(pid, Signal::SIGTTIN);
                        return Err(Errno::EINTR);
                    }
                }
                Ok(Some(Vec::new()))
            }
            FileKind::HostSink { .. } | FileKind::PipeWriter { .. } => Err(Errno::EBADF),
            FileKind::Socket { .. } | FileKind::SocketListener { .. } => Err(Errno::ENOTCONN),
            FileKind::PipeReader { .. } | FileKind::SocketStream { .. } => {
                // The one place socket and pipe reads converge: resolve the
                // stream flowing towards this endpoint and read it.
                let stream = self.read_stream_of(&kind).ok_or(Errno::ENOTCONN)?;
                self.try_read_stream(stream, len)
            }
        }
    }

    fn try_read_stream(&mut self, id: StreamId, len: usize) -> Result<Option<Vec<u8>>, Errno> {
        let Some(stream) = self.streams_mut().get_mut(id) else {
            // All endpoints (including the buffer) are gone: read EOF.
            return Ok(Some(Vec::new()));
        };
        if !stream.is_empty() {
            let data = stream.pop(len);
            // Space was freed: writers blocked on this stream can continue.
            self.wake(WaitChannel::StreamWritable(id));
            return Ok(Some(data));
        }
        if stream.write_end_closed() {
            return Ok(Some(Vec::new()));
        }
        Ok(None)
    }

    pub(crate) fn sys_read(&mut self, pid: Pid, reply: ReplyTo, fd: Fd, len: usize) -> Outcome {
        // A descriptor backed by another shard's stream: ship the read to the
        // owner (the local table knows nothing about that buffer).
        if let Some(stream) = self.remote_stream_target(pid, fd, false) {
            let nonblocking = self.fd_nonblocking(pid, fd);
            return self.remote_read(pid, reply, stream, len, nonblocking);
        }
        match self.try_read_fd(pid, fd, len) {
            Ok(Some(data)) => Outcome::Complete(SysResult::Data(data)),
            Ok(None) => {
                if self.fd_nonblocking(pid, fd) {
                    self.stats.eagain_returns += 1;
                    return Outcome::Complete(SysResult::Err(Errno::EAGAIN));
                }
                let Some(channel) = self.read_wait_channel(pid, fd) else {
                    return Outcome::Complete(SysResult::Err(Errno::EIO));
                };
                self.stats.waiters_parked += 1;
                self.park_waiter_one(
                    channel,
                    Waiter {
                        pid,
                        reply: Some(reply),
                        kind: WaitKind::Read { fd, len },
                    },
                );
                Outcome::Blocked
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_pread(&mut self, pid: Pid, fd: Fd, len: usize, offset: u64) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::File { handle, flags } => {
                if !flags.read {
                    return Outcome::Complete(SysResult::Err(Errno::EBADF));
                }
                match handle.read_at(offset, len) {
                    Ok(data) => Outcome::Complete(SysResult::Data(data)),
                    Err(e) => Outcome::Complete(SysResult::Err(e)),
                }
            }
            FileKind::Directory { .. } => Outcome::Complete(SysResult::Err(Errno::EISDIR)),
            _ => Outcome::Complete(SysResult::Err(Errno::ESPIPE)),
        }
    }

    /// Materialises a [`ByteSource`]: inline bytes are used as-is, shared-heap
    /// references are copied directly out of the process's registered heap.
    pub(crate) fn resolve_bytes(&self, pid: Pid, data: &ByteSource) -> Result<Vec<u8>, Errno> {
        match data {
            ByteSource::Inline(bytes) => Ok(bytes.clone()),
            ByteSource::SharedHeap { offset, len } => {
                let task = self.task(pid)?;
                let heap = task.sync_heap.as_ref().ok_or(Errno::EFAULT)?;
                heap.sab
                    .read_bytes(*offset as usize, *len as usize)
                    .map_err(|_| Errno::EFAULT)
            }
        }
    }

    /// Attempts to write `data` to `fd`.  Returns the number of bytes accepted
    /// so far and whether the write is complete; pipe writes may need to wait
    /// for space.
    pub(crate) fn try_write_fd(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<(usize, bool), Errno> {
        let file = self.task(pid)?.files.get(fd)?;
        let kind = file.kind();
        match &kind {
            FileKind::File { handle, flags } => {
                if !flags.write {
                    return Err(Errno::EBADF);
                }
                if flags.append {
                    // Atomic seek-to-end + write under the node lock: two
                    // descriptors (dup'd or independently opened) appending
                    // interleaved can never clobber each other, and the
                    // stored offset is never trusted for the write position.
                    let end = handle.append(data)?;
                    file.set_offset(end);
                    Ok((data.len(), true))
                } else {
                    let offset = file.offset();
                    let written = handle.write_at(offset, data)?;
                    file.set_offset(offset + written as u64);
                    Ok((written, true))
                }
            }
            FileKind::Directory { .. } => Err(Errno::EISDIR),
            FileKind::Null | FileKind::Tty => Ok((data.len(), true)),
            FileKind::HostSink { stream } => {
                if let Some(sink) = self.host_sink(*stream) {
                    sink(data);
                }
                Ok((data.len(), true))
            }
            FileKind::PipeReader { .. } => Err(Errno::EBADF),
            FileKind::Socket { .. } | FileKind::SocketListener { .. } => Err(Errno::ENOTCONN),
            FileKind::PipeWriter { .. } | FileKind::SocketStream { .. } => {
                // The one place socket and pipe writes converge.
                let stream = self.write_stream_of(&kind).ok_or(Errno::ENOTCONN)?;
                self.try_write_stream(pid, stream, data)
            }
        }
    }

    fn try_write_stream(&mut self, pid: Pid, id: StreamId, data: &[u8]) -> Result<(usize, bool), Errno> {
        let read_closed = match self.streams().get(id) {
            Some(stream) => stream.read_end_closed(),
            None => return Err(Errno::EPIPE),
        };
        if read_closed {
            // Writing to a stream nobody will read raises SIGPIPE, as on
            // Unix — through the same delivery machinery as every other
            // signal, so handlers, sigprocmask and SA_RESTART all apply.
            let _ = self.send_signal(pid, Signal::SIGPIPE);
            return Err(Errno::EPIPE);
        }
        let stream = self.streams_mut().get_mut(id).ok_or(Errno::EPIPE)?;
        let written = stream.push(data);
        if written > 0 {
            // Data arrived: readers blocked on this stream can continue.
            self.wake(WaitChannel::StreamReadable(id));
        }
        Ok((written, written == data.len()))
    }

    pub(crate) fn sys_write(&mut self, pid: Pid, reply: ReplyTo, fd: Fd, data: ByteSource) -> Outcome {
        let bytes = match self.resolve_bytes(pid, &data) {
            Ok(bytes) => bytes,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        // Writes to a foreign stream go to its owner; EPIPE comes back with
        // a flag telling this shard to raise SIGPIPE first, preserving the
        // local signal-then-error ordering.
        if let Some(stream) = self.remote_stream_target(pid, fd, true) {
            let nonblocking = self.fd_nonblocking(pid, fd);
            return self.remote_write(pid, reply, stream, bytes, nonblocking);
        }
        let total = bytes.len();
        match self.try_write_fd(pid, fd, &bytes) {
            Ok((_, true)) => Outcome::Complete(SysResult::Int(total as i64)),
            Ok((written, false)) => {
                if self.fd_nonblocking(pid, fd) {
                    // A non-blocking write reports whatever it managed to
                    // push; EAGAIN only when not a single byte fit.
                    if written > 0 {
                        return Outcome::Complete(SysResult::Int(written as i64));
                    }
                    self.stats.eagain_returns += 1;
                    return Outcome::Complete(SysResult::Err(Errno::EAGAIN));
                }
                let Some(channel) = self.write_wait_channel(pid, fd) else {
                    return Outcome::Complete(SysResult::Err(Errno::EIO));
                };
                self.stats.waiters_parked += 1;
                self.park_waiter_one(
                    channel,
                    Waiter {
                        pid,
                        reply: Some(reply),
                        kind: WaitKind::Write {
                            fd,
                            data: bytes,
                            written,
                        },
                    },
                );
                Outcome::Blocked
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    /// Pumps up to `remaining` bytes of `in_fd`'s file into `out_fd`'s stream
    /// without the bytes ever entering guest memory: each iteration
    /// materialises one page-cache page by reference
    /// ([`FileHandle::map_page`](browsix_fs::FileHandle::map_page)) and pushes
    /// the covered slice straight into the kernel stream.  Advances `offset`
    /// and `remaining` in place; returns the bytes pushed this pass and
    /// whether the transfer is finished (`remaining` exhausted or end of
    /// file).  A partial pass with `done == false` means the stream filled.
    pub(crate) fn pump_sendfile(
        &mut self,
        pid: Pid,
        out_fd: Fd,
        in_fd: Fd,
        offset: &mut u64,
        remaining: &mut u64,
        advance_cursor: bool,
    ) -> Result<(u64, bool), Errno> {
        use crate::vm::PAGE_SIZE;
        let in_file = self.task(pid)?.files.get(in_fd)?;
        let (handle, in_flags) = match in_file.kind() {
            FileKind::File { handle, flags } => (handle, flags),
            FileKind::Directory { .. } => return Err(Errno::EISDIR),
            _ => return Err(Errno::EINVAL),
        };
        if !in_flags.read {
            return Err(Errno::EBADF);
        }
        let out_kind = self.task(pid)?.files.get(out_fd)?.kind();
        let Some(stream_id) = self.write_stream_of(&out_kind) else {
            return Err(Errno::EINVAL);
        };
        if self.stream_is_remote(stream_id) {
            // Zero-copy page pushes need the destination buffer in this
            // address space; callers fall back to a buffered read/write
            // loop, which the remote data path handles.
            return Err(Errno::EINVAL);
        }
        let mut pushed_total: u64 = 0;
        let mut size;
        loop {
            size = handle.metadata()?.size;
            if *remaining == 0 || *offset >= size {
                break;
            }
            let (space, read_closed) = match self.streams().get(stream_id) {
                Some(s) => (s.space(), s.read_end_closed()),
                None if pushed_total > 0 => break,
                None => return Err(Errno::EPIPE),
            };
            if read_closed {
                if pushed_total > 0 {
                    break;
                }
                let _ = self.send_signal(pid, Signal::SIGPIPE);
                return Err(Errno::EPIPE);
            }
            if space == 0 {
                break;
            }
            let page_index = *offset / PAGE_SIZE as u64;
            let page_off = (*offset % PAGE_SIZE as u64) as usize;
            let page = handle.map_page(page_index, PAGE_SIZE)?;
            let chunk = (PAGE_SIZE - page_off)
                .min(space)
                .min((*remaining).min(size - *offset) as usize);
            let pushed = match self.streams_mut().get_mut(stream_id) {
                Some(s) => s.push(&page[page_off..page_off + chunk]),
                None => break,
            };
            if pushed == 0 {
                break;
            }
            self.stats.sendfile_bytes += pushed as u64;
            self.stats.zero_copy_pages += 1;
            *offset += pushed as u64;
            *remaining -= pushed as u64;
            pushed_total += pushed as u64;
            if advance_cursor {
                in_file.set_offset(*offset);
            }
            // Waking readers inside the loop lets a blocked consumer drain
            // the stream between pages, so one sendfile pass can move more
            // than a streamful.
            self.wake(WaitChannel::StreamReadable(stream_id));
        }
        Ok((pushed_total, *remaining == 0 || *offset >= size))
    }

    pub(crate) fn sys_sendfile(
        &mut self,
        pid: Pid,
        reply: ReplyTo,
        out_fd: Fd,
        in_fd: Fd,
        offset: i64,
        len: u64,
    ) -> Outcome {
        // offset -1 means "use (and advance) the descriptor's cursor", like
        // passing NULL to Linux sendfile(2); an explicit offset leaves it
        // untouched.
        if offset < -1 {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        let advance_cursor = offset < 0;
        let mut pos = if advance_cursor {
            match self.task(pid).and_then(|t| t.files.get(in_fd)) {
                Ok(file) => file.offset(),
                Err(e) => return Outcome::Complete(SysResult::Err(e)),
            }
        } else {
            offset as u64
        };
        let mut remaining = len;
        match self.pump_sendfile(pid, out_fd, in_fd, &mut pos, &mut remaining, advance_cursor) {
            Ok((sent, true)) => Outcome::Complete(SysResult::Int(sent as i64)),
            Ok((sent, false)) => {
                if self.fd_nonblocking(pid, out_fd) {
                    if sent > 0 {
                        return Outcome::Complete(SysResult::Int(sent as i64));
                    }
                    self.stats.eagain_returns += 1;
                    return Outcome::Complete(SysResult::Err(Errno::EAGAIN));
                }
                let Some(channel) = self.write_wait_channel(pid, out_fd) else {
                    return Outcome::Complete(SysResult::Err(Errno::EIO));
                };
                self.stats.waiters_parked += 1;
                self.park_waiter_one(
                    channel,
                    Waiter {
                        pid,
                        reply: Some(reply),
                        kind: WaitKind::Sendfile {
                            out_fd,
                            in_fd,
                            offset: pos,
                            remaining,
                            sent,
                            advance_cursor,
                        },
                    },
                );
                Outcome::Blocked
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    /// Attempts one stream-to-stream move of up to `len` bytes.
    /// `Ok(Some(n))` moved `n` bytes (`0` = end of input); `Ok(None)` means
    /// "would block" — input empty with live writers, or output full.
    pub(crate) fn try_splice(&mut self, pid: Pid, fd_in: Fd, fd_out: Fd, len: u64) -> Result<Option<u64>, Errno> {
        let in_kind = self.task(pid)?.files.get(fd_in)?.kind();
        let Some(in_stream) = self.read_stream_of(&in_kind) else {
            return Err(Errno::EINVAL);
        };
        let out_kind = self.task(pid)?.files.get(fd_out)?.kind();
        let Some(out_stream) = self.write_stream_of(&out_kind) else {
            return Err(Errno::EINVAL);
        };
        if in_stream == out_stream {
            return Err(Errno::EINVAL);
        }
        if self.stream_is_remote(in_stream) || self.stream_is_remote(out_stream) {
            // Splice moves bytes between two local buffers; with a foreign
            // endpoint callers fall back to the buffered loop.
            return Err(Errno::EINVAL);
        }
        match self.streams().get(out_stream) {
            Some(s) if s.read_end_closed() => {
                let _ = self.send_signal(pid, Signal::SIGPIPE);
                return Err(Errno::EPIPE);
            }
            Some(_) => {}
            None => return Err(Errno::EPIPE),
        }
        let (buffered, eof) = match self.streams().get(in_stream) {
            Some(s) => (s.len(), s.write_end_closed()),
            // Input stream gone entirely: end of input.
            None => return Ok(Some(0)),
        };
        if buffered == 0 {
            return if eof { Ok(Some(0)) } else { Ok(None) };
        }
        let space = self
            .streams()
            .get(out_stream)
            .map(crate::streams::Stream::space)
            .unwrap_or(0);
        if space == 0 {
            return Ok(None);
        }
        let take = (len.min(buffered as u64) as usize).min(space);
        let data = match self.streams_mut().get_mut(in_stream) {
            Some(s) => s.pop(take),
            None => return Ok(Some(0)),
        };
        let moved = match self.streams_mut().get_mut(out_stream) {
            Some(s) => s.push(&data),
            None => return Err(Errno::EPIPE),
        };
        debug_assert_eq!(moved, data.len(), "splice sized its chunk to the output's free space");
        self.stats.sendfile_bytes += moved as u64;
        self.wake(WaitChannel::StreamWritable(in_stream));
        self.wake(WaitChannel::StreamReadable(out_stream));
        Ok(Some(moved as u64))
    }

    pub(crate) fn sys_splice(&mut self, pid: Pid, reply: ReplyTo, fd_in: Fd, fd_out: Fd, len: u64) -> Outcome {
        match self.try_splice(pid, fd_in, fd_out, len) {
            Ok(Some(moved)) => Outcome::Complete(SysResult::Int(moved as i64)),
            Ok(None) => {
                if self.fd_nonblocking(pid, fd_in) || self.fd_nonblocking(pid, fd_out) {
                    self.stats.eagain_returns += 1;
                    return Outcome::Complete(SysResult::Err(Errno::EAGAIN));
                }
                let channels = match (self.read_wait_channel(pid, fd_in), self.write_wait_channel(pid, fd_out)) {
                    (Some(a), Some(b)) => vec![a, b],
                    _ => return Outcome::Complete(SysResult::Err(Errno::EIO)),
                };
                self.stats.waiters_parked += 1;
                self.park_waiter(
                    channels,
                    Waiter {
                        pid,
                        reply: Some(reply),
                        kind: WaitKind::Splice { fd_in, fd_out, len },
                    },
                );
                Outcome::Blocked
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_pwrite(&mut self, pid: Pid, fd: Fd, data: ByteSource, offset: u64) -> Outcome {
        let bytes = match self.resolve_bytes(pid, &data) {
            Ok(bytes) => bytes,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::File { handle, flags } => {
                if !flags.write {
                    return Outcome::Complete(SysResult::Err(Errno::EBADF));
                }
                match handle.write_at(offset, &bytes) {
                    Ok(written) => Outcome::Complete(SysResult::Int(written as i64)),
                    Err(e) => Outcome::Complete(SysResult::Err(e)),
                }
            }
            _ => Outcome::Complete(SysResult::Err(Errno::ESPIPE)),
        }
    }

    pub(crate) fn sys_seek(&mut self, pid: Pid, fd: Fd, offset: i64, whence: u32) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let kind = file.kind();
        if !matches!(kind, FileKind::File { .. } | FileKind::Directory { .. }) {
            return Outcome::Complete(SysResult::Err(Errno::ESPIPE));
        }
        let base: i64 = match whence {
            0 => 0,
            1 => file.offset() as i64,
            // Only SEEK_END needs the current size: from the handle for
            // files, zero for open directories.
            2 => match &kind {
                FileKind::File { handle, .. } => match handle.metadata() {
                    Ok(meta) => meta.size as i64,
                    Err(e) => return Outcome::Complete(SysResult::Err(e)),
                },
                _ => 0,
            },
            _ => return Outcome::Complete(SysResult::Err(Errno::EINVAL)),
        };
        let target = base + offset;
        if target < 0 {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        file.set_offset(target as u64);
        Outcome::Complete(SysResult::Int(target))
    }

    pub(crate) fn sys_dup(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let task = match self.task_mut(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match task.files.get(fd) {
            Ok(file) => {
                let new_fd = task.files.insert(file, 0);
                self.recompute_endpoints();
                Outcome::Complete(SysResult::Int(new_fd as i64))
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_dup2(&mut self, pid: Pid, from: Fd, to: Fd) -> Outcome {
        if to < 0 {
            return Outcome::Complete(SysResult::Err(Errno::EBADF));
        }
        let task = match self.task_mut(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match task.files.get(from) {
            Ok(file) => {
                if from != to {
                    task.files.insert_at(to, file);
                }
                self.recompute_endpoints();
                Outcome::Complete(SysResult::Int(to as i64))
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_unlink(&mut self, pid: Pid, path: String) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().unlink(&path) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_truncate(&mut self, pid: Pid, path: String, size: u64) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().truncate(&path, size) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_rename(&mut self, pid: Pid, from: String, to: String) -> Outcome {
        let from = self.resolve_path(pid, &from);
        let to = self.resolve_path(pid, &to);
        Outcome::Complete(match self.fs().rename(&from, &to) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_readdir(&mut self, pid: Pid, path: String) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().read_dir(&path) {
            Ok(entries) => SysResult::Entries(entries),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_mkdir(&mut self, pid: Pid, path: String, _mode: u32) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().mkdir(&path) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_rmdir(&mut self, pid: Pid, path: String) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().rmdir(&path) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_stat(&mut self, pid: Pid, path: String) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().stat(&path) {
            Ok(meta) => SysResult::Stat(meta),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_fstat(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let meta = match file.kind() {
            FileKind::File { handle, .. } => match handle.metadata() {
                Ok(meta) => meta,
                Err(e) => return Outcome::Complete(SysResult::Err(e)),
            },
            FileKind::Directory { path } => match self.fs().stat(&path) {
                Ok(meta) => meta,
                Err(e) => return Outcome::Complete(SysResult::Err(e)),
            },
            // Pipes, sockets and sinks report a character-device-like stat.
            _ => Metadata {
                file_type: FileType::Regular,
                size: 0,
                mode: 0o600,
                mtime_ms: 0,
                atime_ms: 0,
            },
        };
        Outcome::Complete(SysResult::Stat(meta))
    }

    pub(crate) fn sys_fsync(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        Outcome::Complete(match file.kind() {
            FileKind::File { handle, .. } => match handle.fsync() {
                Ok(()) => SysResult::Ok,
                Err(e) => SysResult::Err(e),
            },
            // Directories, host sinks and the terminal have nothing buffered
            // kernel-side.
            FileKind::Directory { .. } | FileKind::HostSink { .. } | FileKind::Null | FileKind::Tty => SysResult::Ok,
            // fsync on pipes and sockets is EINVAL, as on Linux.
            _ => SysResult::Err(Errno::EINVAL),
        })
    }

    pub(crate) fn sys_access(&mut self, pid: Pid, path: String, _mode: u32) -> Outcome {
        // Browsix has no users: access reduces to an existence check, with the
        // browser sandbox standing in for permissions (§3.1 of the paper).
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().stat(&path) {
            Ok(_) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_utimes(&mut self, pid: Pid, path: String, atime_ms: u64, mtime_ms: u64) -> Outcome {
        let path = self.resolve_path(pid, &path);
        Outcome::Complete(match self.fs().set_times(&path, atime_ms, mtime_ms) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }
}
