//! Kernel sharding: ownership hashing, the cross-shard message protocol and
//! the router's global state.
//!
//! With `BROWSIX_SHARDS=N` (or `BootConfig::with_shards`) the kernel boots
//! N full event loops — each a `KernelState` on its own
//! thread with its own task table, streams, sockets, wait queues and
//! statistics — instead of one.  Guests keep speaking the exact same wire
//! format: a process's syscall batches and ring doorbells go straight to the
//! shard that owns it, because the worker's kernel channel *is* that shard's
//! event queue.
//!
//! # Ownership hashing (seed-deterministic)
//!
//! * **Tasks** — pids are allocated from per-shard pools so that
//!   `shard_of(pid) = pid % N`.  Shard `k` hands out pids congruent to `k`
//!   (mod N); pid 0 stays reserved for the kernel itself.  Placement is a
//!   deterministic round-robin over spawn order (forks stay on the parent's
//!   shard so the copied descriptor table stays local), so a failing
//!   schedule replays exactly from the same spawn sequence.
//! * **Streams and connections** — ids encode their owning shard in the low
//!   [`SHARD_ID_BITS`] bits: `stream_shard(id) = id & 0x3f`.  A shard only
//!   ever mutates stream buffers it owns; operations against a foreign
//!   stream travel as [`ShardMsg`]s.
//!
//! # The router
//!
//! `RouterState` is the only state shared between shards, and it is never
//! touched on the byte-moving data path: pid allocation and process-group
//! membership, the port table (which shard owns a listener), the `shm_open`
//! registry, host output sinks, the foreground process group and port-listen
//! subscribers.  Everything else is per-shard, and cross-shard effects are
//! explicit messages with completions routed back to the submitting shard —
//! no lock is held across shards while bytes move.
//!
//! # `ShardMsg` protocol
//!
//! Remote operations carry a `token` minted by the submitting shard; the
//! owner replies with [`ShardMsg::RemoteOpDone`] (or parks a waiter on its
//! own queues and replies when the stream becomes ready).  Tokens are only
//! interpreted by the shard that minted them, so completion delivery is
//! exactly-once by construction: a completed or cancelled token leaves the
//! submitter's pending-op table and any late reply for it is dropped.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::Sender;

use browsix_fs::Errno;

use crate::events::OutputSink;
use crate::exec::ProgramLauncher;
use crate::fd::OpenFile;
use crate::signals::Signal;
use crate::socket::{Connection, ConnectionId};
use crate::streams::StreamId;
use crate::syscall::SysResult;
use crate::task::Pid;
use crate::vm::ShmObject;

/// Maximum shard count (the id encodings below reserve 6 bits).
pub const MAX_SHARDS: usize = 64;

/// Low bits of a stream/connection id that name the owning shard.
pub const SHARD_ID_BITS: u64 = 6;

/// Stride between consecutive ids handed out by one shard's tables.
pub const SHARD_ID_STRIDE: u64 = 1 << SHARD_ID_BITS;

/// The shard that owns a task: `pid % nshards` (stable and documented, so a
/// failing schedule reproduces from its spawn sequence alone).
pub fn shard_of(pid: Pid, nshards: usize) -> usize {
    (pid as usize) % nshards.max(1)
}

/// The shard that owns a stream (encoded in the id's low bits).
pub fn stream_shard(id: StreamId) -> usize {
    (id & (SHARD_ID_STRIDE - 1)) as usize
}

/// The shard that owns a socket connection (same encoding as streams).
pub fn connection_shard(id: ConnectionId) -> usize {
    (id & (SHARD_ID_STRIDE - 1)) as usize
}

/// Resolves the shard count: explicit boot value, else the `BROWSIX_SHARDS`
/// environment variable, else 1; clamped to `1..=MAX_SHARDS`.
pub fn resolve_shards(configured: usize) -> usize {
    let n = if configured > 0 {
        configured
    } else {
        std::env::var("BROWSIX_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
    };
    n.clamp(1, MAX_SHARDS)
}

/// A readiness snapshot of a remote stream, cached by the polling shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoteRevents {
    /// A read would make progress (data buffered).
    pub readable: bool,
    /// All write ends are closed (EOF once drained).
    pub eof: bool,
    /// A write would accept bytes right now.
    pub writable: bool,
    /// All read ends are closed (writes raise EPIPE).
    pub epipe: bool,
    /// The stream no longer exists on its owner.
    pub gone: bool,
}

/// A message between shards.  Every cross-shard effect in the kernel is one
/// of these; they are delivered through the owning shard's ordinary
/// [`KernelEvent`](crate::events::KernelEvent) queue, so they interleave
/// with that shard's syscalls in a single total order.
pub enum ShardMsg {
    /// Create a task on the receiving shard (the spawn side of round-robin
    /// placement).  The executable is already resolved; `file_bytes` (if
    /// any) become a blob URL in the owner's registry.
    SpawnTask {
        /// Completion token, minted by the origin shard.
        token: u64,
        /// The shard that initiated the spawn (receives [`ShardMsg::SpawnAck`]).
        origin: usize,
        /// The pre-allocated pid (already registered with the router).
        pid: Pid,
        /// Parent pid (lives on `origin`).
        ppid: Pid,
        /// Process group the child joins.
        pgid: Pid,
        /// Task name (basename of the path).
        name: String,
        /// Executable path.
        path: String,
        /// Working directory.
        cwd: String,
        /// Argument vector (prepend-args already applied).
        args: Vec<String>,
        /// Environment.
        env: Vec<(String, String)>,
        /// The resolved launcher.
        launcher: Arc<dyn ProgramLauncher>,
        /// Script bytes for interpreted executables.
        file_bytes: Option<Vec<u8>>,
        /// stdin/stdout/stderr open files (shared with the parent).
        stdio: [Arc<OpenFile>; 3],
    },
    /// The spawned task exists; the origin drops its stdio pins.
    SpawnAck {
        /// Token from the corresponding [`ShardMsg::SpawnTask`].
        token: u64,
    },
    /// A child on this shard exited and its parent lives on the receiving
    /// shard: the zombie's wait status ships to the parent (the child's
    /// shard has already dropped the task).
    ChildExited {
        /// The exited child.
        pid: Pid,
        /// The remote parent.
        ppid: Pid,
        /// Encoded wait status.
        status: i32,
    },
    /// A child stopped (job control) and its parent is remote.
    ChildStopped {
        /// The stopped child.
        pid: Pid,
        /// The remote parent.
        ppid: Pid,
        /// The stop signal.
        signal: Signal,
    },
    /// A stopped child resumed; the parent's stop record is withdrawn.
    ChildContinued {
        /// The resumed child.
        pid: Pid,
        /// The remote parent.
        ppid: Pid,
    },
    /// The parent of `child` exited; the receiving shard reparents it to
    /// the kernel (ppid 0).
    Reparent {
        /// The orphaned child (owned by the receiving shard).
        child: Pid,
    },
    /// Deliver a signal to a task owned by the receiving shard.
    SignalPid {
        /// The target task.
        pid: Pid,
        /// The signal.
        signal: Signal,
    },
    /// Apply a `setpgid` to a task owned by the receiving shard (the router
    /// registry was already updated by the caller).
    SetPgid {
        /// The target task.
        pid: Pid,
        /// Its new process group.
        pgid: Pid,
    },
    /// Read from a stream owned by the receiving shard.
    RemoteRead {
        /// Completion token.
        token: u64,
        /// The submitting shard ([`ShardMsg::RemoteOpDone`] goes back there).
        from_shard: usize,
        /// The reading process (lives on `from_shard`).
        pid: Pid,
        /// The stream to read.
        stream: StreamId,
        /// Maximum bytes.
        len: usize,
        /// `O_NONBLOCK`: reply `EAGAIN` instead of parking.
        nonblocking: bool,
    },
    /// Write to a stream owned by the receiving shard.
    RemoteWrite {
        /// Completion token.
        token: u64,
        /// The submitting shard.
        from_shard: usize,
        /// The writing process.
        pid: Pid,
        /// The stream to write.
        stream: StreamId,
        /// The bytes.
        data: Vec<u8>,
        /// `O_NONBLOCK`: reply `EAGAIN`/partial instead of parking.
        nonblocking: bool,
    },
    /// A remote read/write/connect finished; the submitter completes the
    /// original syscall (and raises SIGPIPE locally if asked).
    RemoteOpDone {
        /// Token from the original request.
        token: u64,
        /// The syscall result.
        result: SysResult,
        /// The op hit EPIPE while blocked: the submitter sends itself
        /// SIGPIPE before completing, preserving local signal ordering.
        raise_sigpipe: bool,
    },
    /// The submitting process died or took EINTR: the owner drops any
    /// parked waiter for this token without replying.
    CancelOp {
        /// Token of the op to abandon.
        token: u64,
    },
    /// Connect to a port whose listener is owned by the receiving shard.
    Connect {
        /// Completion token.
        token: u64,
        /// The submitting shard.
        from_shard: usize,
        /// The target port.
        port: u16,
    },
    /// Reply to [`ShardMsg::Connect`]: the established connection (both
    /// streams live on the listener's shard) or the refusal.
    ConnectReply {
        /// Token from the original request.
        token: u64,
        /// The connection id and its stream pair, or the errno.
        result: Result<(ConnectionId, Connection), Errno>,
    },
    /// The connecting shard has recorded its client endpoints (and sent its
    /// endpoint snapshot): the owner drops the provisional client pin it
    /// held so the connection would not look half-closed in the interim.
    ConnectAck {
        /// The connection whose pin to release.
        connection: ConnectionId,
    },
    /// Ask the owner of `stream` for a readiness snapshot (remote `poll`).
    PollQuery {
        /// The stream being polled.
        stream: StreamId,
        /// Where to send the [`ShardMsg::PollAnswer`].
        from_shard: usize,
    },
    /// Readiness snapshot of an owned stream, for a remote poller's cache.
    PollAnswer {
        /// The stream.
        stream: StreamId,
        /// Data is buffered.
        readable: bool,
        /// All write ends closed.
        eof: bool,
        /// Space is available.
        writable: bool,
        /// All read ends closed.
        epipe: bool,
        /// The stream no longer exists.
        gone: bool,
    },
    /// The sending shard's descriptor tables reference these streams owned
    /// by the receiving shard: `(stream, readers, writers)` contributions to
    /// the owner's endpoint reference counts.
    RemoteEndpoints {
        /// The contributing shard (snapshot replaces its previous one).
        from_shard: usize,
        /// Per-stream endpoint contributions.
        snapshot: Vec<(StreamId, u32, u32)>,
    },
}

impl fmt::Debug for ShardMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMsg::SpawnTask {
                token, pid, ppid, name, ..
            } => {
                write!(f, "SpawnTask(token={token}, pid={pid}, ppid={ppid}, {name:?})")
            }
            ShardMsg::SpawnAck { token } => write!(f, "SpawnAck({token})"),
            ShardMsg::ChildExited { pid, ppid, status } => {
                write!(f, "ChildExited(pid={pid}, ppid={ppid}, status={status})")
            }
            ShardMsg::ChildStopped { pid, ppid, signal } => {
                write!(f, "ChildStopped(pid={pid}, ppid={ppid}, {signal:?})")
            }
            ShardMsg::ChildContinued { pid, ppid } => write!(f, "ChildContinued(pid={pid}, ppid={ppid})"),
            ShardMsg::Reparent { child } => write!(f, "Reparent({child})"),
            ShardMsg::SignalPid { pid, signal } => write!(f, "SignalPid(pid={pid}, {signal:?})"),
            ShardMsg::SetPgid { pid, pgid } => write!(f, "SetPgid(pid={pid}, pgid={pgid})"),
            ShardMsg::RemoteRead {
                token,
                pid,
                stream,
                len,
                ..
            } => {
                write!(f, "RemoteRead(token={token}, pid={pid}, stream={stream}, len={len})")
            }
            ShardMsg::RemoteWrite {
                token,
                pid,
                stream,
                data,
                ..
            } => {
                write!(
                    f,
                    "RemoteWrite(token={token}, pid={pid}, stream={stream}, {} bytes)",
                    data.len()
                )
            }
            ShardMsg::RemoteOpDone {
                token,
                result,
                raise_sigpipe,
            } => write!(f, "RemoteOpDone(token={token}, {result:?}, sigpipe={raise_sigpipe})"),
            ShardMsg::CancelOp { token } => write!(f, "CancelOp({token})"),
            ShardMsg::Connect { token, port, .. } => write!(f, "Connect(token={token}, port={port})"),
            ShardMsg::ConnectReply { token, result } => write!(f, "ConnectReply(token={token}, {result:?})"),
            ShardMsg::ConnectAck { connection } => write!(f, "ConnectAck({connection})"),
            ShardMsg::PollQuery { stream, from_shard } => {
                write!(f, "PollQuery(stream={stream}, from={from_shard})")
            }
            ShardMsg::PollAnswer { stream, .. } => write!(f, "PollAnswer(stream={stream})"),
            ShardMsg::RemoteEndpoints { from_shard, snapshot } => {
                write!(f, "RemoteEndpoints(from={from_shard}, {} streams)", snapshot.len())
            }
        }
    }
}

/// An entry in the router's process registry.
#[derive(Debug, Clone, Copy)]
struct ProcessEntry {
    shard: usize,
    pgid: Pid,
}

/// Port-table state: which shard owns each listening port, plus the global
/// ephemeral-port counter.
#[derive(Debug, Default)]
struct PortTable {
    claims: HashMap<u16, usize>,
    next_ephemeral: u16,
}

/// The only state shared between shards.  Every member is a small registry
/// behind its own lock (or an atomic counter) and none is touched while
/// bytes move between a stream and a process — the data path is per-shard.
pub(crate) struct RouterState {
    nshards: usize,
    /// Per-shard pid pools: pool `k` hands out `k, k+N, k+2N, ...` (pool 0
    /// starts at `N` because pid 0 is reserved).  With one shard this is the
    /// classic `1, 2, 3, ...` sequence.
    pid_pools: Vec<AtomicU32>,
    /// Round-robin spawn placement counter (deterministic in spawn order).
    next_spawn: AtomicUsize,
    /// pid → owning shard + process group, registered at spawn, updated by
    /// `setpgid`, removed when the task finishes (so a finished pid reports
    /// `ESRCH` everywhere, matching the single-shard zombie/missing rules).
    processes: Mutex<HashMap<Pid, ProcessEntry>>,
    /// Listening ports → owning shard, claimed by `listen`.
    ports: Mutex<PortTable>,
    /// Named POSIX shared-memory objects (`shm_open` registry).
    shm: Mutex<HashMap<String, Arc<ShmObject>>>,
    /// Host output sinks (stdout/stderr of host-spawned processes).
    host_sinks: Mutex<HashMap<u64, OutputSink>>,
    next_sink: AtomicU32,
    /// The foreground process group of the (single) controlling terminal.
    foreground_pgid: Mutex<Option<Pid>>,
    /// Host subscribers notified when any shard starts listening on a port.
    port_subscribers: Mutex<Vec<Sender<u16>>>,
}

impl RouterState {
    pub(crate) fn new(nshards: usize) -> RouterState {
        let nshards = nshards.clamp(1, MAX_SHARDS);
        let pid_pools = (0..nshards)
            .map(|k| AtomicU32::new(if k == 0 { nshards as u32 } else { k as u32 }))
            .collect();
        RouterState {
            nshards,
            pid_pools,
            next_spawn: AtomicUsize::new(0),
            processes: Mutex::new(HashMap::new()),
            ports: Mutex::new(PortTable {
                claims: HashMap::new(),
                next_ephemeral: 49152,
            }),
            shm: Mutex::new(HashMap::new()),
            host_sinks: Mutex::new(HashMap::new()),
            next_sink: AtomicU32::new(1),
            foreground_pgid: Mutex::new(None),
            port_subscribers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn nshards(&self) -> usize {
        self.nshards
    }

    /// Allocates the next pid owned by `shard` (pids are never reused).
    pub(crate) fn allocate_pid(&self, shard: usize) -> Pid {
        self.pid_pools[shard].fetch_add(self.nshards as u32, Ordering::Relaxed)
    }

    /// Picks the shard for the next non-fork spawn (deterministic
    /// round-robin over spawn order).
    pub(crate) fn place_spawn(&self) -> usize {
        self.next_spawn.fetch_add(1, Ordering::Relaxed) % self.nshards
    }

    // ---- process registry ------------------------------------------------

    pub(crate) fn register_process(&self, pid: Pid, shard: usize, pgid: Pid) {
        self.processes.lock().unwrap().insert(pid, ProcessEntry { shard, pgid });
    }

    pub(crate) fn remove_process(&self, pid: Pid) {
        self.processes.lock().unwrap().remove(&pid);
    }

    /// The shard owning a live process, if it is registered.
    pub(crate) fn process_shard(&self, pid: Pid) -> Option<usize> {
        self.processes.lock().unwrap().get(&pid).map(|e| e.shard)
    }

    /// The process group of a live process.
    pub(crate) fn process_pgid(&self, pid: Pid) -> Option<Pid> {
        self.processes.lock().unwrap().get(&pid).map(|e| e.pgid)
    }

    pub(crate) fn set_pgid(&self, pid: Pid, pgid: Pid) {
        if let Some(entry) = self.processes.lock().unwrap().get_mut(&pid) {
            entry.pgid = pgid;
        }
    }

    /// Live members of a process group, `(pid, shard)` sorted by pid so
    /// group signals hit members in a deterministic order.
    pub(crate) fn group_members(&self, pgid: Pid) -> Vec<(Pid, usize)> {
        let mut members: Vec<(Pid, usize)> = self
            .processes
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, e)| e.pgid == pgid)
            .map(|(&pid, e)| (pid, e.shard))
            .collect();
        members.sort_unstable();
        members
    }

    // ---- port table ------------------------------------------------------

    /// Claims `port` for `shard` (the cross-shard half of `listen`).
    ///
    /// # Errors
    ///
    /// [`Errno::EADDRINUSE`] if any shard already owns the port.
    pub(crate) fn claim_port(&self, port: u16, shard: usize) -> Result<(), Errno> {
        let mut ports = self.ports.lock().unwrap();
        if ports.claims.contains_key(&port) {
            return Err(Errno::EADDRINUSE);
        }
        ports.claims.insert(port, shard);
        Ok(())
    }

    /// Releases `port` if `shard` owns it (listener closed or owner exited).
    pub(crate) fn release_port(&self, port: u16, shard: usize) {
        let mut ports = self.ports.lock().unwrap();
        if ports.claims.get(&port) == Some(&shard) {
            ports.claims.remove(&port);
        }
    }

    /// The shard owning the listener on `port`.
    pub(crate) fn port_owner(&self, port: u16) -> Option<usize> {
        self.ports.lock().unwrap().claims.get(&port).copied()
    }

    /// Whether any shard is listening on `port`.
    pub(crate) fn port_claimed(&self, port: u16) -> bool {
        self.ports.lock().unwrap().claims.contains_key(&port)
    }

    /// Every claimed port, sorted (the host's `listening_ports` view).
    pub(crate) fn claimed_ports(&self) -> Vec<u16> {
        let mut ports: Vec<u16> = self.ports.lock().unwrap().claims.keys().copied().collect();
        ports.sort_unstable();
        ports
    }

    /// Picks an unused ephemeral port (for `bind` with port 0); the counter
    /// is fleet-global so concurrent shards get distinct ports.
    pub(crate) fn allocate_ephemeral_port(&self) -> u16 {
        let mut ports = self.ports.lock().unwrap();
        loop {
            let port = ports.next_ephemeral;
            ports.next_ephemeral = ports.next_ephemeral.wrapping_add(1).max(49152);
            if !ports.claims.contains_key(&port) {
                return port;
            }
        }
    }

    // ---- shm registry ----------------------------------------------------

    pub(crate) fn shm_get(&self, name: &str) -> Option<Arc<ShmObject>> {
        self.shm.lock().unwrap().get(name).cloned()
    }

    pub(crate) fn shm_insert(&self, name: &str, object: Arc<ShmObject>) {
        self.shm.lock().unwrap().insert(name.to_owned(), object);
    }

    pub(crate) fn shm_remove(&self, name: &str) -> bool {
        self.shm.lock().unwrap().remove(name).is_some()
    }

    /// Finds the registered object identical (by allocation) to `object` —
    /// the reverse lookup `mmap(MAP_SHARED)` uses on an shm descriptor.
    pub(crate) fn shm_find(&self, predicate: impl Fn(&Arc<ShmObject>) -> bool) -> Option<Arc<ShmObject>> {
        self.shm.lock().unwrap().values().find(|o| predicate(o)).cloned()
    }

    // ---- host sinks ------------------------------------------------------

    pub(crate) fn new_sink(&self, sink: OutputSink) -> u64 {
        let id = self.next_sink.fetch_add(1, Ordering::Relaxed) as u64;
        self.host_sinks.lock().unwrap().insert(id, sink);
        id
    }

    pub(crate) fn sink(&self, id: u64) -> Option<OutputSink> {
        self.host_sinks.lock().unwrap().get(&id).cloned()
    }

    // ---- terminal foreground group ---------------------------------------

    pub(crate) fn foreground_pgid(&self) -> Option<Pid> {
        *self.foreground_pgid.lock().unwrap()
    }

    pub(crate) fn set_foreground_pgid(&self, pgid: Option<Pid>) {
        *self.foreground_pgid.lock().unwrap() = pgid;
    }

    // ---- port-listen subscribers -----------------------------------------

    pub(crate) fn subscribe_port_listen(&self, listener: Sender<u16>) {
        self.port_subscribers.lock().unwrap().push(listener);
    }

    pub(crate) fn notify_port_listen(&self, port: u16) {
        self.port_subscribers
            .lock()
            .unwrap()
            .retain(|sub| sub.send(port).is_ok());
    }
}

impl fmt::Debug for RouterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouterState")
            .field("nshards", &self.nshards)
            .field("processes", &self.processes.lock().unwrap().len())
            .field("ports", &self.ports.lock().unwrap().claims.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_pools_are_disjoint_and_deterministic() {
        let router = RouterState::new(4);
        // Shard k hands out pids ≡ k (mod 4); pool 0 skips reserved pid 0.
        assert_eq!(router.allocate_pid(0), 4);
        assert_eq!(router.allocate_pid(0), 8);
        assert_eq!(router.allocate_pid(1), 1);
        assert_eq!(router.allocate_pid(1), 5);
        assert_eq!(router.allocate_pid(3), 3);
        assert_eq!(shard_of(4, 4), 0);
        assert_eq!(shard_of(5, 4), 1);
        assert_eq!(shard_of(3, 4), 3);
    }

    #[test]
    fn single_shard_pids_match_the_classic_sequence() {
        let router = RouterState::new(1);
        assert_eq!(router.allocate_pid(0), 1);
        assert_eq!(router.allocate_pid(0), 2);
        assert_eq!(router.allocate_pid(0), 3);
    }

    #[test]
    fn spawn_placement_is_round_robin() {
        let router = RouterState::new(3);
        assert_eq!(router.place_spawn(), 0);
        assert_eq!(router.place_spawn(), 1);
        assert_eq!(router.place_spawn(), 2);
        assert_eq!(router.place_spawn(), 0);
    }

    #[test]
    fn id_encoding_round_trips_the_shard() {
        assert_eq!(stream_shard(SHARD_ID_STRIDE * 7 + 3), 3);
        assert_eq!(stream_shard(0), 0);
        assert_eq!(connection_shard(SHARD_ID_STRIDE + 63), 63);
    }

    #[test]
    fn port_claims_are_exclusive_and_owner_released() {
        let router = RouterState::new(2);
        router.claim_port(80, 1).unwrap();
        assert_eq!(router.claim_port(80, 0), Err(Errno::EADDRINUSE));
        assert_eq!(router.port_owner(80), Some(1));
        router.release_port(80, 0); // not the owner: no-op
        assert!(router.port_claimed(80));
        router.release_port(80, 1);
        assert!(!router.port_claimed(80));
        let p = router.allocate_ephemeral_port();
        assert!(p >= 49152);
        assert_ne!(router.allocate_ephemeral_port(), p);
    }

    #[test]
    fn process_registry_tracks_groups() {
        let router = RouterState::new(2);
        router.register_process(1, 1, 1);
        router.register_process(2, 0, 1);
        router.register_process(3, 1, 3);
        assert_eq!(router.process_shard(2), Some(0));
        assert_eq!(router.group_members(1), vec![(1, 1), (2, 0)]);
        router.set_pgid(3, 1);
        assert_eq!(router.group_members(1), vec![(1, 1), (2, 0), (3, 1)]);
        router.remove_process(2);
        assert_eq!(router.group_members(1), vec![(1, 1), (3, 1)]);
        assert_eq!(router.process_shard(2), None);
    }

    #[test]
    fn resolve_shards_clamps() {
        assert_eq!(resolve_shards(4), 4);
        assert_eq!(resolve_shards(1000), MAX_SHARDS);
    }
}
