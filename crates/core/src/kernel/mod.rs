//! The kernel proper: state, event loop, process lifecycle and system-call
//! dispatch.
//!
//! The kernel runs on its own thread (the analogue of the main browser
//! thread) and owns every piece of shared state: the task table, the mounted
//! file system, streams (pipes and socket connections), sockets and the
//! wait queues of blocked system calls.  Everything else in the crate
//! funnels into [`KernelState::run`].

mod dispatch_fs;
mod dispatch_proc;
mod dispatch_sock;
mod dispatch_vm;
mod poll;
pub mod waitq;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use browsix_browser::{BlobRegistry, Message, PlatformConfig, Worker, WorkerScope};
use browsix_fs::{Errno, FileSystem as _, MountedFs};

use crate::events::{HostRequest, KernelEvent, OutputSink};
use crate::exec::{resolve_executable, ExecutableRegistry, ForkImage, LaunchContext, ProgramLauncher};
use crate::fd::{Fd, FileKind, OpenFile};
use crate::ring::{Ring, RingGeometry};
use crate::signals::{SigAction, Signal, SignalDisposition};
use crate::socket::SocketTable;
use crate::stats::KernelStats;
use crate::streams::StreamTable;
use crate::syscall::{encode_wait_status, Completion, CompletionBatch, SysResult, Syscall, Transport};
use crate::task::{InflightBatch, Pid, SyncHeap, Task, TaskState};
use crate::wire::Reader;

pub(crate) use waitq::{HttpClientState, WaitKind, Waiter};
pub use waitq::{WaitChannel, WaitTable, WaiterId};

/// Where a system call's result belongs.
///
/// Batch entries complete into the task's [`InflightBatch`] (the transport
/// convention and, for the asynchronous convention, the reply sequence
/// number live there, so both framed conventions share one completion
/// path).  Ring entries complete individually: each one becomes a
/// completion-queue entry tagged with the submitter's `user_data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyTo {
    /// The slot of the entry within the submission batch it arrived in.
    Batch {
        /// Index of the entry within its submission batch.
        index: u32,
    },
    /// An entry submitted through the task's persistent ring.
    Ring {
        /// The submitter's cookie, echoed on the completion entry.
        user_data: u32,
    },
}

/// The outcome of dispatching a system call.
pub(crate) enum Outcome {
    /// The call finished; send this result.
    Complete(SysResult),
    /// The call blocked; a [`Waiter`] has been parked on its wait queue(s).
    Blocked,
    /// The call finished but no reply should be sent (`exit`).
    NoReply,
}

/// Configuration captured at boot time and owned by the kernel thread.
pub(crate) struct KernelConfig {
    pub platform: PlatformConfig,
    pub fs: Arc<MountedFs>,
    pub registry: ExecutableRegistry,
    pub default_env: Vec<(String, String)>,
}

/// All kernel state.  Owned exclusively by the kernel thread.
pub(crate) struct KernelState {
    config: PlatformConfig,
    fs: Arc<MountedFs>,
    registry: ExecutableRegistry,
    blobs: BlobRegistry,
    default_env: Vec<(String, String)>,

    events_tx: Sender<KernelEvent>,
    tasks: HashMap<Pid, Task>,
    next_pid: Pid,
    streams: StreamTable,
    sockets: SocketTable,
    /// Blocked system calls (and kernel HTTP clients), parked on the wait
    /// queues of exactly the resources they wait for.
    waiters: WaitTable<Waiter>,
    /// Channels whose wakeup is queued while another wake is draining.
    wake_queue: VecDeque<WaitChannel>,
    /// Re-entrancy guard for [`KernelState::wake`].
    waking: bool,
    /// `(deadline, waiter)` pairs for parked `poll`s with timeouts.
    poll_deadlines: Vec<(Instant, WaiterId)>,
    http_clients: Vec<HttpClientState>,
    /// The foreground process group of the (single) controlling terminal.
    /// `SIGINT`/`SIGTSTP` from the terminal go to this group, and reads from
    /// the terminal by any *other* group raise `SIGTTIN`.
    foreground_pgid: Option<Pid>,

    /// Named POSIX shared-memory objects (`shm_open` registry).
    shm: HashMap<String, Arc<crate::vm::ShmObject>>,

    host_sinks: HashMap<u64, OutputSink>,
    next_sink: u64,
    exit_watchers: HashMap<Pid, Vec<Sender<i32>>>,
    exit_records: HashMap<Pid, i32>,
    port_subscribers: Vec<Sender<u16>>,

    stats: KernelStats,
}

impl KernelState {
    pub(crate) fn new(config: KernelConfig, events_tx: Sender<KernelEvent>) -> KernelState {
        KernelState {
            config: config.platform,
            fs: config.fs,
            registry: config.registry,
            blobs: BlobRegistry::new(),
            default_env: config.default_env,
            events_tx,
            tasks: HashMap::new(),
            next_pid: 1,
            streams: StreamTable::new(),
            sockets: SocketTable::new(),
            waiters: WaitTable::new(),
            wake_queue: VecDeque::new(),
            waking: false,
            poll_deadlines: Vec::new(),
            http_clients: Vec::new(),
            foreground_pgid: None,
            shm: HashMap::new(),
            host_sinks: HashMap::new(),
            next_sink: 1,
            exit_watchers: HashMap::new(),
            exit_records: HashMap::new(),
            port_subscribers: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// The kernel's main loop: process events until shutdown.
    ///
    /// Every state change wakes exactly the wait queues it affects as part
    /// of handling the event, so the loop itself does no retry work; the
    /// only timer-driven duty left is expiring `poll` deadlines, which bound
    /// the sleep.
    pub(crate) fn run(mut self, events: Receiver<KernelEvent>) {
        loop {
            let timeout = self
                .next_poll_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            match events.recv_timeout(timeout) {
                Ok(KernelEvent::Shutdown) => break,
                Ok(event) => self.handle_event(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Backstop drain of every persistent ring: submissions normally
            // arrive via a doorbell event, but entries published while the
            // kernel was busy (doorbell suppressed by a clear NEED_WAKEUP
            // flag) are picked up here before the loop sleeps again.
            self.drain_rings();
            self.expire_poll_deadlines();
            // With the `scavenger` feature, prove the wait queues lost no
            // wakeup: retrying every parked waiter must complete none.
            #[cfg(feature = "scavenger")]
            self.scavenge();
            #[cfg(feature = "scavenger")]
            self.scavenge_rings();
        }
        // Terminate every remaining worker so their threads exit.
        for task in self.tasks.values_mut() {
            if let Some(worker) = task.worker.take() {
                worker.terminate();
            }
        }
    }

    fn handle_event(&mut self, event: KernelEvent) {
        match event {
            KernelEvent::Syscall { pid, transport } => self.handle_syscall(pid, transport),
            KernelEvent::RegisterSyncHeap {
                pid,
                sab,
                resp_offset,
                wake_offset,
            } => {
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.sync_heap = Some(SyncHeap {
                        sab,
                        resp_offset,
                        wake_offset,
                    });
                }
            }
            KernelEvent::Doorbell { pid } => {
                self.stats.doorbells += 1;
                self.drain_ring(pid);
            }
            KernelEvent::Host(request) => self.handle_host_request(request),
            KernelEvent::Shutdown => {}
        }
    }

    // ---- syscall rings -------------------------------------------------------

    /// Registers a persistent ring pair for `pid`, validating the geometry
    /// against the shared heap the task registered earlier.
    fn sys_ring_setup(&mut self, pid: Pid, geo: RingGeometry) -> Outcome {
        let Some(task) = self.tasks.get_mut(&pid) else {
            return Outcome::Complete(SysResult::Err(Errno::ESRCH));
        };
        let Some(heap) = task.sync_heap.as_ref() else {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        };
        if !geo.validate(heap.sab.len()) {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        task.ring = Some(Ring::new(heap.sab.clone(), geo));
        Outcome::Complete(SysResult::Ok)
    }

    /// Drains every live task's submission queue (the per-iteration backstop).
    fn drain_rings(&mut self) {
        let pids: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.is_alive() && t.ring.is_some())
            .map(|t| t.pid)
            .collect();
        for pid in pids {
            self.drain_ring(pid);
        }
    }

    /// Drains one task's submission queue dry, dispatching each entry and
    /// posting its completion (or parking a waiter) as it goes, then parks
    /// the queue by setting `NEED_WAKEUP`.
    ///
    /// The park re-checks for entries that raced in after the flag was set:
    /// their submitter saw the flag still clear and suppressed its doorbell,
    /// so they must be consumed by this pass — this loop is what guarantees
    /// a non-empty queue never goes undrained.
    fn drain_ring(&mut self, pid: Pid) {
        let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
            return;
        };
        self.flush_pending_cqes(pid, &ring);
        loop {
            while let Some((user_data, payload)) = ring.pop_sqe() {
                self.stats.sq_polled += 1;
                if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                    return;
                }
                let mut r = Reader::new(&payload);
                let Some(call) = Syscall::decode_from(&mut r) else {
                    self.post_ring_completion(pid, user_data, SysResult::Err(Errno::EINVAL));
                    continue;
                };
                self.stats.record_syscall(call.name(), call.class(), true);
                let reply = ReplyTo::Ring { user_data };
                match self.dispatch(pid, reply, call) {
                    Outcome::Complete(result) => self.post_ring_completion(pid, user_data, result),
                    Outcome::Blocked => {}
                    // `exit` tears the task down; nothing further to drain.
                    Outcome::NoReply => return,
                }
            }
            ring.set_need_wakeup();
            if ring.sq_is_empty() {
                break;
            }
            ring.clear_need_wakeup();
        }
    }

    /// Scavenger-mode enforcement that a non-empty submission queue never
    /// goes undrained: re-drain every ring until it is observed empty.
    ///
    /// An entry visible here either arrived after this iteration's backstop
    /// drain (its doorbell may still be in flight — consuming it early is
    /// harmless) or would have been lost; the loop guarantees neither
    /// survives to the next sleep.  No flag/emptiness assertion is made
    /// against shared state: submitters publish entries and consult the
    /// doorbell flag in two separate steps, so a transient
    /// "non-empty with `NEED_WAKEUP` set" is legal mid-publish.  The strict
    /// single-threaded invariant (a drained queue is empty with the flag
    /// set) is asserted by the deterministic ring model property test.
    #[cfg(feature = "scavenger")]
    fn scavenge_rings(&mut self) {
        let pids: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.is_alive() && t.ring.is_some())
            .map(|t| t.pid)
            .collect();
        for pid in pids {
            loop {
                let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
                    break;
                };
                if ring.sq_is_empty() {
                    break;
                }
                self.drain_ring(pid);
                if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                    break;
                }
            }
        }
    }

    /// Posts one ring completion, spilling to the task's overflow queue when
    /// the completion queue is full or no registered buffer is free.
    fn post_ring_completion(&mut self, pid: Pid, user_data: u32, result: SysResult) {
        let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
            return;
        };
        // Preserve completion order across overflow: new completions queue
        // behind any that are still waiting for a slot or buffer.
        let had_pending = self
            .tasks
            .get(&pid)
            .map(|t| !t.pending_cqes.is_empty())
            .unwrap_or(false);
        if had_pending {
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.pending_cqes.push_back((user_data, result));
            }
            self.flush_pending_cqes(pid, &ring);
            return;
        }
        if let Err(result) = self.try_post_cqe(&ring, user_data, result) {
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.pending_cqes.push_back((user_data, result));
            }
        }
    }

    /// Retries overflowed completions in FIFO order until one still fails.
    fn flush_pending_cqes(&mut self, pid: Pid, ring: &Ring) {
        loop {
            let Some((user_data, result)) = self.tasks.get_mut(&pid).and_then(|t| t.pending_cqes.pop_front()) else {
                return;
            };
            if let Err(result) = self.try_post_cqe(ring, user_data, result) {
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.pending_cqes.push_front((user_data, result));
                }
                return;
            }
        }
    }

    /// Encodes one result into a completion-queue entry and publishes it.
    ///
    /// Bulk `Data` results that exceed the slot's payload capacity travel by
    /// registered buffer instead: the bytes go into a free buffer and the
    /// entry carries a 12-byte [`SysResult::DataFixed`] reference.
    ///
    /// # Errors
    ///
    /// Returns the result back when it cannot be posted right now (queue
    /// full, or no registered buffer free for an oversized payload); the
    /// caller keeps it in the task's overflow queue.
    fn try_post_cqe(&mut self, ring: &Ring, user_data: u32, result: SysResult) -> Result<(), SysResult> {
        if ring.cq_space() == 0 {
            return Err(result);
        }
        let mut frame = Vec::with_capacity(16);
        result.encode_into(&mut frame);
        let mut fixed_buf = None;
        if frame.len() > ring.geometry().slot_payload_bytes() {
            let SysResult::Data(data) = result else {
                // Non-bulk results are bounded by the client's routing policy
                // (large-result calls use the framed transport); a breach is
                // a kernel bug, not a guest error.
                debug_assert!(false, "oversized non-Data ring completion");
                return Err(result);
            };
            if data.len() > ring.geometry().buf_bytes as usize {
                debug_assert!(false, "ring read larger than a registered buffer");
                return Err(SysResult::Data(data));
            }
            let Some(buf) = ring.alloc_buf() else {
                return Err(SysResult::Data(data));
            };
            if !ring.write_buf(buf, &data) {
                ring.free_buf(buf);
                return Err(SysResult::Data(data));
            }
            frame.clear();
            SysResult::DataFixed {
                buf,
                len: data.len() as u32,
            }
            .encode_into(&mut frame);
            fixed_buf = Some(buf);
        }
        if ring.push_cqe(user_data, &frame) {
            self.stats.cq_posted += 1;
            Ok(())
        } else {
            if let Some(buf) = fixed_buf {
                ring.free_buf(buf);
            }
            // The queue filled between the space check and the push (it
            // cannot — both run on this thread — but stay defensive).
            Err(SysResult::Err(Errno::EINVAL))
        }
    }

    // ---- system-call entry ---------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, transport: Transport) {
        let sync = transport.is_sync();
        let wire_bytes = transport.payload_len();
        let seq = match &transport {
            Transport::Async { seq, .. } => *seq,
            Transport::Sync { .. } => 0,
        };
        match self.tasks.get_mut(&pid) {
            None => return,
            Some(task) if task.is_stopped() => {
                // A stopped process's system calls are not serviced: stash
                // the batch and replay it (in order) when SIGCONT arrives.
                // The worker blocks awaiting the reply, which is exactly the
                // "frozen at a syscall boundary" stop semantics.
                task.stashed_transports.push(transport);
                return;
            }
            Some(_) => {}
        }
        let Some(batch) = transport.decode_batch() else {
            // An undecodable frame (corruption, codec-version skew) must
            // still produce a reply: a sync-convention process has already
            // armed its wake word and would otherwise hang forever.
            let error = CompletionBatch {
                completions: vec![Completion {
                    index: 0,
                    result: SysResult::Err(Errno::EINVAL),
                }],
            };
            self.deliver_payload(pid, sync, seq, error.encode());
            return;
        };
        if batch.is_empty() {
            return;
        }
        self.stats.record_batch(batch.len(), sync, wire_bytes);
        if let Some(task) = self.tasks.get_mut(&pid) {
            task.inflight = Some(InflightBatch {
                seq,
                sync,
                total: batch.len() as u32,
                completions: Vec::with_capacity(batch.len()),
            });
        }
        for (index, call) in batch.entries.into_iter().enumerate() {
            // A mid-batch self-stop keeps dispatching the remaining entries:
            // abandoning them would leave the batch incomplete and hang the
            // worker in `Atomics.wait` even after SIGCONT.  Only exit (which
            // consumes the batch via `NoReply`) ends it early.
            if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                return;
            }
            self.stats.record_syscall(call.name(), call.class(), sync);
            let reply = ReplyTo::Batch { index: index as u32 };
            match self.dispatch(pid, reply, call) {
                Outcome::Complete(result) => self.record_completion(pid, reply, result),
                // Blocked entries peel off into the pending list and complete
                // individually; `exit` consumes the rest of the batch.
                Outcome::Blocked => {}
                Outcome::NoReply => return,
            }
        }
        self.maybe_deliver_batch(pid);
    }

    fn dispatch(&mut self, pid: Pid, reply: ReplyTo, call: Syscall) -> Outcome {
        match call {
            // process management
            Syscall::Spawn {
                path,
                args,
                env,
                cwd,
                stdio,
            } => self.sys_spawn(pid, path, args, env, cwd, stdio),
            Syscall::Fork { image, resume_point } => self.sys_fork(pid, image, resume_point),
            Syscall::Pipe2 => self.sys_pipe2(pid),
            Syscall::Wait4 { pid: target, options } => self.sys_wait4(pid, reply, target, options),
            Syscall::Exit { code } => self.sys_exit(pid, code),
            Syscall::Kill { pid: target, signal } => self.sys_kill(pid, target, signal),
            Syscall::SignalAction { signal, action } => self.sys_sigaction(pid, signal, action),
            Syscall::Sigprocmask { how, mask } => self.sys_sigprocmask(pid, how, mask),
            Syscall::Setpgid { pid: target, pgid } => self.sys_setpgid(pid, target, pgid),
            Syscall::Getpgid { pid: target } => self.sys_getpgid(pid, target),
            Syscall::Tcsetpgrp { pgid } => self.sys_tcsetpgrp(pid, pgid),
            Syscall::GetPid => Outcome::Complete(SysResult::Int(pid as i64)),
            Syscall::GetPPid => self.sys_getppid(pid),
            Syscall::GetCwd => self.sys_getcwd(pid),
            Syscall::Chdir { path } => self.sys_chdir(pid, path),
            // file IO
            Syscall::Open { path, flags, mode } => self.sys_open(pid, path, flags, mode),
            Syscall::Close { fd } => self.sys_close(pid, fd),
            Syscall::Read { fd, len } => self.sys_read(pid, reply, fd, len as usize),
            Syscall::Pread { fd, len, offset } => self.sys_pread(pid, fd, len as usize, offset),
            Syscall::Write { fd, data } => self.sys_write(pid, reply, fd, data),
            Syscall::Pwrite { fd, data, offset } => self.sys_pwrite(pid, fd, data, offset),
            Syscall::Seek { fd, offset, whence } => self.sys_seek(pid, fd, offset, whence),
            Syscall::Dup { fd } => self.sys_dup(pid, fd),
            Syscall::Dup2 { from, to } => self.sys_dup2(pid, from, to),
            Syscall::Unlink { path } => self.sys_unlink(pid, path),
            Syscall::Truncate { path, size } => self.sys_truncate(pid, path, size),
            Syscall::Rename { from, to } => self.sys_rename(pid, from, to),
            Syscall::Fsync { fd } => self.sys_fsync(pid, fd),
            Syscall::Poll { fds, timeout_ms } => self.sys_poll(pid, reply, fds, timeout_ms),
            Syscall::SetFlags { fd, flags } => self.sys_setflags(pid, fd, flags),
            // directory IO
            Syscall::Readdir { path } => self.sys_readdir(pid, path),
            Syscall::Mkdir { path, mode } => self.sys_mkdir(pid, path, mode),
            Syscall::Rmdir { path } => self.sys_rmdir(pid, path),
            // metadata
            Syscall::Stat { path, .. } => self.sys_stat(pid, path),
            Syscall::Fstat { fd } => self.sys_fstat(pid, fd),
            Syscall::Access { path, mode } => self.sys_access(pid, path, mode),
            Syscall::Readlink { .. } => Outcome::Complete(SysResult::Err(Errno::EINVAL)),
            Syscall::Utimes {
                path,
                atime_ms,
                mtime_ms,
            } => self.sys_utimes(pid, path, atime_ms, mtime_ms),
            // sockets
            Syscall::Socket => self.sys_socket(pid),
            Syscall::Bind { fd, port } => self.sys_bind(pid, fd, port),
            Syscall::GetSockName { fd } => self.sys_getsockname(pid, fd),
            Syscall::Listen { fd, backlog } => self.sys_listen(pid, fd, backlog),
            Syscall::Accept { fd } => self.sys_accept(pid, reply, fd),
            Syscall::Connect { fd, port } => self.sys_connect(pid, fd, port),
            // virtual memory
            Syscall::Ftruncate { fd, size } => self.sys_ftruncate(pid, fd, size),
            Syscall::Mmap {
                addr,
                len,
                prot,
                flags,
                fd,
                offset,
            } => self.sys_mmap(pid, addr, len, prot, flags, fd, offset),
            Syscall::Munmap { addr, len } => self.sys_munmap(pid, addr, len),
            Syscall::Msync { addr, len } => self.sys_msync(pid, addr, len),
            Syscall::Mprotect { addr, len, prot } => self.sys_mprotect(pid, addr, len, prot),
            Syscall::ShmOpen { name, flags, mode } => self.sys_shm_open(pid, name, flags, mode),
            Syscall::ShmUnlink { name } => self.sys_shm_unlink(pid, name),
            Syscall::VmRead { addr, len } => self.sys_vm_read(pid, addr, len as usize),
            Syscall::VmWrite { addr, data } => self.sys_vm_write(pid, addr, data),
            // zero-copy data path & rings
            Syscall::Sendfile {
                out_fd,
                in_fd,
                offset,
                len,
            } => self.sys_sendfile(pid, reply, out_fd, in_fd, offset, len),
            Syscall::Splice { fd_in, fd_out, len } => self.sys_splice(pid, reply, fd_in, fd_out, len),
            Syscall::RingSetup {
                sq_offset,
                cq_offset,
                slots,
                slot_bytes,
                buf_offset,
                buf_count,
                buf_bytes,
            } => self.sys_ring_setup(
                pid,
                RingGeometry {
                    sq_offset,
                    cq_offset,
                    slots,
                    slot_bytes,
                    buf_offset,
                    buf_count,
                    buf_bytes,
                },
            ),
        }
    }

    // ---- reply paths ---------------------------------------------------------

    /// Completes one entry (used by the pending list when a blocked entry
    /// finally finishes): a batch entry files into the in-flight batch and
    /// delivers it if it was the last one; a ring entry posts straight to
    /// the submitter's completion queue.
    pub(crate) fn complete(&mut self, pid: Pid, reply: ReplyTo, result: SysResult) {
        match reply {
            ReplyTo::Batch { .. } => {
                self.record_completion(pid, reply, result);
                self.maybe_deliver_batch(pid);
            }
            ReplyTo::Ring { user_data } => self.post_ring_completion(pid, user_data, result),
        }
    }

    /// Files an entry's result into the task's in-flight batch.
    fn record_completion(&mut self, pid: Pid, reply: ReplyTo, result: SysResult) {
        let ReplyTo::Batch { index } = reply else { return };
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        let Some(inflight) = task.inflight.as_mut() else { return };
        inflight.completions.push(Completion { index, result });
    }

    /// Delivers the task's in-flight batch once every entry has completed:
    /// one response message (asynchronous convention) or one shared-heap
    /// write + notify (synchronous convention), either way carrying the same
    /// encoded [`CompletionBatch`] frame.  The receiving client places each
    /// completion by its index, so no ordering is imposed here.
    fn maybe_deliver_batch(&mut self, pid: Pid) {
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        if !task.inflight.as_ref().map(InflightBatch::is_complete).unwrap_or(false) {
            return;
        }
        let inflight = task.inflight.take().expect("checked above");
        let payload = CompletionBatch {
            completions: inflight.completions,
        }
        .encode();
        self.deliver_payload(pid, inflight.sync, inflight.seq, payload);
    }

    /// Sends an encoded [`CompletionBatch`] frame over the given convention.
    fn deliver_payload(&mut self, pid: Pid, sync: bool, seq: u64, payload: Vec<u8>) {
        if sync {
            let Some(heap) = self.tasks.get(&pid).and_then(|t| t.sync_heap.clone()) else {
                return;
            };
            // [u32 length][frame] at resp_offset, then wake the process.
            let _ = heap
                .sab
                .write_bytes(heap.resp_offset, &(payload.len() as u32).to_le_bytes());
            let _ = heap.sab.write_bytes(heap.resp_offset + 4, &payload);
            let _ = heap.sab.store_and_notify(heap.wake_offset, 1);
        } else {
            let msg = Message::map()
                .with("type", "syscall-response")
                .with("seq", seq as i64)
                .with("completions", payload);
            self.post_to_worker(pid, msg);
        }
    }

    /// Posts a message to a process's worker, recording the copy cost.
    pub(crate) fn post_to_worker(&mut self, pid: Pid, msg: Message) {
        let bytes = msg.byte_size();
        if let Some(task) = self.tasks.get(&pid) {
            if let Some(worker) = &task.worker {
                if worker.post_message(msg).is_ok() {
                    self.stats.record_message_to_worker(bytes);
                }
            }
        }
    }

    // ---- host API ------------------------------------------------------------

    fn handle_host_request(&mut self, request: HostRequest) {
        match request {
            HostRequest::Spawn {
                path,
                args,
                env,
                cwd,
                stdout,
                stderr,
                reply,
            } => {
                let result = self.host_spawn(&path, args, env, &cwd, stdout, stderr);
                let _ = reply.send(result);
            }
            HostRequest::Kill { pid, signal, reply } => {
                let result = self.send_signal(pid, signal);
                let _ = reply.send(result);
            }
            HostRequest::SignalForeground { signal, reply } => {
                let result = self.signal_foreground(signal);
                let _ = reply.send(result);
            }
            HostRequest::WatchExit { pid, reply } => {
                if let Some(&status) = self.exit_records.get(&pid) {
                    let _ = reply.send(status);
                } else if self.tasks.get(&pid).map(|t| t.wait_status()).unwrap_or(None).is_some() {
                    let status = self.tasks[&pid].wait_status().unwrap_or(0);
                    let _ = reply.send(status);
                } else if self.tasks.contains_key(&pid) {
                    self.exit_watchers.entry(pid).or_default().push(reply);
                } else {
                    // Unknown pid: report a generic failure status so callers
                    // do not hang.
                    let _ = reply.send(encode_wait_status(Some(127), None));
                }
            }
            HostRequest::HttpRequest { port, request, reply } => {
                self.host_http_request(port, request, reply);
            }
            HostRequest::SubscribePortListen { listener } => {
                self.port_subscribers.push(listener);
            }
            HostRequest::ListeningPorts { reply } => {
                let _ = reply.send(self.sockets.listening_ports());
            }
            HostRequest::ReadStats { reply } => {
                // Attach the VFS cache counters (dentry cache, httpfs page
                // caches, overlay copy-ups) to the snapshot.
                let mut stats = self.stats.clone();
                stats.absorb_fs(self.fs.io_stats());
                let _ = reply.send(stats);
            }
            HostRequest::ListTasks { reply } => {
                let mut tasks: Vec<(Pid, Pid, String, String)> = self
                    .tasks
                    .values()
                    .map(|t| {
                        let state = match t.state {
                            TaskState::Running => "running".to_owned(),
                            TaskState::Stopped { .. } => "stopped".to_owned(),
                            TaskState::Zombie { .. } => "zombie".to_owned(),
                        };
                        (t.pid, t.ppid, t.name.clone(), state)
                    })
                    .collect();
                tasks.sort_by_key(|(pid, ..)| *pid);
                let _ = reply.send(tasks);
            }
        }
    }

    fn host_spawn(
        &mut self,
        path: &str,
        args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: &str,
        stdout: OutputSink,
        stderr: OutputSink,
    ) -> Result<Pid, Errno> {
        let stdout_fd = self.new_host_sink(stdout);
        let stderr_fd = self.new_host_sink(stderr);
        // Host-started processes read from the controlling terminal, which
        // is what routes SIGTTIN to background readers.
        let stdin = OpenFile::new(FileKind::Tty);
        let mut merged_env = self.default_env.clone();
        for (k, v) in env {
            merged_env.retain(|(existing, _)| existing != &k);
            merged_env.push((k, v));
        }
        self.spawn_process(
            0,
            path,
            args,
            merged_env,
            cwd,
            [stdin, stdout_fd, stderr_fd],
            None,
            None,
        )
    }

    /// Creates a host-sink open file: writes are forwarded to the callback.
    pub(crate) fn new_host_sink(&mut self, sink: OutputSink) -> Arc<OpenFile> {
        let id = self.next_sink;
        self.next_sink += 1;
        self.host_sinks.insert(id, sink);
        OpenFile::new(FileKind::HostSink { stream: id })
    }

    pub(crate) fn host_sink(&self, id: u64) -> Option<OutputSink> {
        self.host_sinks.get(&id).cloned()
    }

    // ---- process lifecycle -----------------------------------------------------

    /// Creates a task and its worker, returning the new pid.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_process(
        &mut self,
        ppid: Pid,
        path: &str,
        mut args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: &str,
        stdio: [Arc<OpenFile>; 3],
        fork_image: Option<ForkImage>,
        forced_launcher: Option<Arc<dyn ProgramLauncher>>,
    ) -> Result<Pid, Errno> {
        let (launcher, blob_url) = match forced_launcher {
            Some(launcher) => (launcher, None),
            None => {
                let resolved = resolve_executable(self.fs.as_ref(), &self.registry, path)?;
                if !resolved.prepend_args.is_empty() {
                    let mut new_args = resolved.prepend_args.clone();
                    new_args.extend(args.into_iter().skip(1));
                    args = new_args;
                }
                let blob_url = resolved.file_bytes.map(|bytes| self.blobs.create_url(bytes));
                (resolved.launcher, blob_url)
            }
        };

        let pid = self.next_pid;
        self.next_pid += 1;

        let name = browsix_fs::path::basename(path);
        let mut task = Task::new(pid, ppid, &name, path, cwd);
        // Children join their parent's process group; host-started processes
        // lead a fresh group of their own (Task::new defaults pgid to pid).
        if let Some(parent) = self.tasks.get(&ppid) {
            task.pgid = parent.pgid;
        }
        task.args = args.clone();
        task.env = env.clone();
        task.launcher = Some(Arc::clone(&launcher));
        for (i, file) in stdio.into_iter().enumerate() {
            task.files.insert_at(i as Fd, file);
        }

        // The worker script: hand the scope and kernel channel to the
        // launcher, which will wait for the init message before running main.
        let kernel_tx = self.events_tx.clone();
        let config = self.config.clone();
        let launcher_for_worker = Arc::clone(&launcher);
        let worker = Worker::spawn(
            &self.config,
            &format!("pid{pid}-{name}"),
            Box::new(move |scope: WorkerScope| {
                let ctx = LaunchContext {
                    pid,
                    config,
                    kernel: kernel_tx,
                    scope,
                };
                launcher_for_worker.launch(ctx);
            }),
        );
        task.worker = Some(worker);
        self.tasks.insert(pid, task);
        if let Some(parent) = self.tasks.get_mut(&ppid) {
            parent.children.push(pid);
        }
        self.stats.processes_spawned += 1;

        // Init message: argument vector, environment, cwd, blob URL and (for
        // fork) the guest memory snapshot.
        let env_msgs: Vec<Message> = env
            .iter()
            .map(|(k, v)| Message::Array(vec![Message::from(k.as_str()), Message::from(v.as_str())]))
            .collect();
        let mut init = Message::map()
            .with("type", "init")
            .with("args", Message::from(args))
            .with("env", Message::Array(env_msgs))
            .with("cwd", cwd);
        if let Some(url) = blob_url {
            init = init.with("blob_url", url.as_str());
        }
        if let Some(image) = fork_image {
            init = init
                .with("fork_image", image.image)
                .with("fork_resume", image.resume_point as i64);
        }
        self.post_to_worker(pid, init);
        self.recompute_endpoints();
        Ok(pid)
    }

    /// Marks a task as exited: zombie state, worker termination, descriptor
    /// cleanup, SIGCHLD, exit notifications and wait-queue wakeups.
    pub(crate) fn finish_task(&mut self, pid: Pid, status: i32) {
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        if task.is_zombie() {
            return;
        }
        task.state = TaskState::Zombie { status };
        if let Some(worker) = task.worker.take() {
            worker.terminate();
        }
        // The ring dies with the process: nobody is left to consume its
        // completion queue.
        task.ring = None;
        task.pending_cqes.clear();
        task.files.clear();
        // Tear down the address space: COW pages shared with live siblings
        // survive (their Arc count stays positive); sole-owner pages are
        // freed, and the scavenger feature asserts both directions.
        task.address_space.release();
        let ppid = task.ppid;
        let children: Vec<Pid> = task.children.clone();
        self.stats.processes_exited += 1;
        self.exit_records.insert(pid, status);

        // The dead process's own blocked system calls have nobody left to
        // receive their completions: drop them before any wakeups run.
        self.drop_waiters_of(pid);

        // Close any listeners the process owned, waking their accept queues
        // so foreign waiters (dup'd listeners) retry against the closed port.
        let owned_ports: Vec<u16> = self
            .sockets
            .listening_ports()
            .into_iter()
            .filter(|port| self.sockets.listener_owner(*port) == Some(pid))
            .collect();
        for port in owned_ports {
            self.sockets.close_listener(port);
            self.wake(WaitChannel::Listener(port));
        }

        // Reparent children to the kernel (pid 0) and reap any that are
        // already zombies — there is no init process to do it.
        for child in children {
            if let Some(child_task) = self.tasks.get_mut(&child) {
                child_task.ppid = 0;
                if child_task.is_zombie() {
                    self.tasks.remove(&child);
                }
            }
        }

        // Wake host watchers.
        if let Some(watchers) = self.exit_watchers.remove(&pid) {
            for watcher in watchers {
                let _ = watcher.send(status);
            }
        }

        // Notify the parent.
        if ppid != 0 && self.tasks.contains_key(&ppid) {
            let _ = self.send_signal(ppid, Signal::SIGCHLD);
        } else {
            // Host-owned process: nobody will call wait4, reap immediately.
            self.tasks.remove(&pid);
        }

        // Dropping the descriptor table may have closed stream endpoints;
        // the recount wakes exactly the streams whose EOF/EPIPE state
        // changed.  A parent blocked in wait4 parks on its own ChildOf
        // queue, so only that queue is woken for the exit itself.
        self.recompute_endpoints();
        if ppid != 0 {
            self.wake(WaitChannel::ChildOf(ppid));
        }
    }

    /// Sends `signal` to `target`: the single entry point for every signal
    /// in the system — `kill(2)` from processes, the host API, kernel-raised
    /// SIGPIPE/SIGCHLD/SIGTTIN, and terminal job control all arrive here.
    ///
    /// A signal blocked by the target's `sigprocmask` parks in its pending
    /// set and is dispatched (exactly once) when unblocked; everything else
    /// dispatches immediately.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if the target does not exist or has already exited.
    pub(crate) fn send_signal(&mut self, target: Pid, signal: Signal) -> Result<(), Errno> {
        let Some(task) = self.tasks.get_mut(&target) else {
            return Err(Errno::ESRCH);
        };
        if task.is_zombie() {
            return Err(Errno::ESRCH);
        }
        self.stats.signals_sent += 1;
        // Stop signals and SIGCONT discard each other from the pending set.
        let mut resumes = false;
        match signal.default_disposition() {
            SignalDisposition::Stop => task.signals.discard_pending_continue(),
            SignalDisposition::Continue => {
                task.signals.discard_pending_stops();
                resumes = true;
            }
            _ => {}
        }
        let admitted = task.signals.admit(signal);
        if resumes {
            // SIGCONT resumes a stopped process even when blocked, ignored
            // or caught (POSIX); only its *delivery* to a handler obeys the
            // mask and disposition.  Without this, a stopped job that had
            // blocked SIGCONT could never be resumed — not even to unblock.
            self.continue_task(target);
        }
        if !admitted {
            // Blocked: parked in the pending set, delivered on unblock.
            return Ok(());
        }
        self.dispatch_signal(target, signal);
        Ok(())
    }

    /// Sends `signal` to every live member of process group `pgid`.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if the group has no live members.
    pub(crate) fn signal_pgroup(&mut self, pgid: Pid, signal: Signal) -> Result<(), Errno> {
        let targets: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.is_alive() && t.pgid == pgid)
            .map(|t| t.pid)
            .collect();
        if targets.is_empty() {
            return Err(Errno::ESRCH);
        }
        for pid in targets {
            let _ = self.send_signal(pid, signal);
        }
        Ok(())
    }

    /// Sends `signal` to the foreground process group of the controlling
    /// terminal (what `Ctrl-C`/`Ctrl-Z` do).
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if no foreground group is set or it has no members.
    pub(crate) fn signal_foreground(&mut self, signal: Signal) -> Result<(), Errno> {
        match self.foreground_pgid {
            Some(pgid) => self.signal_pgroup(pgid, signal),
            None => Err(Errno::ESRCH),
        }
    }

    /// The foreground process group, if one has been set with `tcsetpgrp`.
    pub(crate) fn foreground_pgid(&self) -> Option<Pid> {
        self.foreground_pgid
    }

    pub(crate) fn set_foreground_pgid(&mut self, pgid: Option<Pid>) {
        self.foreground_pgid = pgid;
    }

    /// Applies an unblocked (or never-blocked) signal to its target: runs the
    /// installed handler's delivery, or the default disposition.
    pub(crate) fn dispatch_signal(&mut self, target: Pid, signal: Signal) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if task.is_zombie() {
            return;
        }
        match task.signals.action(signal) {
            SigAction::Ignore => return,
            SigAction::Handler { restart } => {
                self.stats.signals_delivered += 1;
                // A caught SIGCONT still resumes a stopped process before the
                // handler observes it, as on Linux.
                if signal == Signal::SIGCONT {
                    self.continue_task(target);
                }
                let msg = Message::map()
                    .with("type", "signal")
                    .with("signal", signal.number() as i64)
                    .with("name", signal.name());
                self.post_to_worker(target, msg);
                if !restart {
                    // The handler interrupts the process's blocked system
                    // calls with EINTR; SA_RESTART leaves them parked, which
                    // is this kernel's restart.
                    self.interrupt_waiters_of(target);
                    // A signal that should interrupt a parked waiter must
                    // never leave one parked.
                    #[cfg(feature = "scavenger")]
                    debug_assert_eq!(
                        self.waiters.count_matching(|w| w.pid == target),
                        0,
                        "signal delivery left a waiter of pid {target} parked without SA_RESTART"
                    );
                }
                return;
            }
            SigAction::Default => {}
        }
        match signal.default_disposition() {
            SignalDisposition::Ignore => {}
            SignalDisposition::Terminate => {
                self.stats.signals_delivered += 1;
                self.finish_task(target, encode_wait_status(None, Some(signal)));
            }
            SignalDisposition::Stop => {
                self.stats.signals_delivered += 1;
                self.stop_task(target, signal);
            }
            SignalDisposition::Continue => {
                self.stats.signals_delivered += 1;
                self.continue_task(target);
            }
        }
    }

    /// Completes every blocked system call of `target` with `EINTR` (the
    /// wait-queue side of signal delivery).  Kernel-internal HTTP clients
    /// run as pid 0 and are never signalled, so they cannot match.
    pub(crate) fn interrupt_waiters_of(&mut self, target: Pid) {
        debug_assert_ne!(target, 0, "pid 0 is reserved for kernel-internal waiters");
        for waiter in self.waiters.take_matching(|w| w.pid == target) {
            self.stats.eintr_wakeups += 1;
            if let Some(reply) = waiter.reply {
                self.complete(target, reply, SysResult::Err(Errno::EINTR));
            }
        }
    }

    /// Suspends a running task (default disposition of the stop signals):
    /// the parent gets SIGCHLD and its `WUNTRACED` waiters wake.
    fn stop_task(&mut self, target: Pid, signal: Signal) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if !task.is_running() {
            return;
        }
        task.state = TaskState::Stopped { signal };
        task.stop_reported = false;
        let ppid = task.ppid;
        if ppid != 0 && self.tasks.contains_key(&ppid) {
            let _ = self.send_signal(ppid, Signal::SIGCHLD);
            self.wake(WaitChannel::ChildOf(ppid));
        }
    }

    /// Resumes a stopped task (SIGCONT): replays the system-call batches
    /// stashed while it was suspended, in arrival order.
    fn continue_task(&mut self, target: Pid) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if !task.is_stopped() {
            return;
        }
        task.state = TaskState::Running;
        task.stop_reported = false;
        let stashed = std::mem::take(&mut task.stashed_transports);
        for transport in stashed {
            self.handle_syscall(target, transport);
        }
    }

    // ---- shared helpers --------------------------------------------------------

    pub(crate) fn task(&self, pid: Pid) -> Result<&Task, Errno> {
        self.tasks.get(&pid).ok_or(Errno::ESRCH)
    }

    pub(crate) fn task_mut(&mut self, pid: Pid) -> Result<&mut Task, Errno> {
        self.tasks.get_mut(&pid).ok_or(Errno::ESRCH)
    }

    pub(crate) fn fs(&self) -> &MountedFs {
        self.fs.as_ref()
    }

    pub(crate) fn streams_mut(&mut self) -> &mut StreamTable {
        &mut self.streams
    }

    pub(crate) fn streams(&self) -> &StreamTable {
        &self.streams
    }

    pub(crate) fn sockets_mut(&mut self) -> &mut SocketTable {
        &mut self.sockets
    }

    pub(crate) fn sockets(&self) -> &SocketTable {
        &self.sockets
    }

    pub(crate) fn notify_port_listen(&mut self, port: u16) {
        self.port_subscribers.retain(|sub| sub.send(port).is_ok());
    }

    /// Resolves a path relative to a task's working directory.
    pub(crate) fn resolve_path(&self, pid: Pid, path: &str) -> String {
        let cwd = self.tasks.get(&pid).map(|t| t.cwd.as_str()).unwrap_or("/");
        browsix_fs::path::resolve(cwd, path)
    }

    /// Recomputes every stream's reader/writer endpoint counts by scanning
    /// all live descriptor tables (plus the kernel's internal HTTP clients).
    /// This is the reference counting that decides EOF and EPIPE — and the
    /// EOF/EPIPE *transitions* it discovers wake exactly the wait queues of
    /// the streams that changed (readers of a stream whose last writer
    /// closed, writers of a stream whose last reader closed).
    pub(crate) fn recompute_endpoints(&mut self) {
        let before = self.streams.endpoint_snapshot();
        self.streams.reset_endpoint_counts();
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut adjustments: Vec<(crate::streams::StreamId, bool)> = Vec::new(); // (stream, is_reader)
        for task in self.tasks.values() {
            // Stopped tasks still hold their descriptors: a stopped job's
            // pipes must not report EOF/EPIPE while it is suspended.
            if task.is_zombie() {
                continue;
            }
            for (_, file) in task.files.iter() {
                let key = Arc::as_ptr(file) as usize;
                if !seen.insert(key) {
                    continue;
                }
                match file.kind() {
                    FileKind::PipeReader { stream } => adjustments.push((stream, true)),
                    FileKind::PipeWriter { stream } => adjustments.push((stream, false)),
                    FileKind::SocketStream { connection, side } => {
                        if let Some(conn) = self.sockets.connection(connection) {
                            match side {
                                crate::fd::SocketSide::Client => {
                                    adjustments.push((conn.client_to_server, false));
                                    adjustments.push((conn.server_to_client, true));
                                }
                                crate::fd::SocketSide::Server => {
                                    adjustments.push((conn.client_to_server, true));
                                    adjustments.push((conn.server_to_client, false));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // The kernel's own XHR-like clients hold the client side of their
        // connection until the response has been parsed.
        for client in &self.http_clients {
            if let Some(conn) = self.sockets.connection(client.connection) {
                adjustments.push((conn.client_to_server, false));
                adjustments.push((conn.server_to_client, true));
            }
        }
        // Connections sitting in a listener's backlog have no server-side
        // descriptor yet; count the future endpoint so clients do not see a
        // spurious EOF before the server calls accept.
        for pending in self.sockets.pending_connections() {
            if let Some(conn) = self.sockets.connection(pending) {
                adjustments.push((conn.client_to_server, true));
                adjustments.push((conn.server_to_client, false));
            }
        }
        for (stream_id, is_reader) in adjustments {
            if let Some(stream) = self.streams.get_mut(stream_id) {
                if is_reader {
                    stream.readers += 1;
                } else {
                    stream.writers += 1;
                }
            }
        }
        for removed in self.streams.collect_garbage() {
            self.wake(WaitChannel::StreamReadable(removed));
            self.wake(WaitChannel::StreamWritable(removed));
        }
        // Wake exactly the queues whose EOF/EPIPE state flipped.
        for (id, (readers_before, writers_before)) in before {
            let (wake_readable, wake_writable) = match self.streams.get(id) {
                // Removed by the GC above (already woken) or explicitly.
                None => (true, true),
                Some(stream) => (
                    // EOF: blocked readers (and polls) must see it.
                    writers_before > 0 && stream.write_end_closed(),
                    // EPIPE: blocked writers must fail (and get SIGPIPE).
                    readers_before > 0 && stream.read_end_closed(),
                ),
            };
            if wake_readable {
                self.wake(WaitChannel::StreamReadable(id));
            }
            if wake_writable {
                self.wake(WaitChannel::StreamWritable(id));
            }
        }
    }

    /// Removes a task from the table entirely (used when a zombie is reaped).
    pub(crate) fn remove_task_impl(&mut self, pid: Pid) {
        self.tasks.remove(&pid);
    }
}
