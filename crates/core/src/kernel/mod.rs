//! The kernel proper: state, event loop, process lifecycle and system-call
//! dispatch.
//!
//! The kernel runs on its own thread (the analogue of the main browser
//! thread) and owns every piece of shared state: the task table, the mounted
//! file system, streams (pipes and socket connections), sockets and the
//! wait queues of blocked system calls.  Everything else in the crate
//! funnels into `KernelState::run`.

mod dispatch_fs;
mod dispatch_proc;
mod dispatch_sock;
mod dispatch_vm;
mod poll;
pub mod shard;
pub mod waitq;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use browsix_browser::{BlobRegistry, Message, PlatformConfig, Worker, WorkerScope};
use browsix_fs::{Errno, MountedFs};

use crate::events::{HostRequest, KernelEvent, OutputSink};
use crate::exec::{resolve_executable, ExecutableRegistry, ForkImage, LaunchContext, ProgramLauncher};
use crate::fd::{Fd, FileKind, OpenFile, SocketSide};
use crate::ring::{Ring, RingGeometry};
use crate::signals::{SigAction, Signal, SignalDisposition};
use crate::socket::{Connection, ConnectionId, SocketTable};
use crate::stats::KernelStats;
use crate::streams::{StreamId, StreamTable};
use crate::syscall::{encode_wait_status, Completion, CompletionBatch, SysResult, Syscall, Transport};
use crate::task::{InflightBatch, Pid, SyncHeap, Task, TaskState};
use crate::wire::Reader;

pub(crate) use shard::{RemoteRevents, RouterState, ShardMsg};
pub(crate) use waitq::{HttpClientState, WaitKind, Waiter};
pub use waitq::{WaitChannel, WaitTable, WaiterId};

/// Where a system call's result belongs.
///
/// Batch entries complete into the task's [`InflightBatch`] (the transport
/// convention and, for the asynchronous convention, the reply sequence
/// number live there, so both framed conventions share one completion
/// path).  Ring entries complete individually: each one becomes a
/// completion-queue entry tagged with the submitter's `user_data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyTo {
    /// The slot of the entry within the submission batch it arrived in.
    Batch {
        /// Index of the entry within its submission batch.
        index: u32,
    },
    /// An entry submitted through the task's persistent ring.
    Ring {
        /// The submitter's cookie, echoed on the completion entry.
        user_data: u32,
    },
}

/// The outcome of dispatching a system call.
pub(crate) enum Outcome {
    /// The call finished; send this result.
    Complete(SysResult),
    /// The call blocked; a [`Waiter`] has been parked on its wait queue(s).
    Blocked,
    /// The call finished but no reply should be sent (`exit`).
    NoReply,
}

/// What a pending remote operation was, so its reply installs the right
/// state on the submitting shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RemoteKind {
    /// A read from a foreign stream.
    Read,
    /// A write to a foreign stream.
    Write,
    /// A connect to a listener on a foreign shard; the reply turns `fd`
    /// into the client side of the connection.
    Connect { fd: Fd },
}

/// A syscall parked on this shard while a foreign shard executes it; keyed
/// by the token the reply will carry.  Removing the entry on completion or
/// cancellation is what makes delivery exactly-once: a late or duplicate
/// reply finds no entry and is dropped.
pub(crate) struct PendingRemote {
    pub pid: Pid,
    pub reply: ReplyTo,
    pub kind: RemoteKind,
    /// The shard executing the op (receives `CancelOp` on EINTR/death).
    pub owner: usize,
}

/// Configuration captured at boot time and owned by the kernel thread.
pub(crate) struct KernelConfig {
    pub platform: PlatformConfig,
    pub fs: Arc<MountedFs>,
    pub registry: ExecutableRegistry,
    pub default_env: Vec<(String, String)>,
}

/// All kernel state of one shard.  Owned exclusively by that shard's
/// thread; the only state shared between shards is the [`RouterState`].
pub(crate) struct KernelState {
    config: PlatformConfig,
    fs: Arc<MountedFs>,
    registry: ExecutableRegistry,
    blobs: BlobRegistry,
    default_env: Vec<(String, String)>,

    /// This shard's index (`pid % nshards` names the owner of a task).
    shard_id: usize,
    nshards: usize,
    /// Every shard's event queue, `peers[shard_id]` being this shard's own
    /// (cross-shard messages and local re-submissions share one ordering).
    peers: Vec<Sender<KernelEvent>>,
    /// The global registries shared by all shards (never touched while
    /// bytes move on the data path).
    router: Arc<RouterState>,

    events_tx: Sender<KernelEvent>,
    tasks: HashMap<Pid, Task>,
    streams: StreamTable,
    sockets: SocketTable,
    /// Blocked system calls (and kernel HTTP clients), parked on the wait
    /// queues of exactly the resources they wait for.
    waiters: WaitTable<Waiter>,
    /// Channels whose wakeup is queued while another wake is draining.
    wake_queue: VecDeque<WaitChannel>,
    /// Re-entrancy guard for [`KernelState::wake`].
    waking: bool,
    /// `(deadline, waiter)` pairs for parked `poll`s with timeouts.
    poll_deadlines: Vec<(Instant, WaiterId)>,
    http_clients: Vec<HttpClientState>,

    /// Monotonic token counter for cross-shard operations this shard
    /// submits (tokens are only ever interpreted by the shard that minted
    /// them, so plain per-shard counters cannot collide).
    next_remote_token: u64,
    /// Syscalls executing on a foreign shard, keyed by token.
    remote_ops: HashMap<u64, PendingRemote>,
    /// Wait statuses of exited children that lived on foreign shards (the
    /// cross-shard form of a zombie, shipped here for this shard's wait4).
    remote_zombies: HashMap<Pid, i32>,
    /// Stop signals of remotely-stopped children not yet reported by a
    /// `WUNTRACED` wait.
    remote_stops: HashMap<Pid, Signal>,
    /// Endpoint contributions received from each peer shard: references
    /// their descriptor tables hold to streams this shard owns.
    remote_contribs: HashMap<usize, HashMap<StreamId, (u32, u32)>>,
    /// The last endpoint snapshot sent to each peer (dedup so recomputes
    /// only message peers whose view actually changed).
    sent_contribs: HashMap<usize, Vec<(StreamId, u32, u32)>>,
    /// Connections owned by other shards that local descriptors reference
    /// (purged when the last local reference disappears).
    remote_connections: HashMap<ConnectionId, Connection>,
    /// Latest readiness snapshots of foreign streams local `poll`s watch.
    remote_revents_cache: HashMap<StreamId, RemoteRevents>,
    /// Connections created by a remote `connect` whose client endpoints are
    /// pinned here until the connecting shard acks its endpoint snapshot.
    remote_client_pins: HashSet<ConnectionId>,
    /// stdio of in-flight cross-shard spawns, pinned (and counted as
    /// endpoints) until the owning shard acks the task exists.
    pinned_files: HashMap<u64, Vec<Arc<OpenFile>>>,

    exit_watchers: HashMap<Pid, Vec<Sender<i32>>>,
    exit_records: HashMap<Pid, i32>,

    stats: KernelStats,
}

impl KernelState {
    pub(crate) fn new(
        config: KernelConfig,
        shard_id: usize,
        router: Arc<RouterState>,
        peers: Vec<Sender<KernelEvent>>,
    ) -> KernelState {
        let events_tx = peers[shard_id].clone();
        KernelState {
            config: config.platform,
            fs: config.fs,
            registry: config.registry,
            blobs: BlobRegistry::new(),
            default_env: config.default_env,
            shard_id,
            nshards: router.nshards(),
            peers,
            router,
            events_tx,
            tasks: HashMap::new(),
            streams: StreamTable::new_for_shard(shard_id),
            sockets: SocketTable::new_for_shard(shard_id),
            waiters: WaitTable::new(),
            wake_queue: VecDeque::new(),
            waking: false,
            poll_deadlines: Vec::new(),
            http_clients: Vec::new(),
            next_remote_token: 1,
            remote_ops: HashMap::new(),
            remote_zombies: HashMap::new(),
            remote_stops: HashMap::new(),
            remote_contribs: HashMap::new(),
            sent_contribs: HashMap::new(),
            remote_connections: HashMap::new(),
            remote_revents_cache: HashMap::new(),
            remote_client_pins: HashSet::new(),
            pinned_files: HashMap::new(),
            exit_watchers: HashMap::new(),
            exit_records: HashMap::new(),
            stats: KernelStats::default(),
        }
    }

    /// The kernel's main loop: process events until shutdown.
    ///
    /// Every state change wakes exactly the wait queues it affects as part
    /// of handling the event, so the loop itself does no retry work; the
    /// only timer-driven duty left is expiring `poll` deadlines, which bound
    /// the sleep.
    pub(crate) fn run(mut self, events: Receiver<KernelEvent>) {
        loop {
            let timeout = self
                .next_poll_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            match events.recv_timeout(timeout) {
                Ok(KernelEvent::Shutdown) => break,
                Ok(event) => self.handle_event(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Backstop drain of every persistent ring: submissions normally
            // arrive via a doorbell event, but entries published while the
            // kernel was busy (doorbell suppressed by a clear NEED_WAKEUP
            // flag) are picked up here before the loop sleeps again.
            self.drain_rings();
            self.expire_poll_deadlines();
            // With the `scavenger` feature, prove the wait queues lost no
            // wakeup: retrying every parked waiter must complete none.
            #[cfg(feature = "scavenger")]
            self.scavenge();
            #[cfg(feature = "scavenger")]
            self.scavenge_rings();
        }
        // Terminate every remaining worker so their threads exit.
        for task in self.tasks.values_mut() {
            if let Some(worker) = task.worker.take() {
                worker.terminate();
            }
        }
    }

    fn handle_event(&mut self, event: KernelEvent) {
        match event {
            KernelEvent::Syscall { pid, transport } => self.handle_syscall(pid, transport),
            KernelEvent::RegisterSyncHeap {
                pid,
                sab,
                resp_offset,
                wake_offset,
            } => {
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.sync_heap = Some(SyncHeap {
                        sab,
                        resp_offset,
                        wake_offset,
                    });
                }
            }
            KernelEvent::Doorbell { pid } => {
                self.stats.doorbells += 1;
                self.drain_ring(pid);
            }
            KernelEvent::Host(request) => self.handle_host_request(request),
            KernelEvent::Shard(msg) => self.handle_shard_msg(msg),
            KernelEvent::Shutdown => {}
        }
    }

    // ---- cross-shard messaging -----------------------------------------------

    /// Sends a message to a peer shard (its event queue preserves the order
    /// of everything this shard sent it).
    pub(crate) fn send_shard(&mut self, shard: usize, msg: ShardMsg) {
        self.stats.shard_msgs_sent += 1;
        let _ = self.peers[shard].send(KernelEvent::Shard(msg));
    }

    /// Mints a token for a cross-shard operation.
    pub(crate) fn next_remote_token(&mut self) -> u64 {
        let token = self.next_remote_token;
        self.next_remote_token += 1;
        token
    }

    /// This shard's index.
    pub(crate) fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// The number of shards in the fleet.
    pub(crate) fn nshards(&self) -> usize {
        self.nshards
    }

    /// Whether a stream id belongs to another shard.
    pub(crate) fn stream_is_remote(&self, stream: StreamId) -> bool {
        shard::stream_shard(stream) != self.shard_id
    }

    /// Resolves a connection: this shard's socket table, else the cache of
    /// remotely-owned connections local descriptors reference.
    pub(crate) fn connection_info(&self, id: ConnectionId) -> Option<Connection> {
        self.sockets
            .connection(id)
            .or_else(|| self.remote_connections.get(&id).copied())
    }

    /// A cached readiness snapshot of a foreign stream (for `poll`).
    pub(crate) fn remote_revents(&self, stream: StreamId) -> Option<RemoteRevents> {
        self.remote_revents_cache.get(&stream).copied()
    }

    /// Submits a read of a foreign stream to its owner; the syscall parks in
    /// `remote_ops` until [`ShardMsg::RemoteOpDone`] comes back.
    pub(crate) fn remote_read(
        &mut self,
        pid: Pid,
        reply: ReplyTo,
        stream: StreamId,
        len: usize,
        nonblocking: bool,
    ) -> Outcome {
        let owner = shard::stream_shard(stream);
        let token = self.next_remote_token();
        self.remote_ops.insert(
            token,
            PendingRemote {
                pid,
                reply,
                kind: RemoteKind::Read,
                owner,
            },
        );
        self.send_shard(
            owner,
            ShardMsg::RemoteRead {
                token,
                from_shard: self.shard_id,
                pid,
                stream,
                len,
                nonblocking,
            },
        );
        Outcome::Blocked
    }

    /// Submits a write to a foreign stream to its owner.
    pub(crate) fn remote_write(
        &mut self,
        pid: Pid,
        reply: ReplyTo,
        stream: StreamId,
        data: Vec<u8>,
        nonblocking: bool,
    ) -> Outcome {
        let owner = shard::stream_shard(stream);
        let token = self.next_remote_token();
        self.remote_ops.insert(
            token,
            PendingRemote {
                pid,
                reply,
                kind: RemoteKind::Write,
                owner,
            },
        );
        self.send_shard(
            owner,
            ShardMsg::RemoteWrite {
                token,
                from_shard: self.shard_id,
                pid,
                stream,
                data,
                nonblocking,
            },
        );
        Outcome::Blocked
    }

    /// Owner-side immediate read attempt against an owned stream.  `None`
    /// means the stream exists with a live writer and no data (park).
    pub(crate) fn try_remote_read(&mut self, stream: StreamId, len: usize) -> Option<SysResult> {
        let Some(s) = self.streams.get_mut(stream) else {
            // The stream is gone: its endpoints all closed, which reads as EOF.
            return Some(SysResult::Data(Vec::new()));
        };
        if !s.is_empty() {
            let data = s.pop(len);
            self.wake(WaitChannel::StreamWritable(stream));
            return Some(SysResult::Data(data));
        }
        if s.write_end_closed() {
            return Some(SysResult::Data(Vec::new()));
        }
        None
    }

    /// Owner-side immediate write attempt: bytes accepted, or `EPIPE`.
    /// Raw — the *submitting* shard raises SIGPIPE, preserving the local
    /// signal-then-error ordering for the writer.
    pub(crate) fn try_remote_write(&mut self, stream: StreamId, data: &[u8]) -> Result<usize, Errno> {
        let Some(s) = self.streams.get_mut(stream) else {
            return Err(Errno::EPIPE);
        };
        if s.read_end_closed() {
            return Err(Errno::EPIPE);
        }
        let written = s.push(data);
        if written > 0 {
            self.wake(WaitChannel::StreamReadable(stream));
        }
        Ok(written)
    }

    /// Submits a `connect` to the shard owning the target port's listener;
    /// the caller's descriptor is upgraded when the reply arrives.  Connect
    /// ops are exempt from `EINTR` cancellation (the reply installs the
    /// connection; abandoning it would leak the server-side streams), so
    /// they only ever resolve via [`ShardMsg::ConnectReply`] or task death.
    pub(crate) fn remote_connect(&mut self, pid: Pid, reply: ReplyTo, fd: Fd, owner: usize, port: u16) -> Outcome {
        let token = self.next_remote_token();
        self.remote_ops.insert(
            token,
            PendingRemote {
                pid,
                reply,
                kind: RemoteKind::Connect { fd },
                owner,
            },
        );
        self.send_shard(
            owner,
            ShardMsg::Connect {
                token,
                from_shard: self.shard_id,
                port,
            },
        );
        Outcome::Blocked
    }

    fn handle_shard_msg(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::SpawnTask {
                token,
                origin,
                pid,
                ppid,
                pgid,
                name,
                path,
                cwd,
                args,
                env,
                launcher,
                file_bytes,
                stdio,
            } => {
                let blob_url = file_bytes.map(|bytes| self.blobs.create_url(bytes));
                let stdio: [Arc<OpenFile>; 3] = stdio;
                self.install_task(
                    pid, ppid, pgid, &name, &path, &cwd, args, env, stdio, blob_url, None, launcher,
                );
                self.recompute_endpoints();
                self.send_shard(origin, ShardMsg::SpawnAck { token });
            }
            ShardMsg::SpawnAck { token } => {
                self.pinned_files.remove(&token);
                self.recompute_endpoints();
            }
            ShardMsg::ChildExited { pid, ppid, status } => {
                if self.tasks.get(&ppid).map(|t| !t.is_zombie()).unwrap_or(false) {
                    self.remote_zombies.insert(pid, status);
                    let _ = self.send_signal(ppid, Signal::SIGCHLD);
                    self.wake(WaitChannel::ChildOf(ppid));
                }
                // Parent died concurrently: the child's shard already
                // dropped the task and recorded the exit status for host
                // watchers; nothing to reap here.
            }
            ShardMsg::ChildStopped { pid, ppid, signal } => {
                if self.tasks.get(&ppid).map(|t| !t.is_zombie()).unwrap_or(false) {
                    self.remote_stops.insert(pid, signal);
                    let _ = self.send_signal(ppid, Signal::SIGCHLD);
                    self.wake(WaitChannel::ChildOf(ppid));
                }
            }
            ShardMsg::ChildContinued { pid, .. } => {
                self.remote_stops.remove(&pid);
            }
            ShardMsg::Reparent { child } => {
                if let Some(task) = self.tasks.get_mut(&child) {
                    task.ppid = 0;
                    if task.is_zombie() {
                        self.tasks.remove(&child);
                    }
                }
            }
            ShardMsg::SignalPid { pid, signal } => {
                let _ = self.send_signal(pid, signal);
            }
            ShardMsg::SetPgid { pid, pgid } => {
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.pgid = pgid;
                }
            }
            ShardMsg::RemoteRead {
                token,
                from_shard,
                pid,
                stream,
                len,
                nonblocking,
            } => {
                self.stats.steals += 1;
                match self.try_remote_read(stream, len) {
                    Some(result) => self.send_shard(
                        from_shard,
                        ShardMsg::RemoteOpDone {
                            token,
                            result,
                            raise_sigpipe: false,
                        },
                    ),
                    None if nonblocking => {
                        self.stats.eagain_returns += 1;
                        self.send_shard(
                            from_shard,
                            ShardMsg::RemoteOpDone {
                                token,
                                result: SysResult::Err(Errno::EAGAIN),
                                raise_sigpipe: false,
                            },
                        );
                    }
                    None => self.park_waiter_one(
                        WaitChannel::StreamReadable(stream),
                        Waiter {
                            pid,
                            reply: None,
                            kind: WaitKind::RemoteRead {
                                stream,
                                len,
                                token,
                                from_shard,
                            },
                        },
                    ),
                }
            }
            ShardMsg::RemoteWrite {
                token,
                from_shard,
                pid,
                stream,
                data,
                nonblocking,
            } => {
                self.stats.steals += 1;
                match self.try_remote_write(stream, &data) {
                    Err(errno) => self.send_shard(
                        from_shard,
                        ShardMsg::RemoteOpDone {
                            token,
                            result: SysResult::Err(errno),
                            raise_sigpipe: errno == Errno::EPIPE,
                        },
                    ),
                    Ok(written) if written == data.len() => self.send_shard(
                        from_shard,
                        ShardMsg::RemoteOpDone {
                            token,
                            result: SysResult::Int(written as i64),
                            raise_sigpipe: false,
                        },
                    ),
                    Ok(written) if nonblocking => {
                        let result = if written > 0 {
                            SysResult::Int(written as i64)
                        } else {
                            self.stats.eagain_returns += 1;
                            SysResult::Err(Errno::EAGAIN)
                        };
                        self.send_shard(
                            from_shard,
                            ShardMsg::RemoteOpDone {
                                token,
                                result,
                                raise_sigpipe: false,
                            },
                        );
                    }
                    Ok(written) => self.park_waiter_one(
                        WaitChannel::StreamWritable(stream),
                        Waiter {
                            pid,
                            reply: None,
                            kind: WaitKind::RemoteWrite {
                                stream,
                                data,
                                written,
                                token,
                                from_shard,
                            },
                        },
                    ),
                }
            }
            ShardMsg::RemoteOpDone {
                token,
                result,
                raise_sigpipe,
            } => {
                // Exactly-once: a token cancelled by EINTR or death has
                // left the table, and this late reply is dropped.
                let Some(op) = self.remote_ops.remove(&token) else {
                    return;
                };
                if raise_sigpipe {
                    let _ = self.send_signal(op.pid, Signal::SIGPIPE);
                }
                self.complete(op.pid, op.reply, result);
            }
            ShardMsg::CancelOp { token } => {
                drop(self.waiters.take_matching(|w| {
                    matches!(
                        &w.kind,
                        WaitKind::RemoteRead { token: t, .. } | WaitKind::RemoteWrite { token: t, .. }
                        if *t == token
                    )
                }));
            }
            ShardMsg::Connect {
                token,
                from_shard,
                port,
            } => {
                self.stats.steals += 1;
                if !self.sockets.port_in_use(port) {
                    self.send_shard(
                        from_shard,
                        ShardMsg::ConnectReply {
                            token,
                            result: Err(Errno::ECONNREFUSED),
                        },
                    );
                    return;
                }
                let client_to_server = self.streams.create();
                let server_to_client = self.streams.create();
                match self.sockets.connect(port, client_to_server, server_to_client) {
                    Ok(id) => {
                        // Pin the client endpoints until the connecting
                        // shard records its descriptor and acks; otherwise
                        // the server could observe a half-closed stream in
                        // the gap between the two shards' recounts.
                        self.remote_client_pins.insert(id);
                        let conn = self.sockets.connection(id).expect("connection just created");
                        self.wake(WaitChannel::Listener(port));
                        self.recompute_endpoints();
                        self.send_shard(
                            from_shard,
                            ShardMsg::ConnectReply {
                                token,
                                result: Ok((id, conn)),
                            },
                        );
                    }
                    Err(errno) => {
                        self.streams.remove(client_to_server);
                        self.streams.remove(server_to_client);
                        self.send_shard(
                            from_shard,
                            ShardMsg::ConnectReply {
                                token,
                                result: Err(errno),
                            },
                        );
                    }
                }
            }
            ShardMsg::ConnectReply { token, result } => {
                let op = self.remote_ops.remove(&token);
                match result {
                    Ok((id, conn)) => {
                        let mut installed = false;
                        if let Some(op) = &op {
                            if let RemoteKind::Connect { fd } = op.kind {
                                if let Ok(file) = self
                                    .tasks
                                    .get(&op.pid)
                                    .map(|t| t.files.get(fd))
                                    .unwrap_or(Err(Errno::EBADF))
                                {
                                    file.set_kind(FileKind::SocketStream {
                                        connection: id,
                                        side: SocketSide::Client,
                                    });
                                    installed = true;
                                }
                            }
                        }
                        self.remote_connections.insert(id, conn);
                        if let Some(op) = op {
                            let result = if installed {
                                SysResult::Ok
                            } else {
                                SysResult::Err(Errno::EBADF)
                            };
                            self.complete(op.pid, op.reply, result);
                        }
                        // The recount records the client endpoints and ships
                        // the snapshot to the owner; FIFO ordering makes it
                        // land before the ack that drops the owner's pin.
                        self.recompute_endpoints();
                        self.send_shard(shard::connection_shard(id), ShardMsg::ConnectAck { connection: id });
                    }
                    Err(errno) => {
                        if let Some(op) = op {
                            self.complete(op.pid, op.reply, SysResult::Err(errno));
                        }
                    }
                }
            }
            ShardMsg::ConnectAck { connection } => {
                self.remote_client_pins.remove(&connection);
                self.recompute_endpoints();
            }
            ShardMsg::PollQuery { stream, from_shard } => {
                let answer = match self.streams.get(stream) {
                    None => ShardMsg::PollAnswer {
                        stream,
                        readable: false,
                        eof: false,
                        writable: false,
                        epipe: false,
                        gone: true,
                    },
                    Some(s) => ShardMsg::PollAnswer {
                        stream,
                        readable: !s.is_empty(),
                        eof: s.write_end_closed(),
                        writable: s.space() > 0,
                        epipe: s.read_end_closed(),
                        gone: false,
                    },
                };
                self.send_shard(from_shard, answer);
            }
            ShardMsg::PollAnswer {
                stream,
                readable,
                eof,
                writable,
                epipe,
                gone,
            } => {
                let revents = RemoteRevents {
                    readable,
                    eof,
                    writable,
                    epipe,
                    gone,
                };
                // Wake local pollers of this stream only when the snapshot
                // *changed*: an unconditional wake would re-query on repark
                // and ping-pong with the owner forever, while a silent cache
                // update would be a lost wakeup (the scavenger would find a
                // completable poll nobody woke).  A retry triggered by a
                // change either completes or reparks; the repark's re-query
                // returns the same snapshot, so the exchange terminates.
                let changed = self.remote_revents_cache.insert(stream, revents).map(|old| {
                    (old.readable, old.eof, old.writable, old.epipe, old.gone) != (readable, eof, writable, epipe, gone)
                });
                if changed.unwrap_or(true) {
                    self.stats.cross_shard_wakeups += 1;
                    self.wake(WaitChannel::StreamReadable(stream));
                    self.wake(WaitChannel::StreamWritable(stream));
                }
            }
            ShardMsg::RemoteEndpoints { from_shard, snapshot } => {
                let contrib: HashMap<StreamId, (u32, u32)> =
                    snapshot.into_iter().map(|(id, r, w)| (id, (r, w))).collect();
                self.remote_contribs.insert(from_shard, contrib);
                self.recompute_endpoints();
            }
        }
    }

    // ---- syscall rings -------------------------------------------------------

    /// Registers a persistent ring pair for `pid`, validating the geometry
    /// against the shared heap the task registered earlier.
    fn sys_ring_setup(&mut self, pid: Pid, geo: RingGeometry) -> Outcome {
        let Some(task) = self.tasks.get_mut(&pid) else {
            return Outcome::Complete(SysResult::Err(Errno::ESRCH));
        };
        let Some(heap) = task.sync_heap.as_ref() else {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        };
        if !geo.validate(heap.sab.len()) {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        task.ring = Some(Ring::new(heap.sab.clone(), geo));
        Outcome::Complete(SysResult::Ok)
    }

    /// Drains every live task's submission queue (the per-iteration backstop).
    fn drain_rings(&mut self) {
        let pids: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.is_alive() && t.ring.is_some())
            .map(|t| t.pid)
            .collect();
        for pid in pids {
            self.drain_ring(pid);
        }
    }

    /// Drains one task's submission queue dry, dispatching each entry and
    /// posting its completion (or parking a waiter) as it goes, then parks
    /// the queue by setting `NEED_WAKEUP`.
    ///
    /// The park re-checks for entries that raced in after the flag was set:
    /// their submitter saw the flag still clear and suppressed its doorbell,
    /// so they must be consumed by this pass — this loop is what guarantees
    /// a non-empty queue never goes undrained.
    fn drain_ring(&mut self, pid: Pid) {
        let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
            return;
        };
        self.flush_pending_cqes(pid, &ring);
        loop {
            while let Some((user_data, payload)) = ring.pop_sqe() {
                self.stats.sq_polled += 1;
                if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                    return;
                }
                let mut r = Reader::new(&payload);
                let Some(call) = Syscall::decode_from(&mut r) else {
                    self.post_ring_completion(pid, user_data, SysResult::Err(Errno::EINVAL));
                    continue;
                };
                self.stats.record_syscall(call.name(), call.class(), true);
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.syscall_count += 1;
                }
                let reply = ReplyTo::Ring { user_data };
                match self.dispatch(pid, reply, call) {
                    Outcome::Complete(result) => self.post_ring_completion(pid, user_data, result),
                    Outcome::Blocked => {}
                    // `exit` tears the task down; nothing further to drain.
                    Outcome::NoReply => return,
                }
            }
            ring.set_need_wakeup();
            if ring.sq_is_empty() {
                break;
            }
            ring.clear_need_wakeup();
        }
    }

    /// Scavenger-mode enforcement that a non-empty submission queue never
    /// goes undrained: re-drain every ring until it is observed empty.
    ///
    /// An entry visible here either arrived after this iteration's backstop
    /// drain (its doorbell may still be in flight — consuming it early is
    /// harmless) or would have been lost; the loop guarantees neither
    /// survives to the next sleep.  No flag/emptiness assertion is made
    /// against shared state: submitters publish entries and consult the
    /// doorbell flag in two separate steps, so a transient
    /// "non-empty with `NEED_WAKEUP` set" is legal mid-publish.  The strict
    /// single-threaded invariant (a drained queue is empty with the flag
    /// set) is asserted by the deterministic ring model property test.
    #[cfg(feature = "scavenger")]
    fn scavenge_rings(&mut self) {
        let pids: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.is_alive() && t.ring.is_some())
            .map(|t| t.pid)
            .collect();
        for pid in pids {
            loop {
                let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
                    break;
                };
                if ring.sq_is_empty() {
                    break;
                }
                self.drain_ring(pid);
                if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                    break;
                }
            }
        }
    }

    /// Posts one ring completion, spilling to the task's overflow queue when
    /// the completion queue is full or no registered buffer is free.
    fn post_ring_completion(&mut self, pid: Pid, user_data: u32, result: SysResult) {
        let Some(ring) = self.tasks.get(&pid).and_then(|t| t.ring.clone()) else {
            return;
        };
        // Preserve completion order across overflow: new completions queue
        // behind any that are still waiting for a slot or buffer.
        let had_pending = self
            .tasks
            .get(&pid)
            .map(|t| !t.pending_cqes.is_empty())
            .unwrap_or(false);
        if had_pending {
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.pending_cqes.push_back((user_data, result));
            }
            self.flush_pending_cqes(pid, &ring);
            return;
        }
        if let Err(result) = self.try_post_cqe(&ring, user_data, result) {
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.pending_cqes.push_back((user_data, result));
            }
        }
    }

    /// Retries overflowed completions in FIFO order until one still fails.
    fn flush_pending_cqes(&mut self, pid: Pid, ring: &Ring) {
        loop {
            let Some((user_data, result)) = self.tasks.get_mut(&pid).and_then(|t| t.pending_cqes.pop_front()) else {
                return;
            };
            if let Err(result) = self.try_post_cqe(ring, user_data, result) {
                if let Some(task) = self.tasks.get_mut(&pid) {
                    task.pending_cqes.push_front((user_data, result));
                }
                return;
            }
        }
    }

    /// Encodes one result into a completion-queue entry and publishes it.
    ///
    /// Bulk `Data` results that exceed the slot's payload capacity travel by
    /// registered buffer instead: the bytes go into a free buffer and the
    /// entry carries a 12-byte [`SysResult::DataFixed`] reference.
    ///
    /// # Errors
    ///
    /// Returns the result back when it cannot be posted right now (queue
    /// full, or no registered buffer free for an oversized payload); the
    /// caller keeps it in the task's overflow queue.
    fn try_post_cqe(&mut self, ring: &Ring, user_data: u32, result: SysResult) -> Result<(), SysResult> {
        if ring.cq_space() == 0 {
            return Err(result);
        }
        let mut frame = Vec::with_capacity(16);
        result.encode_into(&mut frame);
        let mut fixed_buf = None;
        if frame.len() > ring.geometry().slot_payload_bytes() {
            let SysResult::Data(data) = result else {
                // Non-bulk results are bounded by the client's routing policy
                // (large-result calls use the framed transport); a breach is
                // a kernel bug, not a guest error.
                debug_assert!(false, "oversized non-Data ring completion");
                return Err(result);
            };
            if data.len() > ring.geometry().buf_bytes as usize {
                debug_assert!(false, "ring read larger than a registered buffer");
                return Err(SysResult::Data(data));
            }
            let Some(buf) = ring.alloc_buf() else {
                return Err(SysResult::Data(data));
            };
            if !ring.write_buf(buf, &data) {
                ring.free_buf(buf);
                return Err(SysResult::Data(data));
            }
            frame.clear();
            SysResult::DataFixed {
                buf,
                len: data.len() as u32,
            }
            .encode_into(&mut frame);
            fixed_buf = Some(buf);
        }
        if ring.push_cqe(user_data, &frame) {
            self.stats.cq_posted += 1;
            Ok(())
        } else {
            if let Some(buf) = fixed_buf {
                ring.free_buf(buf);
            }
            // The queue filled between the space check and the push (it
            // cannot — both run on this thread — but stay defensive).
            Err(SysResult::Err(Errno::EINVAL))
        }
    }

    // ---- system-call entry ---------------------------------------------------

    fn handle_syscall(&mut self, pid: Pid, transport: Transport) {
        let sync = transport.is_sync();
        let wire_bytes = transport.payload_len();
        let seq = match &transport {
            Transport::Async { seq, .. } => *seq,
            Transport::Sync { .. } => 0,
        };
        match self.tasks.get_mut(&pid) {
            None => return,
            Some(task) if task.is_stopped() => {
                // A stopped process's system calls are not serviced: stash
                // the batch and replay it (in order) when SIGCONT arrives.
                // The worker blocks awaiting the reply, which is exactly the
                // "frozen at a syscall boundary" stop semantics.
                task.stashed_transports.push(transport);
                return;
            }
            Some(_) => {}
        }
        let Some(batch) = transport.decode_batch() else {
            // An undecodable frame (corruption, codec-version skew) must
            // still produce a reply: a sync-convention process has already
            // armed its wake word and would otherwise hang forever.
            let error = CompletionBatch {
                completions: vec![Completion {
                    index: 0,
                    result: SysResult::Err(Errno::EINVAL),
                }],
            };
            self.deliver_payload(pid, sync, seq, error.encode());
            return;
        };
        if batch.is_empty() {
            return;
        }
        self.stats.record_batch(batch.len(), sync, wire_bytes);
        if let Some(task) = self.tasks.get_mut(&pid) {
            task.inflight = Some(InflightBatch {
                seq,
                sync,
                total: batch.len() as u32,
                completions: Vec::with_capacity(batch.len()),
            });
        }
        for (index, call) in batch.entries.into_iter().enumerate() {
            // A mid-batch self-stop keeps dispatching the remaining entries:
            // abandoning them would leave the batch incomplete and hang the
            // worker in `Atomics.wait` even after SIGCONT.  Only exit (which
            // consumes the batch via `NoReply`) ends it early.
            if !self.tasks.get(&pid).map(Task::is_alive).unwrap_or(false) {
                return;
            }
            self.stats.record_syscall(call.name(), call.class(), sync);
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.syscall_count += 1;
            }
            let reply = ReplyTo::Batch { index: index as u32 };
            match self.dispatch(pid, reply, call) {
                Outcome::Complete(result) => self.record_completion(pid, reply, result),
                // Blocked entries peel off into the pending list and complete
                // individually; `exit` consumes the rest of the batch.
                Outcome::Blocked => {}
                Outcome::NoReply => return,
            }
        }
        self.maybe_deliver_batch(pid);
    }

    // ---- reply paths ---------------------------------------------------------

    /// Completes one entry (used by the pending list when a blocked entry
    /// finally finishes): a batch entry files into the in-flight batch and
    /// delivers it if it was the last one; a ring entry posts straight to
    /// the submitter's completion queue.
    pub(crate) fn complete(&mut self, pid: Pid, reply: ReplyTo, result: SysResult) {
        match reply {
            ReplyTo::Batch { .. } => {
                self.record_completion(pid, reply, result);
                self.maybe_deliver_batch(pid);
            }
            ReplyTo::Ring { user_data } => self.post_ring_completion(pid, user_data, result),
        }
    }

    /// Files an entry's result into the task's in-flight batch.
    fn record_completion(&mut self, pid: Pid, reply: ReplyTo, result: SysResult) {
        let ReplyTo::Batch { index } = reply else { return };
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        let Some(inflight) = task.inflight.as_mut() else { return };
        inflight.completions.push(Completion { index, result });
    }

    /// Delivers the task's in-flight batch once every entry has completed:
    /// one response message (asynchronous convention) or one shared-heap
    /// write + notify (synchronous convention), either way carrying the same
    /// encoded [`CompletionBatch`] frame.  The receiving client places each
    /// completion by its index, so no ordering is imposed here.
    fn maybe_deliver_batch(&mut self, pid: Pid) {
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        if !task.inflight.as_ref().map(InflightBatch::is_complete).unwrap_or(false) {
            return;
        }
        let inflight = task.inflight.take().expect("checked above");
        let payload = CompletionBatch {
            completions: inflight.completions,
        }
        .encode();
        self.deliver_payload(pid, inflight.sync, inflight.seq, payload);
    }

    /// Sends an encoded [`CompletionBatch`] frame over the given convention.
    fn deliver_payload(&mut self, pid: Pid, sync: bool, seq: u64, payload: Vec<u8>) {
        if sync {
            let Some(heap) = self.tasks.get(&pid).and_then(|t| t.sync_heap.clone()) else {
                return;
            };
            // [u32 length][frame] at resp_offset, then wake the process.
            let _ = heap
                .sab
                .write_bytes(heap.resp_offset, &(payload.len() as u32).to_le_bytes());
            let _ = heap.sab.write_bytes(heap.resp_offset + 4, &payload);
            let _ = heap.sab.store_and_notify(heap.wake_offset, 1);
        } else {
            let msg = Message::map()
                .with("type", "syscall-response")
                .with("seq", seq as i64)
                .with("completions", payload);
            self.post_to_worker(pid, msg);
        }
    }

    /// Posts a message to a process's worker, recording the copy cost.
    pub(crate) fn post_to_worker(&mut self, pid: Pid, msg: Message) {
        let bytes = msg.byte_size();
        if let Some(task) = self.tasks.get(&pid) {
            if let Some(worker) = &task.worker {
                if worker.post_message(msg).is_ok() {
                    self.stats.record_message_to_worker(bytes);
                }
            }
        }
    }

    // ---- host API ------------------------------------------------------------

    fn handle_host_request(&mut self, request: HostRequest) {
        match request {
            HostRequest::Spawn {
                path,
                args,
                env,
                cwd,
                stdout,
                stderr,
                reply,
            } => {
                let result = self.host_spawn(&path, args, env, &cwd, stdout, stderr);
                let _ = reply.send(result);
            }
            HostRequest::Kill { pid, signal, reply } => {
                let result = self.send_signal(pid, signal);
                let _ = reply.send(result);
            }
            HostRequest::SignalForeground { signal, reply } => {
                let result = self.signal_foreground(signal);
                let _ = reply.send(result);
            }
            HostRequest::WatchExit { pid, reply } => {
                if let Some(&status) = self.exit_records.get(&pid) {
                    let _ = reply.send(status);
                } else if self.tasks.get(&pid).map(|t| t.wait_status()).unwrap_or(None).is_some() {
                    let status = self.tasks[&pid].wait_status().unwrap_or(0);
                    let _ = reply.send(status);
                } else if self.tasks.contains_key(&pid) {
                    self.exit_watchers.entry(pid).or_default().push(reply);
                } else {
                    // Unknown pid: report a generic failure status so callers
                    // do not hang.
                    let _ = reply.send(encode_wait_status(Some(127), None));
                }
            }
            HostRequest::HttpRequest { port, request, reply } => {
                self.host_http_request(port, request, reply);
            }
            HostRequest::SubscribePortListen { listener } => {
                self.router.subscribe_port_listen(listener);
            }
            HostRequest::ListeningPorts { reply } => {
                let _ = reply.send(self.router.claimed_ports());
            }
            HostRequest::ReadStats { reply } => {
                // Raw per-shard snapshot: the host merges all shards and then
                // attaches the (shared) VFS cache counters exactly once.
                let _ = reply.send(self.stats.clone());
            }
            HostRequest::ListTasks { reply } => {
                let mut tasks: Vec<(Pid, Pid, String, String)> = self
                    .tasks
                    .values()
                    .map(|t| {
                        let state = match t.state {
                            TaskState::Running => "running".to_owned(),
                            TaskState::Stopped { .. } => "stopped".to_owned(),
                            TaskState::Zombie { .. } => "zombie".to_owned(),
                        };
                        (t.pid, t.ppid, t.name.clone(), state)
                    })
                    .collect();
                tasks.sort_by_key(|(pid, ..)| *pid);
                let _ = reply.send(tasks);
            }
        }
    }

    fn host_spawn(
        &mut self,
        path: &str,
        args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: &str,
        stdout: OutputSink,
        stderr: OutputSink,
    ) -> Result<Pid, Errno> {
        let stdout_fd = self.new_host_sink(stdout);
        let stderr_fd = self.new_host_sink(stderr);
        // Host-started processes read from the controlling terminal, which
        // is what routes SIGTTIN to background readers.
        let stdin = OpenFile::new(FileKind::Tty);
        let mut merged_env = self.default_env.clone();
        for (k, v) in env {
            merged_env.retain(|(existing, _)| existing != &k);
            merged_env.push((k, v));
        }
        self.spawn_process(
            0,
            path,
            args,
            merged_env,
            cwd,
            [stdin, stdout_fd, stderr_fd],
            None,
            None,
        )
    }

    /// Creates a host-sink open file: writes are forwarded to the callback.
    /// Sinks live in the router so a descriptor inherited by a process on
    /// another shard still resolves.
    pub(crate) fn new_host_sink(&mut self, sink: OutputSink) -> Arc<OpenFile> {
        let id = self.router.new_sink(sink);
        OpenFile::new(FileKind::HostSink { stream: id })
    }

    pub(crate) fn host_sink(&self, id: u64) -> Option<OutputSink> {
        self.router.sink(id)
    }

    // ---- process lifecycle -----------------------------------------------------

    /// Creates a task and its worker, returning the new pid.
    ///
    /// Placement: forks stay on the parent's shard (the copied descriptor
    /// table and COW image stay local); everything else round-robins across
    /// shards via the router, deterministically in spawn order.  A
    /// cross-shard spawn resolves the executable here (the mount table is
    /// shared), pre-allocates the pid, pins the stdio descriptors until the
    /// owner acks, and returns the pid immediately — exactly like a local
    /// spawn, whose worker also has not run yet when `spawn` returns.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_process(
        &mut self,
        ppid: Pid,
        path: &str,
        mut args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: &str,
        stdio: [Arc<OpenFile>; 3],
        fork_image: Option<ForkImage>,
        forced_launcher: Option<Arc<dyn ProgramLauncher>>,
    ) -> Result<Pid, Errno> {
        let keep_local = fork_image.is_some() || forced_launcher.is_some();
        let (launcher, file_bytes) = match forced_launcher {
            Some(launcher) => (launcher, None),
            None => {
                let resolved = resolve_executable(self.fs.as_ref(), &self.registry, path)?;
                if !resolved.prepend_args.is_empty() {
                    let mut new_args = resolved.prepend_args.clone();
                    new_args.extend(args.into_iter().skip(1));
                    args = new_args;
                }
                (resolved.launcher, resolved.file_bytes)
            }
        };

        let target = if keep_local || self.nshards == 1 {
            self.shard_id
        } else {
            self.router.place_spawn()
        };
        let pid = self.router.allocate_pid(target);
        // Children join their parent's process group; host-started processes
        // lead a fresh group of their own.
        let pgid = self.tasks.get(&ppid).map(|p| p.pgid).unwrap_or(pid);
        self.router.register_process(pid, target, pgid);
        let name = browsix_fs::path::basename(path);

        if target == self.shard_id {
            let blob_url = file_bytes.map(|bytes| self.blobs.create_url(bytes));
            self.install_task(
                pid, ppid, pgid, &name, path, cwd, args, env, stdio, blob_url, fork_image, launcher,
            );
            if let Some(parent) = self.tasks.get_mut(&ppid) {
                parent.children.push(pid);
            }
            self.recompute_endpoints();
        } else {
            let token = self.next_remote_token();
            // Pin the stdio descriptions: the endpoint recount treats them
            // as live references until the owner has installed the child.
            self.pinned_files.insert(token, stdio.to_vec());
            self.send_shard(
                target,
                ShardMsg::SpawnTask {
                    token,
                    origin: self.shard_id,
                    pid,
                    ppid,
                    pgid,
                    name,
                    path: path.to_owned(),
                    cwd: cwd.to_owned(),
                    args,
                    env,
                    launcher,
                    file_bytes,
                    stdio,
                },
            );
            if let Some(parent) = self.tasks.get_mut(&ppid) {
                parent.children.push(pid);
            }
            self.recompute_endpoints();
        }
        Ok(pid)
    }

    /// Installs a fully-resolved task on this shard: task-table entry,
    /// worker thread and init message.  The caller pushes the child onto
    /// its parent's `children` (the parent may live on another shard) and
    /// recomputes endpoints.
    #[allow(clippy::too_many_arguments)]
    fn install_task(
        &mut self,
        pid: Pid,
        ppid: Pid,
        pgid: Pid,
        name: &str,
        path: &str,
        cwd: &str,
        args: Vec<String>,
        env: Vec<(String, String)>,
        stdio: [Arc<OpenFile>; 3],
        blob_url: Option<String>,
        fork_image: Option<ForkImage>,
        launcher: Arc<dyn ProgramLauncher>,
    ) {
        let mut task = Task::new(pid, ppid, name, path, cwd);
        task.pgid = pgid;
        task.args = args.clone();
        task.env = env.clone();
        task.launcher = Some(Arc::clone(&launcher));
        for (i, file) in stdio.into_iter().enumerate() {
            task.files.insert_at(i as Fd, file);
        }

        // The worker script: hand the scope and kernel channel to the
        // launcher, which will wait for the init message before running
        // main.  The channel is *this shard's* queue, so every syscall and
        // doorbell of the process lands on its owning shard directly.
        let kernel_tx = self.events_tx.clone();
        let config = self.config.clone();
        let launcher_for_worker = Arc::clone(&launcher);
        let worker = Worker::spawn(
            &self.config,
            &format!("pid{pid}-{name}"),
            Box::new(move |scope: WorkerScope| {
                let ctx = LaunchContext {
                    pid,
                    config,
                    kernel: kernel_tx,
                    scope,
                };
                launcher_for_worker.launch(ctx);
            }),
        );
        task.worker = Some(worker);
        self.tasks.insert(pid, task);
        self.stats.processes_spawned += 1;

        // Init message: argument vector, environment, cwd, blob URL and (for
        // fork) the guest memory snapshot.
        let env_msgs: Vec<Message> = env
            .iter()
            .map(|(k, v)| Message::Array(vec![Message::from(k.as_str()), Message::from(v.as_str())]))
            .collect();
        let mut init = Message::map()
            .with("type", "init")
            .with("args", Message::from(args))
            .with("env", Message::Array(env_msgs))
            .with("cwd", cwd);
        if let Some(url) = blob_url {
            init = init.with("blob_url", url.as_str());
        }
        if let Some(image) = fork_image {
            init = init
                .with("fork_image", image.image)
                .with("fork_resume", image.resume_point as i64);
        }
        self.post_to_worker(pid, init);
    }

    /// Marks a task as exited: zombie state, worker termination, descriptor
    /// cleanup, SIGCHLD, exit notifications and wait-queue wakeups.
    pub(crate) fn finish_task(&mut self, pid: Pid, status: i32) {
        let Some(task) = self.tasks.get_mut(&pid) else { return };
        if task.is_zombie() {
            return;
        }
        task.state = TaskState::Zombie { status };
        if let Some(worker) = task.worker.take() {
            worker.terminate();
        }
        // The ring dies with the process: nobody is left to consume its
        // completion queue.
        task.ring = None;
        task.pending_cqes.clear();
        task.files.clear();
        // Tear down the address space: COW pages shared with live siblings
        // survive (their Arc count stays positive); sole-owner pages are
        // freed, and the scavenger feature asserts both directions.
        task.address_space.release();
        let ppid = task.ppid;
        let children: Vec<Pid> = task.children.clone();
        self.stats.processes_exited += 1;
        self.exit_records.insert(pid, status);
        // A finished pid disappears from the router registry: signals and
        // getpgid from any shard now report ESRCH, matching the local
        // zombie rules.
        self.router.remove_process(pid);

        // The dead process's own blocked system calls have nobody left to
        // receive their completions: drop them before any wakeups run.
        self.drop_waiters_of(pid);

        // Close any listeners the process owned, waking their accept queues
        // so foreign waiters (dup'd listeners) retry against the closed port.
        let owned_ports: Vec<u16> = self
            .sockets
            .listening_ports()
            .into_iter()
            .filter(|port| self.sockets.listener_owner(*port) == Some(pid))
            .collect();
        for port in owned_ports {
            self.sockets.close_listener(port);
            self.router.release_port(port, self.shard_id);
            self.wake(WaitChannel::Listener(port));
        }

        // Reparent children to the kernel (pid 0) and reap any that are
        // already zombies — there is no init process to do it.  Children on
        // other shards get an explicit reparent message; their shipped
        // zombie/stop records die with this parent.
        for child in children {
            if shard::shard_of(child, self.nshards) == self.shard_id {
                if let Some(child_task) = self.tasks.get_mut(&child) {
                    child_task.ppid = 0;
                    if child_task.is_zombie() {
                        self.tasks.remove(&child);
                    }
                }
            } else if self.router.process_shard(child).is_some() {
                self.send_shard(shard::shard_of(child, self.nshards), ShardMsg::Reparent { child });
            }
            self.remote_zombies.remove(&child);
            self.remote_stops.remove(&child);
        }

        // Wake host watchers.
        if let Some(watchers) = self.exit_watchers.remove(&pid) {
            for watcher in watchers {
                let _ = watcher.send(status);
            }
        }

        // Notify the parent.
        let parent_shard = if ppid == 0 {
            None
        } else {
            Some(shard::shard_of(ppid, self.nshards))
        };
        match parent_shard {
            Some(s) if s != self.shard_id => {
                // Remote parent: ship the zombie.  The wait status travels
                // in the message and the parent's shard reaps from its
                // `remote_zombies` table; this shard is done with the task
                // either way (a dead remote parent just drops the record —
                // the exit status survives in `exit_records`).
                self.tasks.remove(&pid);
                self.send_shard(s, ShardMsg::ChildExited { pid, ppid, status });
            }
            Some(_) if self.tasks.contains_key(&ppid) => {
                let _ = self.send_signal(ppid, Signal::SIGCHLD);
            }
            _ => {
                // Host-owned process (or local parent already gone): nobody
                // will call wait4, reap immediately.
                self.tasks.remove(&pid);
            }
        }

        // Dropping the descriptor table may have closed stream endpoints;
        // the recount wakes exactly the streams whose EOF/EPIPE state
        // changed.  A parent blocked in wait4 parks on its own ChildOf
        // queue, so only that queue is woken for the exit itself.
        self.recompute_endpoints();
        if parent_shard == Some(self.shard_id) {
            self.wake(WaitChannel::ChildOf(ppid));
        }
    }

    /// Sends `signal` to `target`: the single entry point for every signal
    /// in the system — `kill(2)` from processes, the host API, kernel-raised
    /// SIGPIPE/SIGCHLD/SIGTTIN, and terminal job control all arrive here.
    ///
    /// A signal blocked by the target's `sigprocmask` parks in its pending
    /// set and is dispatched (exactly once) when unblocked; everything else
    /// dispatches immediately.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if the target does not exist or has already exited.
    pub(crate) fn send_signal(&mut self, target: Pid, signal: Signal) -> Result<(), Errno> {
        let Some(task) = self.tasks.get_mut(&target) else {
            return Err(Errno::ESRCH);
        };
        if task.is_zombie() {
            return Err(Errno::ESRCH);
        }
        self.stats.signals_sent += 1;
        // Stop signals and SIGCONT discard each other from the pending set.
        let mut resumes = false;
        match signal.default_disposition() {
            SignalDisposition::Stop => task.signals.discard_pending_continue(),
            SignalDisposition::Continue => {
                task.signals.discard_pending_stops();
                resumes = true;
            }
            _ => {}
        }
        let admitted = task.signals.admit(signal);
        if resumes {
            // SIGCONT resumes a stopped process even when blocked, ignored
            // or caught (POSIX); only its *delivery* to a handler obeys the
            // mask and disposition.  Without this, a stopped job that had
            // blocked SIGCONT could never be resumed — not even to unblock.
            self.continue_task(target);
        }
        if !admitted {
            // Blocked: parked in the pending set, delivered on unblock.
            return Ok(());
        }
        self.dispatch_signal(target, signal);
        Ok(())
    }

    /// Sends `signal` to every live member of process group `pgid`.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if the group has no live members.
    pub(crate) fn signal_pgroup(&mut self, pgid: Pid, signal: Signal) -> Result<(), Errno> {
        if self.nshards == 1 {
            let targets: Vec<Pid> = self
                .tasks
                .values()
                .filter(|t| t.is_alive() && t.pgid == pgid)
                .map(|t| t.pid)
                .collect();
            if targets.is_empty() {
                return Err(Errno::ESRCH);
            }
            for pid in targets {
                let _ = self.send_signal(pid, signal);
            }
            return Ok(());
        }
        // The group may span shards: the router registry (live processes
        // only) is the membership authority; remote members get the signal
        // by message, in deterministic pid order.
        let members = self.router.group_members(pgid);
        if members.is_empty() {
            return Err(Errno::ESRCH);
        }
        for (pid, shard) in members {
            if shard == self.shard_id {
                let _ = self.send_signal(pid, signal);
            } else {
                self.send_shard(shard, ShardMsg::SignalPid { pid, signal });
            }
        }
        Ok(())
    }

    /// Sends `signal` to the foreground process group of the controlling
    /// terminal (what `Ctrl-C`/`Ctrl-Z` do).
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if no foreground group is set or it has no members.
    pub(crate) fn signal_foreground(&mut self, signal: Signal) -> Result<(), Errno> {
        match self.router.foreground_pgid() {
            Some(pgid) => self.signal_pgroup(pgid, signal),
            None => Err(Errno::ESRCH),
        }
    }

    /// The foreground process group, if one has been set with `tcsetpgrp`.
    /// There is a single controlling terminal for the whole fleet, so the
    /// group lives in the router.
    pub(crate) fn foreground_pgid(&self) -> Option<Pid> {
        self.router.foreground_pgid()
    }

    pub(crate) fn set_foreground_pgid(&mut self, pgid: Option<Pid>) {
        self.router.set_foreground_pgid(pgid);
    }

    /// Applies an unblocked (or never-blocked) signal to its target: runs the
    /// installed handler's delivery, or the default disposition.
    pub(crate) fn dispatch_signal(&mut self, target: Pid, signal: Signal) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if task.is_zombie() {
            return;
        }
        match task.signals.action(signal) {
            SigAction::Ignore => return,
            SigAction::Handler { restart } => {
                self.stats.signals_delivered += 1;
                // A caught SIGCONT still resumes a stopped process before the
                // handler observes it, as on Linux.
                if signal == Signal::SIGCONT {
                    self.continue_task(target);
                }
                let msg = Message::map()
                    .with("type", "signal")
                    .with("signal", signal.number() as i64)
                    .with("name", signal.name());
                self.post_to_worker(target, msg);
                if !restart {
                    // The handler interrupts the process's blocked system
                    // calls with EINTR; SA_RESTART leaves them parked, which
                    // is this kernel's restart.
                    self.interrupt_waiters_of(target);
                    // A signal that should interrupt a parked waiter must
                    // never leave one parked.
                    #[cfg(feature = "scavenger")]
                    debug_assert_eq!(
                        self.waiters.count_matching(|w| w.pid == target),
                        0,
                        "signal delivery left a waiter of pid {target} parked without SA_RESTART"
                    );
                }
                return;
            }
            SigAction::Default => {}
        }
        match signal.default_disposition() {
            SignalDisposition::Ignore => {}
            SignalDisposition::Terminate => {
                self.stats.signals_delivered += 1;
                self.finish_task(target, encode_wait_status(None, Some(signal)));
            }
            SignalDisposition::Stop => {
                self.stats.signals_delivered += 1;
                self.stop_task(target, signal);
            }
            SignalDisposition::Continue => {
                self.stats.signals_delivered += 1;
                self.continue_task(target);
            }
        }
    }

    /// Completes every blocked system call of `target` with `EINTR` (the
    /// wait-queue side of signal delivery).  Kernel-internal HTTP clients
    /// run as pid 0 and are never signalled, so they cannot match.
    pub(crate) fn interrupt_waiters_of(&mut self, target: Pid) {
        debug_assert_ne!(target, 0, "pid 0 is reserved for kernel-internal waiters");
        for waiter in self.waiters.take_matching(|w| w.pid == target) {
            self.stats.eintr_wakeups += 1;
            if let Some(reply) = waiter.reply {
                self.complete(target, reply, SysResult::Err(Errno::EINTR));
            }
        }
        // Reads/writes executing on foreign shards take EINTR too: cancel
        // at the owner (a racing completion finds no token and is dropped)
        // and complete here.  Connects are exempt — their reply installs
        // the connection, and abandoning it would leak the server-side
        // streams the owner already created.
        let tokens: Vec<u64> = self
            .remote_ops
            .iter()
            .filter(|(_, op)| op.pid == target && !matches!(op.kind, RemoteKind::Connect { .. }))
            .map(|(&token, _)| token)
            .collect();
        for token in tokens {
            let Some(op) = self.remote_ops.remove(&token) else {
                continue;
            };
            self.stats.eintr_wakeups += 1;
            self.send_shard(op.owner, ShardMsg::CancelOp { token });
            self.complete(op.pid, op.reply, SysResult::Err(Errno::EINTR));
        }
    }

    /// Suspends a running task (default disposition of the stop signals):
    /// the parent gets SIGCHLD and its `WUNTRACED` waiters wake.
    fn stop_task(&mut self, target: Pid, signal: Signal) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if !task.is_running() {
            return;
        }
        task.state = TaskState::Stopped { signal };
        task.stop_reported = false;
        let ppid = task.ppid;
        if ppid != 0 && shard::shard_of(ppid, self.nshards) != self.shard_id {
            if self.router.process_shard(ppid).is_some() {
                self.send_shard(
                    shard::shard_of(ppid, self.nshards),
                    ShardMsg::ChildStopped {
                        pid: target,
                        ppid,
                        signal,
                    },
                );
            }
        } else if ppid != 0 && self.tasks.contains_key(&ppid) {
            let _ = self.send_signal(ppid, Signal::SIGCHLD);
            self.wake(WaitChannel::ChildOf(ppid));
        }
    }

    /// Resumes a stopped task (SIGCONT): replays the system-call batches
    /// stashed while it was suspended, in arrival order.
    fn continue_task(&mut self, target: Pid) {
        let Some(task) = self.tasks.get_mut(&target) else {
            return;
        };
        if !task.is_stopped() {
            return;
        }
        task.state = TaskState::Running;
        task.stop_reported = false;
        let ppid = task.ppid;
        let stashed = std::mem::take(&mut task.stashed_transports);
        // A remote parent's not-yet-reported stop record is withdrawn (the
        // local equivalent is the running state clearing `stop_signal`).
        if ppid != 0
            && shard::shard_of(ppid, self.nshards) != self.shard_id
            && self.router.process_shard(ppid).is_some()
        {
            self.send_shard(
                shard::shard_of(ppid, self.nshards),
                ShardMsg::ChildContinued { pid: target, ppid },
            );
        }
        for transport in stashed {
            self.handle_syscall(target, transport);
        }
    }

    // ---- shared helpers --------------------------------------------------------

    pub(crate) fn task(&self, pid: Pid) -> Result<&Task, Errno> {
        self.tasks.get(&pid).ok_or(Errno::ESRCH)
    }

    pub(crate) fn task_mut(&mut self, pid: Pid) -> Result<&mut Task, Errno> {
        self.tasks.get_mut(&pid).ok_or(Errno::ESRCH)
    }

    pub(crate) fn fs(&self) -> &MountedFs {
        self.fs.as_ref()
    }

    pub(crate) fn streams_mut(&mut self) -> &mut StreamTable {
        &mut self.streams
    }

    pub(crate) fn streams(&self) -> &StreamTable {
        &self.streams
    }

    pub(crate) fn sockets_mut(&mut self) -> &mut SocketTable {
        &mut self.sockets
    }

    pub(crate) fn sockets(&self) -> &SocketTable {
        &self.sockets
    }

    pub(crate) fn notify_port_listen(&mut self, port: u16) {
        self.router.notify_port_listen(port);
    }

    /// Resolves a path relative to a task's working directory.
    pub(crate) fn resolve_path(&self, pid: Pid, path: &str) -> String {
        let cwd = self.tasks.get(&pid).map(|t| t.cwd.as_str()).unwrap_or("/");
        browsix_fs::path::resolve(cwd, path)
    }

    /// Recomputes every stream's reader/writer endpoint counts by scanning
    /// all live descriptor tables (plus the kernel's internal HTTP clients).
    /// This is the reference counting that decides EOF and EPIPE — and the
    /// EOF/EPIPE *transitions* it discovers wake exactly the wait queues of
    /// the streams that changed (readers of a stream whose last writer
    /// closed, writers of a stream whose last reader closed).
    ///
    /// With multiple shards the scan is local but the count is global: local
    /// descriptors that refer to a *foreign* stream are accumulated per owner
    /// shard and published as a [`ShardMsg::RemoteEndpoints`] snapshot (only
    /// when it changed), while contributions previously received from peers
    /// about *our* streams are folded into the local totals.  Every shard
    /// therefore converges on the true global endpoint counts without any
    /// shared lock on the data path.
    pub(crate) fn recompute_endpoints(&mut self) {
        let before = self.streams.endpoint_snapshot();
        self.streams.reset_endpoint_counts();
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut kinds: Vec<FileKind> = Vec::new();
        for task in self.tasks.values() {
            // Stopped tasks still hold their descriptors: a stopped job's
            // pipes must not report EOF/EPIPE while it is suspended.
            if task.is_zombie() {
                continue;
            }
            for (_, file) in task.files.iter() {
                let key = Arc::as_ptr(file) as usize;
                if seen.insert(key) {
                    kinds.push(file.kind());
                }
            }
        }
        // Stdio descriptors shipped with a not-yet-acked cross-shard spawn:
        // the child will hold them, so they must keep their streams alive in
        // the gap.  Same dedup set — a descriptor the parent also holds
        // counts once, exactly as a shared open-file description should.
        for files in self.pinned_files.values() {
            for file in files {
                let key = Arc::as_ptr(file) as usize;
                if seen.insert(key) {
                    kinds.push(file.kind());
                }
            }
        }
        let mut adjustments: Vec<(crate::streams::StreamId, bool)> = Vec::new(); // (stream, is_reader)
        let mut referenced: HashSet<ConnectionId> = HashSet::new();
        for kind in kinds {
            match kind {
                FileKind::PipeReader { stream } => adjustments.push((stream, true)),
                FileKind::PipeWriter { stream } => adjustments.push((stream, false)),
                FileKind::SocketStream { connection, side } => {
                    referenced.insert(connection);
                    let conn = self
                        .sockets
                        .connection(connection)
                        .or_else(|| self.remote_connections.get(&connection).copied());
                    if let Some(conn) = conn {
                        match side {
                            crate::fd::SocketSide::Client => {
                                adjustments.push((conn.client_to_server, false));
                                adjustments.push((conn.server_to_client, true));
                            }
                            crate::fd::SocketSide::Server => {
                                adjustments.push((conn.client_to_server, true));
                                adjustments.push((conn.server_to_client, false));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // The kernel's own XHR-like clients hold the client side of their
        // connection until the response has been parsed.  (HTTP requests are
        // routed to the port owner's shard, so these are always local.)
        for client in &self.http_clients {
            referenced.insert(client.connection);
            if let Some(conn) = self.sockets.connection(client.connection) {
                adjustments.push((conn.client_to_server, false));
                adjustments.push((conn.server_to_client, true));
            }
        }
        // Connections sitting in a listener's backlog have no server-side
        // descriptor yet; count the future endpoint so clients do not see a
        // spurious EOF before the server calls accept.
        for pending in self.sockets.pending_connections() {
            if let Some(conn) = self.sockets.connection(pending) {
                adjustments.push((conn.client_to_server, true));
                adjustments.push((conn.server_to_client, false));
            }
        }
        // Remotely-initiated connections whose client descriptor has not been
        // installed on the peer yet (pinned until its ConnectAck): count the
        // client endpoints so the server does not observe EOF in the gap.
        for &id in &self.remote_client_pins {
            if let Some(conn) = self.sockets.connection(id) {
                adjustments.push((conn.client_to_server, false));
                adjustments.push((conn.server_to_client, true));
            }
        }
        let mut outgoing: HashMap<usize, HashMap<StreamId, (u32, u32)>> = HashMap::new();
        for (stream_id, is_reader) in adjustments {
            if shard::stream_shard(stream_id) == self.shard_id {
                if let Some(stream) = self.streams.get_mut(stream_id) {
                    if is_reader {
                        stream.readers += 1;
                    } else {
                        stream.writers += 1;
                    }
                }
            } else {
                let entry = outgoing
                    .entry(shard::stream_shard(stream_id))
                    .or_default()
                    .entry(stream_id)
                    .or_insert((0u32, 0u32));
                if is_reader {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
        }
        // Endpoint contributions peers have reported for our streams.
        for contrib in self.remote_contribs.values() {
            for (&stream_id, &(readers, writers)) in contrib {
                if let Some(stream) = self.streams.get_mut(stream_id) {
                    stream.readers += readers as usize;
                    stream.writers += writers as usize;
                }
            }
        }
        // Forget cached info about foreign connections no local descriptor
        // refers to any more.
        self.remote_connections.retain(|id, _| referenced.contains(id));
        for removed in self.streams.collect_garbage() {
            self.wake(WaitChannel::StreamReadable(removed));
            self.wake(WaitChannel::StreamWritable(removed));
        }
        // Wake exactly the queues whose EOF/EPIPE state flipped.
        for (id, (readers_before, writers_before)) in before {
            let (wake_readable, wake_writable) = match self.streams.get(id) {
                // Removed by the GC above (already woken) or explicitly.
                None => (true, true),
                Some(stream) => (
                    // EOF: blocked readers (and polls) must see it.
                    writers_before > 0 && stream.write_end_closed(),
                    // EPIPE: blocked writers must fail (and get SIGPIPE).
                    readers_before > 0 && stream.read_end_closed(),
                ),
            };
            if wake_readable {
                self.wake(WaitChannel::StreamReadable(id));
            }
            if wake_writable {
                self.wake(WaitChannel::StreamWritable(id));
            }
        }
        // Publish our endpoint contributions to each owner shard, but only
        // when they changed since the last publish (including shrinking back
        // to empty — that is how a peer learns our last descriptor closed).
        for peer in 0..self.nshards {
            if peer == self.shard_id {
                continue;
            }
            let mut snapshot: Vec<(StreamId, u32, u32)> = outgoing
                .remove(&peer)
                .map(|m| m.into_iter().map(|(id, (r, w))| (id, r, w)).collect())
                .unwrap_or_default();
            snapshot.sort_unstable();
            let changed = match self.sent_contribs.get(&peer) {
                Some(prev) => prev != &snapshot,
                None => !snapshot.is_empty(),
            };
            if changed {
                self.sent_contribs.insert(peer, snapshot.clone());
                self.send_shard(
                    peer,
                    ShardMsg::RemoteEndpoints {
                        from_shard: self.shard_id,
                        snapshot,
                    },
                );
            }
        }
    }

    /// Removes a task from the table entirely (used when a zombie is reaped).
    pub(crate) fn remove_task_impl(&mut self, pid: Pid) {
        self.tasks.remove(&pid);
    }
}

include!(concat!(env!("OUT_DIR"), "/dispatch_gen.rs"));
