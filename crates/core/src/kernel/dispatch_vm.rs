//! Virtual-memory system-call handlers: `mmap` and friends, POSIX shared
//! memory, and the simulated load/store pair `vm_read`/`vm_write`.
//!
//! The kernel owns every task's [`AddressSpace`](crate::vm::AddressSpace)
//! (see [`crate::vm`] for the page model), so these handlers are thin:
//! validate descriptors, translate between syscall arguments and address-space
//! operations, and accumulate the COW/page-sharing counters into the kernel
//! statistics.  Two design points deserve a note:
//!
//! * **Private mappings** are reached through `vm_read`/`vm_write` — the
//!   simulated analogue of loads and stores that may fault.  A `vm_write`
//!   that lands on a page whose `Arc` is shared (with a forked sibling, or
//!   with an `httpfs`/`memfs` page cache) *is* the copy-on-write fault, and
//!   it is serviced here in the kernel.
//! * **Shared mappings** get a real [`SharedArrayBuffer`]: `sys_mmap`
//!   delivers it to the process in an out-of-band `mmap-shared` message
//!   *before* the call completes, so by the time the process sees the base
//!   address it already holds the buffer and can load and store — and
//!   `Atomics.wait`/`notify` — with **no system calls on the data path**.
//!   This is the same trick the synchronous system-call convention plays
//!   with its shared heap, generalised to arbitrary mappings.

use std::sync::Arc;

use browsix_browser::{Message, SharedArrayBuffer};
use browsix_fs::{Errno, FileHandle, OpenFlags};

use crate::fd::{Fd, FileKind, OpenFile};
use crate::kernel::{KernelState, Outcome};
use crate::syscall::{ByteSource, SysResult};
use crate::task::Pid;
use crate::vm::{page_align, ShmObject, MAP_ANONYMOUS, MAP_SHARED};

impl KernelState {
    /// `ftruncate(fd, size)`: sizes the descriptor's file — the only way to
    /// size a `shm_open` object, which has no path for `truncate`.
    pub(crate) fn sys_ftruncate(&mut self, pid: Pid, fd: Fd, size: u64) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        Outcome::Complete(match file.kind() {
            FileKind::File { handle, flags } => {
                if !flags.write {
                    SysResult::Err(Errno::EINVAL)
                } else {
                    match handle.truncate(size) {
                        Ok(()) => SysResult::Ok,
                        Err(e) => SysResult::Err(e),
                    }
                }
            }
            FileKind::Directory { .. } => SysResult::Err(Errno::EISDIR),
            _ => SysResult::Err(Errno::EINVAL),
        })
    }

    /// `mmap(addr, len, prot, flags, fd, offset)`.  Returns the base address;
    /// for `MAP_SHARED` the backing buffer is delivered to the process first.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sys_mmap(
        &mut self,
        pid: Pid,
        addr: u64,
        len: u64,
        prot: u32,
        flags: u32,
        fd: i32,
        offset: u64,
    ) -> Outcome {
        let result = if flags & MAP_SHARED != 0 {
            self.mmap_shared(pid, addr, len, prot, flags, fd, offset)
        } else {
            self.mmap_private(pid, addr, len, prot, flags, fd, offset)
        };
        Outcome::Complete(match result {
            Ok(base) => SysResult::Int(base as i64),
            Err(e) => SysResult::Err(e),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn mmap_private(
        &mut self,
        pid: Pid,
        addr: u64,
        len: u64,
        prot: u32,
        flags: u32,
        fd: i32,
        offset: u64,
    ) -> Result<u64, Errno> {
        if flags & MAP_ANONYMOUS != 0 {
            return self.task_mut(pid)?.address_space.map_anonymous(addr, len, prot);
        }
        let handle = self.file_handle(pid, fd)?;
        let (base, delta) = self
            .task_mut(pid)?
            .address_space
            .map_file(&handle, offset, len, addr, prot)?;
        self.stats.record_vm(delta);
        Ok(base)
    }

    #[allow(clippy::too_many_arguments)]
    fn mmap_shared(
        &mut self,
        pid: Pid,
        addr: u64,
        len: u64,
        prot: u32,
        flags: u32,
        fd: i32,
        offset: u64,
    ) -> Result<u64, Errno> {
        // Resolve the backing buffer: a fresh one for anonymous mappings, the
        // shm object's buffer when the descriptor is a mapped `shm_open`
        // object, or a buffer seeded from (and msync-able back to) a plain
        // file.
        let (sab, handle) = if flags & MAP_ANONYMOUS != 0 {
            if len == 0 {
                return Err(Errno::EINVAL);
            }
            (SharedArrayBuffer::new(page_align(len) as usize), None)
        } else {
            let handle = self.file_handle(pid, fd)?;
            let sab = match self.shm_object_for(&handle) {
                Some(object) => object.sab_for_mapping()?,
                None => {
                    let size = page_align(handle.metadata()?.size.max(offset + len));
                    if size == 0 {
                        return Err(Errno::EINVAL);
                    }
                    let sab = SharedArrayBuffer::new(size as usize);
                    let seed = handle.read_at(0, size as usize)?;
                    sab.write_bytes(0, &seed).map_err(|_| Errno::EIO)?;
                    sab
                }
            };
            (sab, Some(handle))
        };
        let base = self
            .task_mut(pid)?
            .address_space
            .map_shared(sab.clone(), handle, offset, len, addr, prot)?;
        // Hand the process the buffer itself before the call completes: from
        // here on its loads and stores (and Atomics) touch the mapping with
        // no kernel involvement at all.
        let msg = Message::map()
            .with("type", "mmap-shared")
            .with("addr", base as i64)
            .with("offset", offset as i64)
            .with("len", page_align(len) as i64)
            .with("sab", Message::Shared(sab));
        self.post_to_worker(pid, msg);
        Ok(base)
    }

    pub(crate) fn sys_munmap(&mut self, pid: Pid, addr: u64, len: u64) -> Outcome {
        Outcome::Complete(
            match self.task_mut(pid).and_then(|t| t.address_space.unmap(addr, len)) {
                Ok(_region) => SysResult::Ok,
                Err(e) => SysResult::Err(e),
            },
        )
    }

    pub(crate) fn sys_msync(&mut self, pid: Pid, addr: u64, len: u64) -> Outcome {
        Outcome::Complete(match self.task(pid).and_then(|t| t.address_space.msync(addr, len)) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_mprotect(&mut self, pid: Pid, addr: u64, len: u64, prot: u32) -> Outcome {
        Outcome::Complete(
            match self
                .task_mut(pid)
                .and_then(|t| t.address_space.protect(addr, len, prot))
            {
                Ok(()) => SysResult::Ok,
                Err(e) => SysResult::Err(e),
            },
        )
    }

    /// `shm_open(name, flags, mode)`: opens (or creates) a named shared-memory
    /// object and returns a descriptor to it.  The descriptor behaves like a
    /// regular file descriptor (`ftruncate`, `read`, `write`, `dup`,
    /// inheritance) because it *is* one: the object is a detached in-memory
    /// inode registered under the name.
    pub(crate) fn sys_shm_open(&mut self, pid: Pid, name: String, flags: u32, mode: u32) -> Outcome {
        let flags = match OpenFlags::from_bits(flags) {
            Ok(flags) => flags,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let _ = mode; // no users in Browsix; the browser sandbox is the permission model
                      // The shm namespace is kernel-global (processes on different shards
                      // must rendezvous by name), so the registry lives on the router.
        let object = match self.router.shm_get(&name) {
            Some(object) => {
                if flags.create && flags.exclusive {
                    return Outcome::Complete(SysResult::Err(Errno::EEXIST));
                }
                object
            }
            None => {
                if !flags.create {
                    return Outcome::Complete(SysResult::Err(Errno::ENOENT));
                }
                let object = Arc::new(ShmObject::new());
                self.router.shm_insert(&name, Arc::clone(&object));
                self.stats.shm_objects += 1;
                object
            }
        };
        if flags.truncate {
            if let Err(e) = object.handle.truncate(0) {
                return Outcome::Complete(SysResult::Err(e));
            }
        }
        let file = OpenFile::new(FileKind::File {
            handle: Arc::clone(&object.handle),
            flags,
        });
        Outcome::Complete(match self.task_mut(pid) {
            Ok(task) => SysResult::Int(task.files.insert(file, 0) as i64),
            Err(e) => SysResult::Err(e),
        })
    }

    /// `shm_unlink(name)`: removes the name; the object itself survives until
    /// the last descriptor and mapping drop their references.
    pub(crate) fn sys_shm_unlink(&mut self, pid: Pid, name: String) -> Outcome {
        let _ = pid;
        Outcome::Complete(if self.router.shm_remove(&name) {
            SysResult::Ok
        } else {
            SysResult::Err(Errno::ENOENT)
        })
    }

    /// `vm_read(addr, len)`: the simulated load.
    pub(crate) fn sys_vm_read(&mut self, pid: Pid, addr: u64, len: usize) -> Outcome {
        Outcome::Complete(match self.task(pid).and_then(|t| t.address_space.read(addr, len)) {
            Ok(bytes) => SysResult::Data(bytes),
            Err(e) => SysResult::Err(e),
        })
    }

    /// `vm_write(addr, data)`: the simulated store; services COW faults.
    pub(crate) fn sys_vm_write(&mut self, pid: Pid, addr: u64, data: ByteSource) -> Outcome {
        let bytes = match self.resolve_bytes(pid, &data) {
            Ok(bytes) => bytes,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        Outcome::Complete(
            match self.task_mut(pid).and_then(|t| t.address_space.write(addr, &bytes)) {
                Ok(delta) => {
                    self.stats.record_vm(delta);
                    SysResult::Ok
                }
                Err(e) => SysResult::Err(e),
            },
        )
    }

    /// The file handle behind descriptor `fd`, for mapping.
    fn file_handle(&self, pid: Pid, fd: i32) -> Result<Arc<dyn FileHandle>, Errno> {
        let file = self.task(pid)?.files.get(fd)?;
        match file.kind() {
            FileKind::File { handle, .. } => Ok(handle),
            FileKind::Directory { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Finds the registered shm object a handle belongs to, if any —
    /// identity, not name: descriptors keep mapping to their object across
    /// `shm_unlink`.
    fn shm_object_for(&self, handle: &Arc<dyn FileHandle>) -> Option<Arc<ShmObject>> {
        self.router.shm_find(|object| Arc::ptr_eq(&object.handle, handle))
    }
}
