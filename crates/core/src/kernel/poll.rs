//! Readiness: `poll`, `O_NONBLOCK` status flags, and the single place where
//! "would this descriptor block?" is computed.
//!
//! Pipes and socket connections are both backed by kernel
//! [`Stream`](crate::streams::Stream)s, so every readiness question reduces
//! to [`read_stream_of`](KernelState::read_stream_of) /
//! [`write_stream_of`](KernelState::write_stream_of) plus the stream's own
//! `read_ready`/`write_ready` predicates.  Blocking reads and writes, their
//! `EAGAIN` short-circuits, and `poll` all share these helpers, so the three
//! can never disagree about what "ready" means.

use std::time::Instant;

use browsix_fs::Errno;

use crate::fd::{Fd, FileKind, SocketSide};
use crate::kernel::waitq::{WaitChannel, WaiterId};
use crate::kernel::{KernelState, Outcome, ReplyTo, WaitKind, Waiter};
use crate::streams::StreamId;
use crate::syscall::{PollRequest, SysResult, NONBLOCK, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::task::Pid;

impl KernelState {
    /// The stream a descriptor of this kind reads from, if it is
    /// stream-backed.  For a socket endpoint this resolves the connection and
    /// picks the direction flowing *towards* this side; `None` for
    /// non-stream descriptors and for socket endpoints whose connection is
    /// gone.
    pub(crate) fn read_stream_of(&self, kind: &FileKind) -> Option<StreamId> {
        match kind {
            FileKind::PipeReader { stream } => Some(*stream),
            FileKind::SocketStream { connection, side } => {
                let conn = self.connection_info(*connection)?;
                Some(match side {
                    SocketSide::Client => conn.server_to_client,
                    SocketSide::Server => conn.client_to_server,
                })
            }
            _ => None,
        }
    }

    /// The stream a descriptor of this kind writes to, if any (the mirror of
    /// [`KernelState::read_stream_of`]).
    pub(crate) fn write_stream_of(&self, kind: &FileKind) -> Option<StreamId> {
        match kind {
            FileKind::PipeWriter { stream } => Some(*stream),
            FileKind::SocketStream { connection, side } => {
                let conn = self.connection_info(*connection)?;
                Some(match side {
                    SocketSide::Client => conn.client_to_server,
                    SocketSide::Server => conn.server_to_client,
                })
            }
            _ => None,
        }
    }

    /// The channel a blocked read on `fd` should park on.
    pub(crate) fn read_wait_channel(&self, pid: Pid, fd: Fd) -> Option<WaitChannel> {
        let file = self.task(pid).ok()?.files.get(fd).ok()?;
        self.read_stream_of(&file.kind()).map(WaitChannel::StreamReadable)
    }

    /// The channel a blocked write on `fd` should park on.
    pub(crate) fn write_wait_channel(&self, pid: Pid, fd: Fd) -> Option<WaitChannel> {
        let file = self.task(pid).ok()?.files.get(fd).ok()?;
        self.write_stream_of(&file.kind()).map(WaitChannel::StreamWritable)
    }

    /// The channel a blocked accept on `fd` should park on.
    pub(crate) fn accept_wait_channel(&self, pid: Pid, fd: Fd) -> Option<WaitChannel> {
        let file = self.task(pid).ok()?.files.get(fd).ok()?;
        match file.kind() {
            FileKind::SocketListener { port } => Some(WaitChannel::Listener(port)),
            _ => None,
        }
    }

    /// Whether `fd`'s open-file description has `O_NONBLOCK` set.
    pub(crate) fn fd_nonblocking(&self, pid: Pid, fd: Fd) -> bool {
        self.task(pid)
            .ok()
            .and_then(|t| t.files.get(fd).ok())
            .is_some_and(|f| f.nonblocking())
    }

    /// Computes one descriptor's `revents` word for `poll`.  `POLLERR`,
    /// `POLLHUP` and `POLLNVAL` are reported whether requested or not, as on
    /// Linux.
    pub(crate) fn fd_revents(&self, pid: Pid, fd: Fd, events: u16) -> u16 {
        let Ok(file) = self.task(pid).and_then(|t| t.files.get(fd)) else {
            return POLLNVAL;
        };
        let kind = file.kind();
        let mut revents = 0u16;
        match &kind {
            // Regular files, directories, /dev/null, the terminal and host
            // sinks never block: always readable and writable (access checks
            // happen at read/write time, as with poll on Linux).
            FileKind::File { .. }
            | FileKind::Directory { .. }
            | FileKind::Null
            | FileKind::Tty
            | FileKind::HostSink { .. } => {
                revents = POLLIN | POLLOUT;
            }
            // An unconnected socket is never ready for anything.
            FileKind::Socket { .. } => {}
            FileKind::SocketListener { port } => {
                if self.sockets().has_pending(*port) {
                    revents |= POLLIN;
                }
            }
            FileKind::PipeReader { .. } | FileKind::PipeWriter { .. } | FileKind::SocketStream { .. } => {
                if matches!(kind, FileKind::SocketStream { connection, .. }
                    if self.connection_info(connection).is_none())
                {
                    // The connection is gone entirely.
                    revents |= POLLERR | POLLHUP;
                } else {
                    if let Some(id) = self.read_stream_of(&kind) {
                        if self.stream_is_remote(id) {
                            // Foreign stream: judge readiness from the owner's
                            // latest snapshot (no snapshot yet = not ready).
                            if let Some(r) = self.remote_revents(id) {
                                if r.gone || r.eof {
                                    revents |= POLLHUP;
                                }
                                if r.readable {
                                    revents |= POLLIN;
                                }
                            }
                        } else {
                            match self.streams.get(id) {
                                Some(stream) => {
                                    if !stream.is_empty() {
                                        revents |= POLLIN;
                                    }
                                    if stream.write_end_closed() {
                                        revents |= POLLHUP;
                                    }
                                }
                                None => revents |= POLLHUP,
                            }
                        }
                    }
                    if let Some(id) = self.write_stream_of(&kind) {
                        if self.stream_is_remote(id) {
                            if let Some(r) = self.remote_revents(id) {
                                if r.gone || r.epipe {
                                    revents |= POLLERR;
                                } else if r.writable {
                                    revents |= POLLOUT;
                                }
                            }
                        } else {
                            match self.streams.get(id) {
                                Some(stream) => {
                                    if stream.read_end_closed() {
                                        revents |= POLLERR;
                                    } else if stream.space() > 0 {
                                        revents |= POLLOUT;
                                    }
                                }
                                None => revents |= POLLERR,
                            }
                        }
                    }
                }
            }
        }
        revents & (events | POLLERR | POLLHUP | POLLNVAL)
    }

    /// One `revents` word per polled descriptor, in submission order.
    pub(crate) fn poll_revents(&self, pid: Pid, fds: &[PollRequest]) -> Vec<u16> {
        fds.iter().map(|req| self.fd_revents(pid, req.fd, req.events)).collect()
    }

    /// Every channel a blocked `poll` over `fds` must park on: one per
    /// stream direction or listener referenced, deduplicated.
    pub(crate) fn poll_wait_channels(&self, pid: Pid, fds: &[PollRequest]) -> Vec<WaitChannel> {
        let mut channels: Vec<WaitChannel> = Vec::with_capacity(fds.len());
        let push = |channels: &mut Vec<WaitChannel>, channel: WaitChannel| {
            if !channels.contains(&channel) {
                channels.push(channel);
            }
        };
        for req in fds {
            let Ok(file) = self.task(pid).and_then(|t| t.files.get(req.fd)) else {
                continue;
            };
            let kind = file.kind();
            if let FileKind::SocketListener { port } = kind {
                push(&mut channels, WaitChannel::Listener(port));
                continue;
            }
            if let Some(id) = self.read_stream_of(&kind) {
                push(&mut channels, WaitChannel::StreamReadable(id));
            }
            if let Some(id) = self.write_stream_of(&kind) {
                push(&mut channels, WaitChannel::StreamWritable(id));
            }
        }
        channels
    }

    /// The foreign streams a `poll` over `fds` watches, deduplicated — each
    /// needs a readiness snapshot from its owner shard when the poll parks.
    pub(crate) fn remote_poll_streams(&self, pid: Pid, fds: &[PollRequest]) -> Vec<StreamId> {
        let mut remote: Vec<StreamId> = Vec::new();
        for req in fds {
            let Ok(file) = self.task(pid).and_then(|t| t.files.get(req.fd)) else {
                continue;
            };
            let kind = file.kind();
            for id in [self.read_stream_of(&kind), self.write_stream_of(&kind)]
                .into_iter()
                .flatten()
            {
                if self.stream_is_remote(id) && !remote.contains(&id) {
                    remote.push(id);
                }
            }
        }
        remote
    }

    pub(crate) fn sys_poll(&mut self, pid: Pid, reply: ReplyTo, fds: Vec<PollRequest>, timeout_ms: i32) -> Outcome {
        let revents = self.poll_revents(pid, &fds);
        if revents.iter().any(|&r| r != 0) || timeout_ms == 0 {
            return Outcome::Complete(SysResult::Poll(revents));
        }
        let channels = self.poll_wait_channels(pid, &fds);
        let deadline = (timeout_ms > 0).then(|| Instant::now() + std::time::Duration::from_millis(timeout_ms as u64));
        if channels.is_empty() && deadline.is_none() {
            // No waitable resource and no timeout: this poll could never
            // complete.  Refuse rather than park forever.
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        self.stats.waiters_parked += 1;
        self.park_waiter(
            channels,
            Waiter {
                pid,
                reply: Some(reply),
                kind: WaitKind::Poll { fds, deadline },
            },
        );
        Outcome::Blocked
    }

    pub(crate) fn sys_setflags(&mut self, pid: Pid, fd: Fd, flags: u32) -> Outcome {
        if flags & !NONBLOCK != 0 {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => {
                file.set_nonblocking(flags & NONBLOCK != 0);
                Outcome::Complete(SysResult::Ok)
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    // ---- poll timeouts ---------------------------------------------------------

    /// The earliest pending `poll` deadline, if any (bounds the event-loop
    /// sleep).
    pub(crate) fn next_poll_deadline(&self) -> Option<Instant> {
        self.poll_deadlines.iter().map(|&(deadline, _)| deadline).min()
    }

    /// Completes every parked `poll` whose deadline has passed.  Stale
    /// entries (waiters that already completed or re-parked under a new id)
    /// are discarded as they are encountered.
    pub(crate) fn expire_poll_deadlines(&mut self) {
        if self.poll_deadlines.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due: Vec<WaiterId> = Vec::new();
        self.poll_deadlines.retain(|&(deadline, id)| {
            if deadline <= now {
                due.push(id);
                false
            } else {
                true
            }
        });
        for id in due {
            // A stale id (completed or re-parked waiter) simply misses.
            if let Some(waiter) = self.waiters.remove(id) {
                self.retry_waiter(waiter);
            }
        }
    }
}
