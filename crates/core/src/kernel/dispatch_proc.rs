//! Process-management system-call handlers: spawn, fork, pipe2, wait4, exit,
//! kill, signal registration and the process-metadata calls.

use std::sync::Arc;

use browsix_fs::{Errno, FileSystem};

use crate::exec::ForkImage;
use crate::fd::{FileKind, OpenFile};
use crate::kernel::waitq::WaitChannel;
use crate::kernel::{KernelState, Outcome, ReplyTo, WaitKind, Waiter};
use crate::signals::Signal;
use crate::syscall::{encode_wait_status, SysResult};
use crate::task::Pid;

/// `wait4` option bit: return immediately when no child has exited.
pub const WNOHANG: u32 = 1;

impl KernelState {
    pub(crate) fn sys_spawn(
        &mut self,
        pid: Pid,
        path: String,
        args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: Option<String>,
        stdio: [Option<i32>; 3],
    ) -> Outcome {
        let parent = match self.task(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let parent_cwd = parent.cwd.clone();
        let parent_env = parent.env.clone();
        let child_cwd = cwd
            .map(|c| browsix_fs::path::resolve(&parent_cwd, &c))
            .unwrap_or(parent_cwd.clone());
        let exe_path = browsix_fs::path::resolve(&parent_cwd, &path);

        // Assemble the child's stdin/stdout/stderr: an explicit parent fd, or
        // inherit the parent's descriptor of the same number, or /dev/null.
        let mut child_stdio: Vec<Arc<OpenFile>> = Vec::with_capacity(3);
        for (i, slot) in stdio.iter().enumerate() {
            let source_fd = slot.unwrap_or(i as i32);
            let file = self
                .task(pid)
                .ok()
                .and_then(|t| t.files.get(source_fd).ok())
                .unwrap_or_else(|| OpenFile::new(FileKind::Null));
            child_stdio.push(file);
        }
        let stdio_arr: [Arc<OpenFile>; 3] = [child_stdio[0].clone(), child_stdio[1].clone(), child_stdio[2].clone()];

        // The child environment: parent's environment unless the caller
        // supplied one explicitly.
        let child_env = if env.is_empty() { parent_env } else { env };

        match self.spawn_process(pid, &exe_path, args, child_env, &child_cwd, stdio_arr, None, None) {
            Ok(child) => Outcome::Complete(SysResult::Int(child as i64)),
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_fork(&mut self, pid: Pid, image: Vec<u8>, resume_point: u64) -> Outcome {
        let parent = match self.task(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let Some(launcher) = parent.launcher.clone() else {
            return Outcome::Complete(SysResult::Err(Errno::ENOSYS));
        };
        let exe_path = parent.exe_path.clone();
        let args = parent.args.clone();
        let env = parent.env.clone();
        let cwd = parent.cwd.clone();
        // The child inherits the parent's descriptor table (shared
        // descriptions, exactly like fork on Unix).
        let files = parent.files.inherit();
        let stdio: [Arc<OpenFile>; 3] = [
            files.get(0).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
            files.get(1).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
            files.get(2).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
        ];
        let fork_image = ForkImage { image, resume_point };
        match self.spawn_process(pid, &exe_path, args, env, &cwd, stdio, Some(fork_image), Some(launcher)) {
            Ok(child) => {
                // Copy the rest of the parent's descriptors (beyond stdio)
                // into the child, preserving numbers.
                let extra: Vec<(i32, Arc<OpenFile>)> = files
                    .iter()
                    .filter(|(fd, _)| *fd > 2)
                    .map(|(fd, file)| (fd, Arc::clone(file)))
                    .collect();
                if let Ok(child_task) = self.task_mut(child) {
                    for (fd, file) in extra {
                        child_task.files.insert_at(fd, file);
                    }
                }
                self.recompute_endpoints();
                Outcome::Complete(SysResult::Int(child as i64))
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_pipe2(&mut self, pid: Pid) -> Outcome {
        let stream_id = self.streams_mut().create();
        let reader = OpenFile::new(FileKind::PipeReader { stream: stream_id });
        let writer = OpenFile::new(FileKind::PipeWriter { stream: stream_id });
        let (read_fd, write_fd) = match self.task_mut(pid) {
            Ok(task) => {
                let read_fd = task.files.insert(reader, 0);
                let write_fd = task.files.insert(writer, 0);
                (read_fd, write_fd)
            }
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        self.recompute_endpoints();
        Outcome::Complete(SysResult::Pair(read_fd as i64, write_fd as i64))
    }

    /// Looks for a reapable zombie child of `pid` matching `target`
    /// (-1 = any child).  Returns `Err(ECHILD)` if `pid` has no children at
    /// all matching the request.
    pub(crate) fn try_reap_child(&mut self, pid: Pid, target: i32) -> Result<Option<(Pid, i32)>, Errno> {
        let children: Vec<Pid> = match self.task(pid) {
            Ok(task) => task.children.clone(),
            Err(e) => return Err(e),
        };
        let candidates: Vec<Pid> = children
            .into_iter()
            .filter(|&child| target < 0 || child == target as Pid)
            .filter(|child| self.tasks_contains(*child))
            .collect();
        if candidates.is_empty() {
            return Err(Errno::ECHILD);
        }
        for child in candidates {
            let status = self.task(child).ok().and_then(|t| t.wait_status());
            if let Some(status) = status {
                self.remove_task(child);
                if let Ok(parent) = self.task_mut(pid) {
                    parent.children.retain(|&c| c != child);
                }
                return Ok(Some((child, status)));
            }
        }
        Ok(None)
    }

    pub(crate) fn sys_wait4(&mut self, pid: Pid, reply: ReplyTo, target: i32, options: u32) -> Outcome {
        match self.try_reap_child(pid, target) {
            Err(e) => Outcome::Complete(SysResult::Err(e)),
            Ok(Some((child, status))) => Outcome::Complete(SysResult::Wait { pid: child, status }),
            Ok(None) => {
                if options & WNOHANG != 0 {
                    Outcome::Complete(SysResult::Wait { pid: 0, status: 0 })
                } else {
                    // Park on this process's own child-exit queue; only an
                    // exiting child of ours wakes it.
                    self.stats.waiters_parked += 1;
                    self.park_waiter(
                        vec![WaitChannel::ChildOf(pid)],
                        Waiter {
                            pid,
                            reply: Some(reply),
                            kind: WaitKind::Wait4 { target },
                        },
                    );
                    Outcome::Blocked
                }
            }
        }
    }

    pub(crate) fn sys_exit(&mut self, pid: Pid, code: i32) -> Outcome {
        self.finish_task(pid, encode_wait_status(Some(code), None));
        Outcome::NoReply
    }

    pub(crate) fn sys_kill(&mut self, _caller: Pid, target: Pid, signal: Signal) -> Outcome {
        Outcome::Complete(match self.deliver_signal(target, signal) {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_sigaction(&mut self, pid: Pid, signal: Signal, install: bool) -> Outcome {
        if !signal.catchable() {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        match self.task_mut(pid) {
            Ok(task) => {
                if install {
                    task.signal_handlers.insert(signal);
                } else {
                    task.signal_handlers.remove(&signal);
                }
                Outcome::Complete(SysResult::Ok)
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_getppid(&mut self, pid: Pid) -> Outcome {
        Outcome::Complete(match self.task(pid) {
            Ok(task) => SysResult::Int(task.ppid as i64),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_getcwd(&mut self, pid: Pid) -> Outcome {
        Outcome::Complete(match self.task(pid) {
            Ok(task) => SysResult::Path(task.cwd.clone()),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_chdir(&mut self, pid: Pid, path: String) -> Outcome {
        let resolved = self.resolve_path(pid, &path);
        match self.fs().stat(&resolved) {
            Ok(meta) if meta.is_dir() => {
                if let Ok(task) = self.task_mut(pid) {
                    task.cwd = resolved;
                }
                Outcome::Complete(SysResult::Ok)
            }
            Ok(_) => Outcome::Complete(SysResult::Err(Errno::ENOTDIR)),
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    // Small helpers kept here so the parent module stays readable.

    pub(crate) fn tasks_contains(&self, pid: Pid) -> bool {
        self.task(pid).is_ok()
    }

    pub(crate) fn remove_task(&mut self, pid: Pid) {
        self.remove_task_impl(pid);
    }
}
