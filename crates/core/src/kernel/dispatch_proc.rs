//! Process-management system-call handlers: spawn, fork, pipe2, wait4, exit,
//! kill, signal registration and the process-metadata calls.

use std::sync::Arc;

use browsix_fs::{Errno, FileSystem};

use crate::exec::ForkImage;
use crate::fd::{FileKind, OpenFile};
use crate::kernel::waitq::WaitChannel;
use crate::kernel::{KernelState, Outcome, ReplyTo, ShardMsg, WaitKind, Waiter};
use crate::signals::{SigAction, SigSet, Signal};
use crate::syscall::{encode_stop_status, encode_wait_status, SysResult, WNOHANG, WUNTRACED};
use crate::task::Pid;

impl KernelState {
    pub(crate) fn sys_spawn(
        &mut self,
        pid: Pid,
        path: String,
        args: Vec<String>,
        env: Vec<(String, String)>,
        cwd: Option<String>,
        stdio: [Option<i32>; 3],
    ) -> Outcome {
        let parent = match self.task(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let parent_cwd = parent.cwd.clone();
        let parent_env = parent.env.clone();
        let child_cwd = cwd
            .map(|c| browsix_fs::path::resolve(&parent_cwd, &c))
            .unwrap_or(parent_cwd.clone());
        let exe_path = browsix_fs::path::resolve(&parent_cwd, &path);

        // Assemble the child's stdin/stdout/stderr: an explicit parent fd, or
        // inherit the parent's descriptor of the same number, or /dev/null.
        let mut child_stdio: Vec<Arc<OpenFile>> = Vec::with_capacity(3);
        for (i, slot) in stdio.iter().enumerate() {
            let source_fd = slot.unwrap_or(i as i32);
            let file = self
                .task(pid)
                .ok()
                .and_then(|t| t.files.get(source_fd).ok())
                .unwrap_or_else(|| OpenFile::new(FileKind::Null));
            child_stdio.push(file);
        }
        let stdio_arr: [Arc<OpenFile>; 3] = [child_stdio[0].clone(), child_stdio[1].clone(), child_stdio[2].clone()];

        // The child environment: parent's environment unless the caller
        // supplied one explicitly.
        let child_env = if env.is_empty() { parent_env } else { env };

        match self.spawn_process(pid, &exe_path, args, child_env, &child_cwd, stdio_arr, None, None) {
            Ok(child) => Outcome::Complete(SysResult::Int(child as i64)),
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_fork(&mut self, pid: Pid, image: Vec<u8>, resume_point: u64) -> Outcome {
        let parent = match self.task(pid) {
            Ok(task) => task,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let Some(launcher) = parent.launcher.clone() else {
            return Outcome::Complete(SysResult::Err(Errno::ENOSYS));
        };
        let exe_path = parent.exe_path.clone();
        let args = parent.args.clone();
        let env = parent.env.clone();
        let cwd = parent.cwd.clone();
        // The child inherits the parent's descriptor table (shared
        // descriptions, exactly like fork on Unix).
        let files = parent.files.inherit();
        let stdio: [Arc<OpenFile>; 3] = [
            files.get(0).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
            files.get(1).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
            files.get(2).unwrap_or_else(|_| OpenFile::new(FileKind::Null)),
        ];
        // Clone the parent's address space copy-on-write: O(regions) work,
        // every materialised page shared by reference.  The first post-fork
        // write to a shared page (parent or child) COW-faults in
        // `sys_vm_write`.
        let (address_space, vm_delta) = parent.address_space.fork_clone();
        let fork_image = ForkImage { image, resume_point };
        match self.spawn_process(pid, &exe_path, args, env, &cwd, stdio, Some(fork_image), Some(launcher)) {
            Ok(child) => {
                // Copy the rest of the parent's descriptors (beyond stdio)
                // into the child, preserving numbers.
                let extra: Vec<(i32, Arc<OpenFile>)> = files
                    .iter()
                    .filter(|(fd, _)| *fd > 2)
                    .map(|(fd, file)| (fd, Arc::clone(file)))
                    .collect();
                if let Ok(child_task) = self.task_mut(child) {
                    for (fd, file) in extra {
                        child_task.files.insert_at(fd, file);
                    }
                    child_task.address_space = address_space;
                }
                self.stats.record_vm(vm_delta);
                self.recompute_endpoints();
                Outcome::Complete(SysResult::Int(child as i64))
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_pipe2(&mut self, pid: Pid) -> Outcome {
        let stream_id = self.streams_mut().create();
        let reader = OpenFile::new(FileKind::PipeReader { stream: stream_id });
        let writer = OpenFile::new(FileKind::PipeWriter { stream: stream_id });
        let (read_fd, write_fd) = match self.task_mut(pid) {
            Ok(task) => {
                let read_fd = task.files.insert(reader, 0);
                let write_fd = task.files.insert(writer, 0);
                (read_fd, write_fd)
            }
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        self.recompute_endpoints();
        Outcome::Complete(SysResult::Pair(read_fd as i64, write_fd as i64))
    }

    /// Looks for a reportable child of `pid` matching `target` (-1 = any
    /// child): a reapable zombie, or — under `WUNTRACED` — a child stopped by
    /// a job-control signal whose stop has not been reported yet.  Returns
    /// `Err(ECHILD)` if `pid` has no children at all matching the request.
    ///
    /// Membership is the parent's `children` list, which may name tasks that
    /// live on other shards.  A remote child's exit or stop arrives here as a
    /// shipped record (`remote_zombies` / `remote_stops`, see
    /// `ShardMsg::ChildExited`); reaping consumes the record, so every exit
    /// and stop is reported exactly once regardless of placement.
    pub(crate) fn try_reap_child(&mut self, pid: Pid, target: i32, options: u32) -> Result<Option<(Pid, i32)>, Errno> {
        let children: Vec<Pid> = match self.task(pid) {
            Ok(task) => task.children.clone(),
            Err(e) => return Err(e),
        };
        let candidates: Vec<Pid> = children
            .into_iter()
            .filter(|&child| target < 0 || child == target as Pid)
            .collect();
        if candidates.is_empty() {
            return Err(Errno::ECHILD);
        }
        for &child in &candidates {
            // Local zombie?
            let status = self.task(child).ok().and_then(|t| t.wait_status());
            if let Some(status) = status {
                self.remove_task(child);
                if let Ok(parent) = self.task_mut(pid) {
                    parent.children.retain(|&c| c != child);
                }
                return Ok(Some((child, status)));
            }
            // Zombie shipped from the child's shard?
            if let Some(status) = self.remote_zombies.remove(&child) {
                self.remote_stops.remove(&child);
                if let Ok(parent) = self.task_mut(pid) {
                    parent.children.retain(|&c| c != child);
                }
                return Ok(Some((child, status)));
            }
        }
        if options & WUNTRACED != 0 {
            for &child in &candidates {
                if let Ok(task) = self.task_mut(child) {
                    if let Some(signal) = task.stop_signal() {
                        if !task.stop_reported {
                            // Each stop is reported to wait4 at most once;
                            // the child stays in the task table (it is not a
                            // zombie and can be continued).
                            task.stop_reported = true;
                            return Ok(Some((child, encode_stop_status(signal))));
                        }
                    }
                }
            }
            for &child in &candidates {
                // Stops shipped from remote shards are one-shot by
                // construction: consuming the record is the report.
                if let Some(signal) = self.remote_stops.remove(&child) {
                    return Ok(Some((child, encode_stop_status(signal))));
                }
            }
        }
        Ok(None)
    }

    pub(crate) fn sys_wait4(&mut self, pid: Pid, reply: ReplyTo, target: i32, options: u32) -> Outcome {
        match self.try_reap_child(pid, target, options) {
            Err(e) => Outcome::Complete(SysResult::Err(e)),
            Ok(Some((child, status))) => Outcome::Complete(SysResult::Wait { pid: child, status }),
            Ok(None) => {
                if options & WNOHANG != 0 {
                    Outcome::Complete(SysResult::Wait { pid: 0, status: 0 })
                } else {
                    // Park on this process's own child-exit queue; only a
                    // child of ours exiting (or stopping) wakes it.
                    self.stats.waiters_parked += 1;
                    self.park_waiter_one(
                        WaitChannel::ChildOf(pid),
                        Waiter {
                            pid,
                            reply: Some(reply),
                            kind: WaitKind::Wait4 { target, options },
                        },
                    );
                    Outcome::Blocked
                }
            }
        }
    }

    pub(crate) fn sys_exit(&mut self, pid: Pid, code: i32) -> Outcome {
        self.finish_task(pid, encode_wait_status(Some(code), None));
        Outcome::NoReply
    }

    /// `kill(2)` addressing: `target > 0` signals that process, `target < 0`
    /// signals group `-target`, and `target == 0` signals the caller's own
    /// group.
    pub(crate) fn sys_kill(&mut self, caller: Pid, target: i32, signal: Signal) -> Outcome {
        let result = if target > 0 {
            let target = target as Pid;
            if crate::kernel::shard::shard_of(target, self.nshards()) == self.shard_id() {
                self.send_signal(target, signal)
            } else {
                // Owned by another shard: the router registry (live processes
                // only) answers existence; delivery goes by message.  A target
                // that dies in flight just drops the signal, exactly as a
                // local target that exits between lookup and delivery would.
                match self.router.process_shard(target) {
                    Some(shard) => {
                        self.send_shard(shard, ShardMsg::SignalPid { pid: target, signal });
                        Ok(())
                    }
                    None => Err(Errno::ESRCH),
                }
            }
        } else {
            let pgid = if target == 0 {
                match self.task(caller) {
                    Ok(task) => task.pgid,
                    Err(e) => return Outcome::Complete(SysResult::Err(e)),
                }
            } else {
                match u32::try_from(-(target as i64)) {
                    Ok(pgid) => pgid,
                    Err(_) => return Outcome::Complete(SysResult::Err(Errno::EINVAL)),
                }
            };
            self.signal_pgroup(pgid, signal)
        };
        Outcome::Complete(match result {
            Ok(()) => SysResult::Ok,
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_sigaction(&mut self, pid: Pid, signal: Signal, action: SigAction) -> Outcome {
        if !signal.catchable() {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        match self.task_mut(pid) {
            Ok(task) => {
                task.signals.set_action(signal, action);
                Outcome::Complete(SysResult::Ok)
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    /// `sigprocmask`: updates the caller's blocked mask and dispatches any
    /// pending signals that became deliverable — each exactly once.
    pub(crate) fn sys_sigprocmask(&mut self, pid: Pid, how: u32, mask: u64) -> Outcome {
        let changed = match self.task_mut(pid) {
            Ok(task) => task.signals.change_mask(how, SigSet::from_bits(mask)),
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        let Some((old, deliverable)) = changed else {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        };
        for signal in deliverable {
            // Delivery may terminate or stop the caller; dispatch re-checks
            // the task each time.
            self.dispatch_signal(pid, signal);
        }
        Outcome::Complete(SysResult::Int(old.bits() as i64))
    }

    /// `setpgid`: moves `target` (0 = the caller) into group `pgid` (0 = a
    /// new group led by the target).  Only the caller itself or its children
    /// may be moved, as on Unix.
    pub(crate) fn sys_setpgid(&mut self, caller: Pid, target: Pid, pgid: Pid) -> Outcome {
        let target = if target == 0 { caller } else { target };
        let group = if pgid == 0 { target } else { pgid };
        let allowed = target == caller
            || self
                .task(caller)
                .map(|task| task.children.contains(&target))
                .unwrap_or(false);
        if !allowed {
            return Outcome::Complete(SysResult::Err(Errno::EPERM));
        }
        let sharded = self.nshards() > 1;
        match self.task_mut(target) {
            Ok(task) if task.is_alive() => {
                task.pgid = group;
                // Keep the fleet-wide membership registry in step: group
                // signals resolve members through the router.
                self.router.set_pgid(target, group);
                Outcome::Complete(SysResult::Ok)
            }
            Ok(_) => Outcome::Complete(SysResult::Err(Errno::ESRCH)),
            Err(_) if sharded => {
                // A remote child (membership came from our `children` list).
                // Update the authoritative registry first, then tell the
                // owning shard so the task's own view follows.
                match self.router.process_shard(target) {
                    Some(shard) => {
                        self.router.set_pgid(target, group);
                        self.send_shard(
                            shard,
                            ShardMsg::SetPgid {
                                pid: target,
                                pgid: group,
                            },
                        );
                        Outcome::Complete(SysResult::Ok)
                    }
                    None => Outcome::Complete(SysResult::Err(Errno::ESRCH)),
                }
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    /// `getrusage`: resource-usage counters for the caller, pair-encoded as
    /// a `u32` count followed by (`str` key, `u64` value) pairs so the
    /// counter set can grow without a wire-format change.  Only
    /// `who == 0` (`RUSAGE_SELF`) is supported.
    pub(crate) fn sys_getrusage(&mut self, pid: Pid, who: i32) -> Outcome {
        if who != 0 {
            return Outcome::Complete(SysResult::Err(Errno::EINVAL));
        }
        Outcome::Complete(match self.task(pid) {
            Ok(task) => {
                let counters: &[(&str, u64)] = &[
                    ("syscalls", task.syscall_count),
                    (
                        "maxrss",
                        (task.address_space.resident_page_count() * crate::vm::PAGE_SIZE) as u64,
                    ),
                ];
                let mut out = Vec::new();
                crate::wire::put_u32(&mut out, counters.len() as u32);
                for (key, value) in counters {
                    crate::wire::put_str(&mut out, key);
                    crate::wire::put_u64(&mut out, *value);
                }
                SysResult::Data(out)
            }
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_getpgid(&mut self, caller: Pid, target: Pid) -> Outcome {
        let target = if target == 0 { caller } else { target };
        Outcome::Complete(match self.task(target) {
            Ok(task) => SysResult::Int(task.pgid as i64),
            // Not local: the router registry knows every live process.
            Err(e) => match self.router.process_pgid(target) {
                Some(pgid) => SysResult::Int(pgid as i64),
                None => SysResult::Err(e),
            },
        })
    }

    /// `tcsetpgrp`: makes `pgid` the foreground group of the controlling
    /// terminal.  The kernel models one terminal, so there is no descriptor
    /// argument; any process may hand the foreground over (the shell uses
    /// this around every foreground pipeline).
    pub(crate) fn sys_tcsetpgrp(&mut self, _caller: Pid, pgid: Pid) -> Outcome {
        self.set_foreground_pgid(Some(pgid));
        Outcome::Complete(SysResult::Ok)
    }

    pub(crate) fn sys_getppid(&mut self, pid: Pid) -> Outcome {
        Outcome::Complete(match self.task(pid) {
            Ok(task) => SysResult::Int(task.ppid as i64),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_getcwd(&mut self, pid: Pid) -> Outcome {
        Outcome::Complete(match self.task(pid) {
            Ok(task) => SysResult::Path(task.cwd.clone()),
            Err(e) => SysResult::Err(e),
        })
    }

    pub(crate) fn sys_chdir(&mut self, pid: Pid, path: String) -> Outcome {
        let resolved = self.resolve_path(pid, &path);
        match self.fs().stat(&resolved) {
            Ok(meta) if meta.is_dir() => {
                if let Ok(task) = self.task_mut(pid) {
                    task.cwd = resolved;
                }
                Outcome::Complete(SysResult::Ok)
            }
            Ok(_) => Outcome::Complete(SysResult::Err(Errno::ENOTDIR)),
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    // Small helpers kept here so the parent module stays readable.

    pub(crate) fn tasks_contains(&self, pid: Pid) -> bool {
        self.task(pid).is_ok()
    }

    pub(crate) fn remove_task(&mut self, pid: Pid) {
        self.remove_task_impl(pid);
    }
}
