//! Pending (blocked) system calls and the kernel's internal HTTP clients.
//!
//! The kernel never blocks its event loop.  A system call that cannot finish
//! immediately — a read on an empty pipe, a write to a full pipe, `wait4`
//! with no zombie children, `accept` with no pending connections — is parked
//! as a [`PendingSyscall`] and retried whenever kernel state changes, which is
//! the "read-side wait queue" design the paper describes for pipes.

use crossbeam::channel::Sender;

use browsix_fs::Errno;
use browsix_http::{parse_response, HttpResponse};

use crate::fd::Fd;
use crate::kernel::{KernelState, ReplyTo};
use crate::socket::ConnectionId;
use crate::syscall::SysResult;
use crate::task::Pid;

/// Why a system call is parked.
#[derive(Debug)]
pub(crate) enum PendingKind {
    /// A read waiting for data (or EOF).
    Read {
        /// Descriptor being read.
        fd: Fd,
        /// Requested length.
        len: usize,
    },
    /// A write waiting for pipe space.
    Write {
        /// Descriptor being written.
        fd: Fd,
        /// The full payload.
        data: Vec<u8>,
        /// How much has been accepted so far.
        written: usize,
    },
    /// `wait4` waiting for a child to exit.
    Wait4 {
        /// Target pid (-1 = any child).
        target: i32,
        /// Original options word.
        options: u32,
    },
    /// `accept` waiting for an incoming connection.
    Accept {
        /// The listening descriptor.
        fd: Fd,
    },
}

/// A parked system call.
#[derive(Debug)]
pub(crate) struct PendingSyscall {
    /// The calling process.
    pub pid: Pid,
    /// How to reply when the call completes.
    pub reply: ReplyTo,
    /// What the call is waiting for.
    pub kind: PendingKind,
}

/// State of one host-initiated HTTP request to an in-Browsix server.
pub(crate) struct HttpClientState {
    /// The loopback connection carrying the exchange.
    pub connection: ConnectionId,
    /// The serialized request.
    pub to_send: Vec<u8>,
    /// How many request bytes have been pushed into the connection so far.
    pub sent: usize,
    /// Response bytes accumulated so far.
    pub received: Vec<u8>,
    /// Where the parsed response goes.
    pub reply: Sender<Result<HttpResponse, Errno>>,
}

enum Progress {
    /// The call completed with this result.
    Done(SysResult),
    /// Still waiting; possibly with updated state.
    Waiting(PendingKind),
}

impl KernelState {
    /// Retries every pending system call until no further progress is made.
    pub(crate) fn poll_pending(&mut self) {
        loop {
            let mut progressed = false;
            let mut remaining = Vec::new();
            let pending = std::mem::take(self.pending_list());
            for entry in pending {
                if !self.tasks_contains(entry.pid) {
                    progressed = true;
                    continue;
                }
                match self.try_pending(entry.pid, &entry.kind) {
                    Progress::Done(result) => {
                        self.complete(entry.pid, entry.reply, result);
                        progressed = true;
                    }
                    Progress::Waiting(kind) => remaining.push(PendingSyscall { kind, ..entry }),
                }
            }
            // Anything newly blocked while completing callbacks is appended
            // after the survivors so ordering stays roughly FIFO.
            let newly_blocked = std::mem::take(self.pending_list());
            let mut next = remaining;
            next.extend(newly_blocked);
            *self.pending_list() = next;
            if !progressed {
                break;
            }
        }
    }

    fn try_pending(&mut self, pid: Pid, kind: &PendingKind) -> Progress {
        match kind {
            PendingKind::Read { fd, len } => match self.try_read_fd(pid, *fd, *len) {
                Ok(Some(data)) => Progress::Done(SysResult::Data(data)),
                Ok(None) => Progress::Waiting(PendingKind::Read { fd: *fd, len: *len }),
                Err(e) => Progress::Done(SysResult::Err(e)),
            },
            PendingKind::Write { fd, data, written } => match self.try_write_fd(pid, *fd, &data[*written..]) {
                Ok((accepted, _)) => {
                    let new_written = written + accepted;
                    if new_written >= data.len() {
                        Progress::Done(SysResult::Int(data.len() as i64))
                    } else {
                        Progress::Waiting(PendingKind::Write {
                            fd: *fd,
                            data: data.clone(),
                            written: new_written,
                        })
                    }
                }
                Err(e) => Progress::Done(SysResult::Err(e)),
            },
            PendingKind::Wait4 { target, options } => match self.try_reap_child(pid, *target) {
                Ok(Some((child, status))) => Progress::Done(SysResult::Wait { pid: child, status }),
                Ok(None) => Progress::Waiting(PendingKind::Wait4 {
                    target: *target,
                    options: *options,
                }),
                Err(e) => Progress::Done(SysResult::Err(e)),
            },
            PendingKind::Accept { fd } => match self.try_accept(pid, *fd) {
                Ok(Some(new_fd)) => Progress::Done(SysResult::Int(new_fd as i64)),
                Ok(None) => Progress::Waiting(PendingKind::Accept { fd: *fd }),
                Err(e) => Progress::Done(SysResult::Err(e)),
            },
        }
    }

    /// Advances every host HTTP client: push remaining request bytes, pull
    /// whatever the server has produced, and complete the request once a full
    /// response has been parsed.
    pub(crate) fn poll_http_clients(&mut self) {
        let mut clients = std::mem::take(self.http_clients_list());
        let mut still_active = Vec::new();
        let mut endpoints_changed = false;
        for mut client in clients.drain(..) {
            let Some(conn) = self.sockets().connection(client.connection) else {
                let _ = client.reply.send(Err(Errno::ECONNRESET));
                endpoints_changed = true;
                continue;
            };
            // Push request bytes.
            if client.sent < client.to_send.len() {
                if let Some(pipe) = self.pipes_mut().get_mut(conn.client_to_server) {
                    client.sent += pipe.push(&client.to_send[client.sent..]);
                }
            }
            // Pull response bytes.
            let mut server_closed = false;
            if let Some(pipe) = self.pipes_mut().get_mut(conn.server_to_client) {
                let chunk = pipe.pop(usize::MAX);
                client.received.extend_from_slice(&chunk);
                server_closed = pipe.write_end_closed() && pipe.is_empty();
            }
            match parse_response(&client.received) {
                Ok(Some(response)) => {
                    let _ = client.reply.send(Ok(response));
                    self.sockets_mut().remove_connection(client.connection);
                    endpoints_changed = true;
                }
                Ok(None) => {
                    if server_closed && client.sent == client.to_send.len() {
                        // Connection closed before a full response arrived.
                        let _ = client.reply.send(Err(Errno::ECONNRESET));
                        self.sockets_mut().remove_connection(client.connection);
                        endpoints_changed = true;
                    } else {
                        still_active.push(client);
                    }
                }
                Err(_) => {
                    let _ = client.reply.send(Err(Errno::EIO));
                    self.sockets_mut().remove_connection(client.connection);
                    endpoints_changed = true;
                }
            }
        }
        *self.http_clients_list() = still_active;
        if endpoints_changed {
            self.recompute_endpoints();
        }
    }
}
