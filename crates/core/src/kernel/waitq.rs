//! Per-resource wait queues: how blocked system calls sleep and wake.
//!
//! The kernel never blocks its event loop.  A system call that cannot finish
//! immediately — a read on an empty stream, a write to a full one, `wait4`
//! with no zombie children, `accept` with no pending connections, a `poll`
//! with nothing ready — is parked as a `Waiter` on the wait queue of
//! exactly the resource(s) it is waiting for (a [`WaitChannel`]).  When that
//! resource changes state (bytes pushed or popped, an endpoint closed, a
//! connection queued, a child exiting), the kernel wakes *that queue only*
//! and retries just its waiters.
//!
//! This is the "read-side wait queue" design the paper describes for pipes,
//! applied uniformly: waking up costs O(waiters on the affected queue), not
//! O(all blocked system calls in the kernel).  The previous implementation
//! kept one flat pending list and re-tried every entry on every kernel event;
//! that full rescan is gone from the hot path.  A debug "scavenger" pass that
//! proves no wakeup is ever lost survives behind the `scavenger` cargo
//! feature (see `KernelState::scavenge`).
//!
//! The kernel's internal HTTP clients (the `XMLHttpRequest`-like host API)
//! are ordinary waiters too: each parks on the wait queues of its
//! connection's two streams and is pumped only when one of them changes.

use std::collections::HashMap;
use std::time::Instant;

use crossbeam::channel::Sender;

use browsix_fs::Errno;
use browsix_http::{parse_response, HttpResponse};

use crate::fd::Fd;
use crate::kernel::{KernelState, ReplyTo, ShardMsg};
use crate::socket::ConnectionId;
use crate::streams::StreamId;
use crate::syscall::{PollRequest, SysResult};
use crate::task::Pid;

/// A wakeup source: the single kernel resource (and direction) a blocked
/// operation is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitChannel {
    /// The stream gained data, hit EOF, or was destroyed: blocked reads (and
    /// `poll`s for readability) should retry.
    StreamReadable(StreamId),
    /// The stream gained space, lost its readers, or was destroyed: blocked
    /// writes (and `poll`s for writability) should retry.
    StreamWritable(StreamId),
    /// The listener on this port queued a connection (or went away):
    /// blocked accepts should retry.
    Listener(u16),
    /// A child of this process changed state: blocked `wait4`s should retry.
    ChildOf(Pid),
}

/// Identifier of a parked waiter within a [`WaitTable`].
pub type WaiterId = u64;

/// A minimal Fx-style hasher for the wait table's maps.
///
/// The park/wake round trip is the kernel's hottest non-I/O path, and
/// profiles of the `readiness/wake_one_1` benchmark showed the standard
/// library's DoS-resistant SipHash dominating its fixed cost.  Keys here are
/// kernel-generated integers (waiter ids, stream ids, pids, ports), never
/// attacker-chosen, so a fast multiply-rotate hash is safe.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// [`std::hash::BuildHasherDefault`] over [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// The waiters parked on one channel.  Almost every channel has exactly one
/// waiter (a pipe has one reader), so the single-waiter case is stored
/// inline and allocates nothing.
#[derive(Debug)]
enum WaiterList {
    One(WaiterId),
    Many(Vec<WaiterId>),
}

impl WaiterList {
    fn push(&mut self, id: WaiterId) {
        match self {
            WaiterList::One(first) => *self = WaiterList::Many(vec![*first, id]),
            WaiterList::Many(v) => v.push(id),
        }
    }

    fn len(&self) -> usize {
        match self {
            WaiterList::One(_) => 1,
            WaiterList::Many(v) => v.len(),
        }
    }

    /// Removes `id` if present; returns whether the list is now empty (and
    /// its channel entry should be dropped).
    fn remove_id(&mut self, id: WaiterId) -> bool {
        match self {
            WaiterList::One(only) => *only == id,
            WaiterList::Many(v) => {
                v.retain(|&w| w != id);
                v.is_empty()
            }
        }
    }
}

/// The channels one waiter is parked on.  The dominant case — a read or
/// write waiting on its single stream — stores the channel inline; only
/// `poll` (several descriptors) pays for a vector.
#[derive(Debug)]
pub(crate) enum Channels {
    None,
    One(WaitChannel),
    Many(Vec<WaitChannel>),
}

impl Channels {
    fn from_vec(mut v: Vec<WaitChannel>) -> Channels {
        match v.len() {
            0 => Channels::None,
            1 => Channels::One(v.pop().expect("len checked")),
            _ => Channels::Many(v),
        }
    }

    fn as_slice(&self) -> &[WaitChannel] {
        match self {
            Channels::None => &[],
            Channels::One(ch) => std::slice::from_ref(ch),
            Channels::Many(v) => v.as_slice(),
        }
    }
}

/// A table of parked waiters indexed by the channels they wait on.
///
/// The table is generic over the waiter payload so the kernel can park its
/// `Waiter` records and benchmarks can park plain markers; either way the
/// data structure is the same: `park` registers a payload on one or more
/// channels ([`WaitTable::park_one`] is the allocation-free single-channel
/// fast path), and `take_channel` removes and returns every payload parked
/// on one channel in O(waiters on that channel) — independent of how many
/// waiters exist in total, which is the whole point of the design.
#[derive(Debug)]
pub struct WaitTable<T> {
    next_id: WaiterId,
    waiters: HashMap<WaiterId, (T, Channels), FxBuildHasher>,
    channels: HashMap<WaitChannel, WaiterList, FxBuildHasher>,
}

impl<T> Default for WaitTable<T> {
    fn default() -> WaitTable<T> {
        WaitTable {
            next_id: 0,
            waiters: HashMap::default(),
            channels: HashMap::default(),
        }
    }
}

impl<T> WaitTable<T> {
    /// Creates an empty table.
    pub fn new() -> WaitTable<T> {
        WaitTable::default()
    }

    /// Number of parked waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether no waiter is parked.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Number of waiters parked on `channel`.
    pub fn waiting_on(&self, channel: WaitChannel) -> usize {
        self.channels.get(&channel).map(WaiterList::len).unwrap_or(0)
    }

    /// Parks `payload` on every channel in `channels` (possibly none, for
    /// purely timer-driven waiters), returning its id.
    pub fn park(&mut self, channels: Vec<WaitChannel>, payload: T) -> WaiterId {
        self.park_channels(Channels::from_vec(channels), payload)
    }

    /// Parks `payload` on exactly one channel — the hot path for blocked
    /// reads, writes and accepts — without allocating a channel list.
    pub fn park_one(&mut self, channel: WaitChannel, payload: T) -> WaiterId {
        self.park_channels(Channels::One(channel), payload)
    }

    pub(crate) fn park_channels(&mut self, channels: Channels, payload: T) -> WaiterId {
        let id = self.next_id;
        self.next_id += 1;
        for channel in channels.as_slice() {
            self.channels
                .entry(*channel)
                .and_modify(|list| list.push(id))
                .or_insert(WaiterList::One(id));
        }
        self.waiters.insert(id, (payload, channels));
        id
    }

    /// Removes and returns every waiter parked on `channel`, deregistering
    /// each from any other channels it was parked on.
    pub fn take_channel(&mut self, channel: WaitChannel) -> Vec<T> {
        let Some(list) = self.channels.remove(&channel) else {
            return Vec::new();
        };
        match list {
            WaiterList::One(id) => self.remove_registered(id, Some(channel)).into_iter().collect(),
            WaiterList::Many(ids) => {
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    if let Some(payload) = self.remove_registered(id, Some(channel)) {
                        out.push(payload);
                    }
                }
                out
            }
        }
    }

    /// Removes one waiter by id (used when a `poll` deadline fires).
    pub fn remove(&mut self, id: WaiterId) -> Option<T> {
        self.remove_registered(id, None)
    }

    /// Removes every waiter, returning the payloads (the scavenger pass).
    pub fn drain_all(&mut self) -> Vec<T> {
        self.channels.clear();
        self.waiters.drain().map(|(_, (payload, _))| payload).collect()
    }

    /// Keeps only the waiters whose payload satisfies `keep` (used to drop a
    /// dead process's waiters).
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut keep: F) {
        let dead: Vec<WaiterId> = self
            .waiters
            .iter()
            .filter(|(_, (payload, _))| !keep(payload))
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            self.remove_registered(id, None);
        }
    }

    /// Removes and returns every waiter whose payload satisfies `matches`
    /// (used to interrupt a signalled process's blocked system calls with
    /// `EINTR`).
    pub fn take_matching<F: FnMut(&T) -> bool>(&mut self, mut matches: F) -> Vec<T> {
        let ids: Vec<WaiterId> = self
            .waiters
            .iter()
            .filter(|(_, (payload, _))| matches(payload))
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.remove_registered(id, None))
            .collect()
    }

    /// Counts the waiters whose payload satisfies `matches` (scavenger-mode
    /// assertions over signal interruption).
    pub fn count_matching<F: FnMut(&T) -> bool>(&self, mut matches: F) -> usize {
        self.waiters.values().filter(|(payload, _)| matches(payload)).count()
    }

    /// Removes `id` from the waiter map and from every channel list it is
    /// registered on (skipping `already_removed`, whose list is being
    /// drained by the caller).
    fn remove_registered(&mut self, id: WaiterId, already_removed: Option<WaitChannel>) -> Option<T> {
        let (payload, channels) = self.waiters.remove(&id)?;
        for &channel in channels.as_slice() {
            if Some(channel) == already_removed {
                continue;
            }
            if let Some(list) = self.channels.get_mut(&channel) {
                if list.remove_id(id) {
                    self.channels.remove(&channel);
                }
            }
        }
        Some(payload)
    }
}

/// What a parked waiter retries when its channel wakes.
#[derive(Debug)]
pub(crate) enum WaitKind {
    /// A read waiting for data (or EOF).
    Read {
        /// Descriptor being read.
        fd: Fd,
        /// Requested length.
        len: usize,
    },
    /// A write waiting for stream space.
    Write {
        /// Descriptor being written.
        fd: Fd,
        /// The full payload.
        data: Vec<u8>,
        /// How much has been accepted so far.
        written: usize,
    },
    /// `wait4` waiting for a child to exit (or stop, under `WUNTRACED`).
    Wait4 {
        /// Target pid (-1 = any child).
        target: i32,
        /// The `wait4` option bits (`WUNTRACED` matters while parked).
        options: u32,
    },
    /// `accept` waiting for an incoming connection.
    Accept {
        /// The listening descriptor.
        fd: Fd,
    },
    /// `sendfile` waiting for space in the output stream.
    Sendfile {
        /// Stream-backed destination descriptor.
        out_fd: Fd,
        /// Regular-file source descriptor.
        in_fd: Fd,
        /// Current read position in the source file.
        offset: u64,
        /// Bytes still to transfer.
        remaining: u64,
        /// Bytes already pushed into the output stream.
        sent: u64,
        /// Whether the source descriptor's cursor tracks the transfer
        /// (the caller passed offset −1).
        advance_cursor: bool,
    },
    /// `splice` waiting for input bytes or output space.
    Splice {
        /// Stream-backed source descriptor.
        fd_in: Fd,
        /// Stream-backed destination descriptor.
        fd_out: Fd,
        /// Maximum bytes to move.
        len: u64,
    },
    /// `poll` waiting for the first ready descriptor or its timeout.
    Poll {
        /// The descriptors and event masks being polled.
        fds: Vec<PollRequest>,
        /// When the poll times out (None = wait forever).
        deadline: Option<Instant>,
    },
    /// A kernel-internal HTTP client waiting for its connection's streams.
    HttpClient {
        /// The loopback connection carrying the exchange.
        connection: ConnectionId,
    },
    /// A read submitted by a process on another shard
    /// ([`ShardMsg::RemoteRead`]), parked here on the stream's owner; its
    /// completion travels back as a [`ShardMsg::RemoteOpDone`].
    RemoteRead {
        /// The locally-owned stream being read.
        stream: StreamId,
        /// Requested length.
        len: usize,
        /// The submitter's completion token.
        token: u64,
        /// The shard the submitting process lives on.
        from_shard: usize,
    },
    /// A write submitted by a process on another shard
    /// ([`ShardMsg::RemoteWrite`]), parked here on the stream's owner.
    RemoteWrite {
        /// The locally-owned stream being written.
        stream: StreamId,
        /// The full payload.
        data: Vec<u8>,
        /// How much has been accepted so far.
        written: usize,
        /// The submitter's completion token.
        token: u64,
        /// The shard the submitting process lives on.
        from_shard: usize,
    },
}

/// A parked blocked operation.
#[derive(Debug)]
pub(crate) struct Waiter {
    /// The calling process (0 for kernel-internal HTTP clients).
    pub pid: Pid,
    /// How to reply when the operation completes (None for HTTP clients,
    /// which reply over their own channel).
    pub reply: Option<ReplyTo>,
    /// What to retry on wakeup.
    pub kind: WaitKind,
}

/// State of one host-initiated HTTP request to an in-Browsix server.
pub(crate) struct HttpClientState {
    /// The loopback connection carrying the exchange.
    pub connection: ConnectionId,
    /// The serialized request.
    pub to_send: Vec<u8>,
    /// How many request bytes have been pushed into the connection so far.
    pub sent: usize,
    /// Response bytes accumulated so far.
    pub received: Vec<u8>,
    /// Where the parsed response goes.
    pub reply: Sender<Result<HttpResponse, Errno>>,
}

/// Outcome of pumping a kernel HTTP client.
pub(crate) enum HttpPump {
    /// The exchange finished (successfully or not); the client is gone.
    Done,
    /// Still in progress; park on these channels.
    Blocked(Vec<WaitChannel>),
}

impl KernelState {
    /// Parks a blocked operation on the given channels, tracking any `poll`
    /// deadline it carries.
    ///
    /// Parking re-checks the waiter's condition *after* it is registered:
    /// attempting the operation can itself cascade nested wakeups (a partial
    /// write wakes a reader, which drains the stream and frees space) that
    /// fire before this waiter is on any queue.  Without the re-check such a
    /// waiter would sleep on a state change that already happened — the
    /// classic lost-wakeup race, just single-threaded.
    pub(crate) fn park_waiter(&mut self, channels: Vec<WaitChannel>, waiter: Waiter) {
        self.park_waiter_channels(Channels::from_vec(channels), waiter);
    }

    /// Single-channel [`KernelState::park_waiter`]: the hot path for blocked
    /// reads, writes, accepts and sendfiles, free of channel-list allocation.
    pub(crate) fn park_waiter_one(&mut self, channel: WaitChannel, waiter: Waiter) {
        self.park_waiter_channels(Channels::One(channel), waiter);
    }

    fn park_waiter_channels(&mut self, channels: Channels, waiter: Waiter) {
        let mut deadline = match &waiter.kind {
            WaitKind::Poll { deadline, .. } => *deadline,
            _ => None,
        };
        // A polled descriptor owned by another shard never produces a local
        // wake by itself: ask the owner for a readiness snapshot now (the
        // answer lands in the revents cache and wakes us if it changed) and
        // arm a short tick as the fallback retry.  The tick fires the retry
        // early; the poll's own deadline still decides the actual timeout.
        if let WaitKind::Poll { fds, .. } = &waiter.kind {
            let remote = self.remote_poll_streams(waiter.pid, fds);
            if !remote.is_empty() {
                for &stream in &remote {
                    self.send_shard(
                        crate::kernel::shard::stream_shard(stream),
                        ShardMsg::PollQuery {
                            stream,
                            from_shard: self.shard_id(),
                        },
                    );
                }
                let tick = Instant::now() + std::time::Duration::from_millis(2);
                deadline = Some(deadline.map_or(tick, |d| d.min(tick)));
            }
        }
        let actionable = self.waiter_actionable(&waiter);
        let id = self.waiters.park_channels(channels, waiter);
        if let Some(deadline) = deadline {
            self.poll_deadlines.push((deadline, id));
        }
        if actionable {
            if let Some(waiter) = self.waiters.remove(id) {
                self.retry_waiter(waiter);
            }
        }
    }

    /// Whether retrying `waiter` right now would make progress (complete,
    /// error out, or move bytes).  Must agree exactly with the would-block
    /// decisions in the corresponding `try_*` paths: an "actionable" waiter
    /// that re-parks unchanged would spin forever.
    fn waiter_actionable(&self, waiter: &Waiter) -> bool {
        match &waiter.kind {
            WaitKind::Read { fd, .. } => match self.read_wait_channel(waiter.pid, *fd) {
                Some(WaitChannel::StreamReadable(id)) => {
                    // A missing stream reads EOF immediately.
                    self.streams().get(id).is_none_or(crate::streams::Stream::read_ready)
                }
                // No longer stream-backed: the retry will error out.
                _ => true,
            },
            WaitKind::Write { fd, .. } => match self.write_wait_channel(waiter.pid, *fd) {
                Some(WaitChannel::StreamWritable(id)) => {
                    // A missing stream raises EPIPE immediately.
                    self.streams().get(id).is_none_or(crate::streams::Stream::write_ready)
                }
                _ => true,
            },
            // Nothing that runs between a failed reap and the park can
            // produce a zombie child; exits always arrive as later events.
            WaitKind::Wait4 { .. } => false,
            WaitKind::Accept { fd } => match self.accept_wait_channel(waiter.pid, *fd) {
                Some(WaitChannel::Listener(port)) => {
                    // A connection is waiting, or the listener itself is gone
                    // (the retry then fails with EINVAL instead of parking).
                    self.sockets().has_pending(port) || !self.sockets().port_in_use(port)
                }
                _ => true,
            },
            // Parked only because the output stream filled: mirror the Write
            // arm, keyed on the destination descriptor.
            WaitKind::Sendfile { out_fd, .. } => match self.write_wait_channel(waiter.pid, *out_fd) {
                Some(WaitChannel::StreamWritable(id)) => {
                    self.streams().get(id).is_none_or(crate::streams::Stream::write_ready)
                }
                _ => true,
            },
            WaitKind::Splice { fd_in, fd_out, .. } => {
                match (
                    self.read_wait_channel(waiter.pid, *fd_in),
                    self.write_wait_channel(waiter.pid, *fd_out),
                ) {
                    (Some(WaitChannel::StreamReadable(i)), Some(WaitChannel::StreamWritable(o))) => {
                        match (self.streams().get(i), self.streams().get(o)) {
                            // A missing input reads EOF, a missing output
                            // raises EPIPE: either completes the retry.
                            (None, _) | (_, None) => true,
                            (Some(input), Some(output)) => {
                                if output.read_end_closed() {
                                    true
                                } else if input.is_empty() {
                                    input.write_end_closed()
                                } else {
                                    output.space() > 0
                                }
                            }
                        }
                    }
                    // No longer stream-backed: the retry will error out.
                    _ => true,
                }
            }
            WaitKind::Poll { fds, .. } => self.poll_revents(waiter.pid, fds).iter().any(|&r| r != 0),
            WaitKind::HttpClient { connection } => self.http_client_actionable(*connection),
            // A missing stream completes immediately (EOF / EPIPE).
            WaitKind::RemoteRead { stream, .. } => self
                .streams()
                .get(*stream)
                .is_none_or(crate::streams::Stream::read_ready),
            WaitKind::RemoteWrite { stream, .. } => self
                .streams()
                .get(*stream)
                .is_none_or(crate::streams::Stream::write_ready),
        }
    }

    /// Whether pumping the given HTTP client would make progress, mirroring
    /// the would-block decision in [`KernelState::pump_http_client`].
    fn http_client_actionable(&self, connection: ConnectionId) -> bool {
        let Some(client) = self.http_clients.iter().find(|c| c.connection == connection) else {
            return false;
        };
        let Some(conn) = self.sockets().connection(connection) else {
            return true;
        };
        let response_ready = self
            .streams()
            .get(conn.server_to_client)
            .is_none_or(crate::streams::Stream::read_ready);
        let request_sendable = client.sent < client.to_send.len()
            && self
                .streams()
                .get(conn.client_to_server)
                .is_none_or(crate::streams::Stream::write_ready);
        response_ready || request_sendable
    }

    /// Wakes every waiter parked on `channel`: each is removed from the
    /// table and retried; waiters that still cannot make progress re-park
    /// themselves (counted as spurious wakeups).
    ///
    /// Retrying a waiter can itself change kernel state (a completed write
    /// fills a stream someone is reading), so nested wakes are queued and
    /// drained iteratively rather than recursing.
    pub(crate) fn wake(&mut self, channel: WaitChannel) {
        self.wake_queue.push_back(channel);
        if self.waking {
            return;
        }
        self.waking = true;
        while let Some(next) = self.wake_queue.pop_front() {
            for waiter in self.waiters.take_channel(next) {
                self.retry_waiter(waiter);
            }
        }
        self.waking = false;
    }

    /// Drops every waiter belonging to `pid` (the process exited; nobody is
    /// left to receive the completions).
    pub(crate) fn drop_waiters_of(&mut self, pid: Pid) {
        self.waiters.retain(|w| w.pid != pid);
        // Operations executing on foreign shards on this process's behalf:
        // tell the owner to drop its parked side too.  A completion already
        // in flight finds no token here and is discarded — exactly once
        // either way.
        let tokens: Vec<u64> = self
            .remote_ops
            .iter()
            .filter(|(_, op)| op.pid == pid)
            .map(|(&token, _)| token)
            .collect();
        for token in tokens {
            if let Some(op) = self.remote_ops.remove(&token) {
                self.send_shard(op.owner, ShardMsg::CancelOp { token });
            }
        }
    }

    /// Retries one woken waiter: complete it, or re-park it on the channels
    /// it still needs.
    pub(crate) fn retry_waiter(&mut self, waiter: Waiter) {
        let Waiter { pid, reply, kind } = waiter;
        // Remote operations carry a pid that lives on another shard; their
        // liveness is the submitter's problem (it cancels via CancelOp).
        if !matches!(
            kind,
            WaitKind::HttpClient { .. } | WaitKind::RemoteRead { .. } | WaitKind::RemoteWrite { .. }
        ) && !self.tasks_contains(pid)
        {
            return;
        }
        match kind {
            WaitKind::Read { fd, len } => match self.try_read_fd(pid, fd, len) {
                Ok(Some(data)) => self.finish_waiter(pid, reply, SysResult::Data(data)),
                Ok(None) => match self.read_wait_channel(pid, fd) {
                    Some(channel) => self.repark_one(
                        channel,
                        Waiter {
                            pid,
                            reply,
                            kind: WaitKind::Read { fd, len },
                        },
                    ),
                    None => self.finish_waiter(pid, reply, SysResult::Err(Errno::EIO)),
                },
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Write { fd, data, written } => match self.try_write_fd(pid, fd, &data[written..]) {
                Ok((accepted, _)) => {
                    let written = written + accepted;
                    if written >= data.len() {
                        self.finish_waiter(pid, reply, SysResult::Int(data.len() as i64));
                    } else {
                        match self.write_wait_channel(pid, fd) {
                            Some(channel) => {
                                if accepted == 0 {
                                    self.stats.spurious_wakeups += 1;
                                }
                                let kind = WaitKind::Write { fd, data, written };
                                self.park_waiter_one(channel, Waiter { pid, reply, kind });
                            }
                            None => self.finish_waiter(pid, reply, SysResult::Err(Errno::EIO)),
                        }
                    }
                }
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Wait4 { target, options } => match self.try_reap_child(pid, target, options) {
                Ok(Some((child, status))) => self.finish_waiter(pid, reply, SysResult::Wait { pid: child, status }),
                Ok(None) => self.repark_one(
                    WaitChannel::ChildOf(pid),
                    Waiter {
                        pid,
                        reply,
                        kind: WaitKind::Wait4 { target, options },
                    },
                ),
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Accept { fd } => match self.try_accept(pid, fd) {
                Ok(Some(new_fd)) => self.finish_waiter(pid, reply, SysResult::Int(new_fd as i64)),
                Ok(None) => match self.accept_wait_channel(pid, fd) {
                    Some(channel) => self.repark_one(
                        channel,
                        Waiter {
                            pid,
                            reply,
                            kind: WaitKind::Accept { fd },
                        },
                    ),
                    None => self.finish_waiter(pid, reply, SysResult::Err(Errno::EBADF)),
                },
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Sendfile {
                out_fd,
                in_fd,
                mut offset,
                mut remaining,
                sent,
                advance_cursor,
            } => match self.pump_sendfile(pid, out_fd, in_fd, &mut offset, &mut remaining, advance_cursor) {
                Ok((pushed, done)) => {
                    let sent = sent + pushed;
                    if done {
                        self.finish_waiter(pid, reply, SysResult::Int(sent as i64));
                    } else {
                        match self.write_wait_channel(pid, out_fd) {
                            Some(channel) => {
                                if pushed == 0 {
                                    self.stats.spurious_wakeups += 1;
                                }
                                let kind = WaitKind::Sendfile {
                                    out_fd,
                                    in_fd,
                                    offset,
                                    remaining,
                                    sent,
                                    advance_cursor,
                                };
                                self.park_waiter_one(channel, Waiter { pid, reply, kind });
                            }
                            None => self.finish_waiter(pid, reply, SysResult::Err(Errno::EIO)),
                        }
                    }
                }
                // A transfer that already moved bytes reports them; the error
                // will resurface on the next call.
                Err(_) if sent > 0 => self.finish_waiter(pid, reply, SysResult::Int(sent as i64)),
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Splice { fd_in, fd_out, len } => match self.try_splice(pid, fd_in, fd_out, len) {
                Ok(Some(moved)) => self.finish_waiter(pid, reply, SysResult::Int(moved as i64)),
                Ok(None) => match (self.read_wait_channel(pid, fd_in), self.write_wait_channel(pid, fd_out)) {
                    (Some(a), Some(b)) => self.repark(
                        vec![a, b],
                        Waiter {
                            pid,
                            reply,
                            kind: WaitKind::Splice { fd_in, fd_out, len },
                        },
                    ),
                    _ => self.finish_waiter(pid, reply, SysResult::Err(Errno::EIO)),
                },
                Err(e) => self.finish_waiter(pid, reply, SysResult::Err(e)),
            },
            WaitKind::Poll { fds, deadline } => {
                let revents = self.poll_revents(pid, &fds);
                if revents.iter().any(|&r| r != 0) {
                    self.finish_waiter(pid, reply, SysResult::Poll(revents));
                } else if deadline.is_some_and(|d| Instant::now() >= d) {
                    // Timer-driven, deliberately not counted as a wakeup (the
                    // scavenger asserts on the wakeup counter).
                    self.stats.poll_timeouts += 1;
                    if let Some(reply) = reply {
                        self.complete(pid, reply, SysResult::Poll(revents));
                    }
                } else {
                    let channels = self.poll_wait_channels(pid, &fds);
                    self.repark(
                        channels,
                        Waiter {
                            pid,
                            reply,
                            kind: WaitKind::Poll { fds, deadline },
                        },
                    );
                }
            }
            WaitKind::HttpClient { connection } => match self.pump_http_client(connection) {
                HttpPump::Done => self.stats.wakeups += 1,
                HttpPump::Blocked(channels) => self.repark(
                    channels,
                    Waiter {
                        pid,
                        reply,
                        kind: WaitKind::HttpClient { connection },
                    },
                ),
            },
            WaitKind::RemoteRead {
                stream,
                len,
                token,
                from_shard,
            } => match self.try_remote_read(stream, len) {
                Some(result) => {
                    self.stats.wakeups += 1;
                    self.stats.cross_shard_wakeups += 1;
                    self.send_shard(
                        from_shard,
                        ShardMsg::RemoteOpDone {
                            token,
                            result,
                            raise_sigpipe: false,
                        },
                    );
                }
                None => self.repark_one(
                    WaitChannel::StreamReadable(stream),
                    Waiter {
                        pid,
                        reply,
                        kind: WaitKind::RemoteRead {
                            stream,
                            len,
                            token,
                            from_shard,
                        },
                    },
                ),
            },
            WaitKind::RemoteWrite {
                stream,
                data,
                written,
                token,
                from_shard,
            } => match self.try_remote_write(stream, &data[written..]) {
                // Mid-wait EPIPE mirrors the local Write arm: the error (and
                // the submitter-side SIGPIPE) wins over the partial count.
                Err(errno) => {
                    self.stats.wakeups += 1;
                    self.stats.cross_shard_wakeups += 1;
                    self.send_shard(
                        from_shard,
                        ShardMsg::RemoteOpDone {
                            token,
                            result: SysResult::Err(errno),
                            raise_sigpipe: errno == Errno::EPIPE,
                        },
                    );
                }
                Ok(accepted) => {
                    let written = written + accepted;
                    if written >= data.len() {
                        self.stats.wakeups += 1;
                        self.stats.cross_shard_wakeups += 1;
                        self.send_shard(
                            from_shard,
                            ShardMsg::RemoteOpDone {
                                token,
                                result: SysResult::Int(written as i64),
                                raise_sigpipe: false,
                            },
                        );
                    } else {
                        if accepted == 0 {
                            self.stats.spurious_wakeups += 1;
                        }
                        let kind = WaitKind::RemoteWrite {
                            stream,
                            data,
                            written,
                            token,
                            from_shard,
                        };
                        self.park_waiter_one(WaitChannel::StreamWritable(stream), Waiter { pid, reply, kind });
                    }
                }
            },
        }
    }

    /// Completes a woken waiter's system call.
    fn finish_waiter(&mut self, pid: Pid, reply: Option<ReplyTo>, result: SysResult) {
        self.stats.wakeups += 1;
        if let Some(reply) = reply {
            self.complete(pid, reply, result);
        }
    }

    /// Re-parks a waiter that was woken but could not make progress.
    fn repark(&mut self, channels: Vec<WaitChannel>, waiter: Waiter) {
        self.stats.spurious_wakeups += 1;
        self.park_waiter(channels, waiter);
    }

    /// Single-channel [`KernelState::repark`].
    fn repark_one(&mut self, channel: WaitChannel, waiter: Waiter) {
        self.stats.spurious_wakeups += 1;
        self.park_waiter_one(channel, waiter);
    }

    /// Retries every parked waiter, asserting that none of them completes —
    /// if one does, a state change somewhere forgot to wake its channel.
    ///
    /// Compiled only under the `scavenger` cargo feature; the assertion is a
    /// `debug_assert`, so a release build with the feature merely repairs the
    /// lost wakeup.  Enabling the feature makes every retried waiter count as
    /// a spurious wakeup, so the statistics are for debugging only.
    #[cfg(feature = "scavenger")]
    pub(crate) fn scavenge(&mut self) {
        let completed_before = self.stats.wakeups;
        for waiter in self.waiters.drain_all() {
            self.retry_waiter(waiter);
        }
        debug_assert_eq!(
            self.stats.wakeups, completed_before,
            "wait-queue scavenger found a lost wakeup: a kernel state change did not wake the channel a waiter was parked on"
        );
    }

    // ---- the kernel's internal HTTP clients -----------------------------------

    /// Advances one host HTTP client: push pending request bytes, pull
    /// whatever the server has produced, and complete the request once a
    /// full response has been parsed (or the connection dies).
    pub(crate) fn pump_http_client(&mut self, connection: ConnectionId) -> HttpPump {
        let Some(index) = self.http_clients.iter().position(|c| c.connection == connection) else {
            return HttpPump::Done;
        };
        let mut client = self.http_clients.swap_remove(index);
        let Some(conn) = self.sockets().connection(connection) else {
            let _ = client.reply.send(Err(Errno::ECONNRESET));
            self.recompute_endpoints();
            return HttpPump::Done;
        };
        // Push request bytes towards the server.  A vanished or reader-less
        // request stream means the server will never see the rest of the
        // request, which kills the exchange.
        let mut request_dead = false;
        if client.sent < client.to_send.len() {
            match self.streams.get_mut(conn.client_to_server) {
                Some(stream) if !stream.read_end_closed() => {
                    let pushed = stream.push(&client.to_send[client.sent..]);
                    client.sent += pushed;
                    if pushed > 0 {
                        self.wake(WaitChannel::StreamReadable(conn.client_to_server));
                    }
                }
                _ => request_dead = true,
            }
        }
        // Pull response bytes from the server.  A vanished stream counts as
        // closed: no more bytes can ever arrive.
        let mut server_closed = true;
        if let Some(stream) = self.streams.get_mut(conn.server_to_client) {
            let chunk = stream.pop(usize::MAX);
            server_closed = stream.write_end_closed() && stream.is_empty();
            if !chunk.is_empty() {
                client.received.extend_from_slice(&chunk);
                self.wake(WaitChannel::StreamWritable(conn.server_to_client));
            }
        }
        match parse_response(&client.received) {
            Ok(Some(response)) => {
                let _ = client.reply.send(Ok(response));
                self.sockets_mut().remove_connection(connection);
                self.recompute_endpoints();
                HttpPump::Done
            }
            Ok(None) if server_closed || request_dead => {
                // Connection closed before a full response arrived.
                let _ = client.reply.send(Err(Errno::ECONNRESET));
                self.sockets_mut().remove_connection(connection);
                self.recompute_endpoints();
                HttpPump::Done
            }
            Ok(None) => {
                let mut channels = vec![WaitChannel::StreamReadable(conn.server_to_client)];
                if client.sent < client.to_send.len() {
                    channels.push(WaitChannel::StreamWritable(conn.client_to_server));
                }
                self.http_clients.push(client);
                HttpPump::Blocked(channels)
            }
            Err(_) => {
                let _ = client.reply.send(Err(Errno::EIO));
                self.sockets_mut().remove_connection(connection);
                self.recompute_endpoints();
                HttpPump::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_and_take_channel_returns_only_that_channels_waiters() {
        let mut table: WaitTable<&'static str> = WaitTable::new();
        table.park(vec![WaitChannel::StreamReadable(1)], "read-1");
        table.park(vec![WaitChannel::StreamReadable(2)], "read-2");
        table.park(vec![WaitChannel::StreamWritable(1)], "write-1");
        assert_eq!(table.len(), 3);
        assert_eq!(table.waiting_on(WaitChannel::StreamReadable(1)), 1);

        let woken = table.take_channel(WaitChannel::StreamReadable(1));
        assert_eq!(woken, vec!["read-1"]);
        assert_eq!(table.len(), 2);
        assert!(table.take_channel(WaitChannel::StreamReadable(1)).is_empty());
    }

    #[test]
    fn multi_channel_waiter_is_deregistered_everywhere_on_first_wake() {
        let mut table: WaitTable<u32> = WaitTable::new();
        table.park(vec![WaitChannel::StreamReadable(7), WaitChannel::Listener(80)], 42);
        assert_eq!(table.take_channel(WaitChannel::Listener(80)), vec![42]);
        // The other registration must be gone too.
        assert!(table.take_channel(WaitChannel::StreamReadable(7)).is_empty());
        assert!(table.is_empty());
    }

    #[test]
    fn retain_drops_waiters_and_their_registrations() {
        let mut table: WaitTable<u32> = WaitTable::new();
        table.park(vec![WaitChannel::ChildOf(1)], 1);
        table.park(vec![WaitChannel::ChildOf(1)], 2);
        table.retain(|&v| v != 1);
        assert_eq!(table.take_channel(WaitChannel::ChildOf(1)), vec![2]);
    }

    #[test]
    fn remove_by_id_and_drain_all() {
        let mut table: WaitTable<u32> = WaitTable::new();
        let id = table.park(Vec::new(), 9);
        assert_eq!(table.remove(id), Some(9));
        assert_eq!(table.remove(id), None);

        table.park(vec![WaitChannel::StreamReadable(1)], 1);
        table.park(vec![WaitChannel::StreamWritable(1)], 2);
        let mut drained = table.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert!(table.is_empty());
        assert!(table.take_channel(WaitChannel::StreamReadable(1)).is_empty());
    }
}
