//! Socket system-call handlers and the kernel-side HTTP client used by the
//! `XMLHttpRequest`-like host API.

use crossbeam::channel::Sender;

use browsix_fs::Errno;
use browsix_http::{HttpRequest, HttpResponse};

use crate::fd::{Fd, FileKind, OpenFile, SocketSide};
use crate::kernel::waitq::{HttpPump, WaitChannel};
use crate::kernel::{HttpClientState, KernelState, Outcome, ReplyTo, WaitKind, Waiter};
use crate::syscall::SysResult;
use crate::task::Pid;

impl KernelState {
    pub(crate) fn sys_socket(&mut self, pid: Pid) -> Outcome {
        let file = OpenFile::new(FileKind::Socket { bound_port: None });
        match self.task_mut(pid) {
            Ok(task) => {
                let fd = task.files.insert(file, 0);
                Outcome::Complete(SysResult::Int(fd as i64))
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_bind(&mut self, pid: Pid, fd: Fd, port: u16) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::Socket { bound_port: None } => {
                // The port namespace is kernel-global: ephemeral allocation
                // and the in-use check go through the router, not the
                // shard-local listener table.
                let port = if port == 0 {
                    self.router.allocate_ephemeral_port()
                } else {
                    port
                };
                if self.router.port_claimed(port) {
                    return Outcome::Complete(SysResult::Err(Errno::EADDRINUSE));
                }
                file.set_kind(FileKind::Socket { bound_port: Some(port) });
                Outcome::Complete(SysResult::Int(port as i64))
            }
            FileKind::Socket { bound_port: Some(_) } => Outcome::Complete(SysResult::Err(Errno::EINVAL)),
            _ => Outcome::Complete(SysResult::Err(Errno::ENOTSOCK)),
        }
    }

    pub(crate) fn sys_getsockname(&mut self, pid: Pid, fd: Fd) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::Socket { bound_port: Some(port) } | FileKind::SocketListener { port } => {
                Outcome::Complete(SysResult::Int(port as i64))
            }
            FileKind::SocketStream { connection, .. } => {
                let port = self.connection_info(connection).map(|c| c.port).unwrap_or(0);
                Outcome::Complete(SysResult::Int(port as i64))
            }
            FileKind::Socket { bound_port: None } => Outcome::Complete(SysResult::Int(0)),
            _ => Outcome::Complete(SysResult::Err(Errno::ENOTSOCK)),
        }
    }

    pub(crate) fn sys_listen(&mut self, pid: Pid, fd: Fd, backlog: u32) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::Socket { bound_port: Some(port) } => {
                // Claim the port fleet-wide first: the router is the one
                // arbiter of the namespace, so two shards racing to listen on
                // the same port see exactly one winner.
                if let Err(e) = self.router.claim_port(port, self.shard_id) {
                    return Outcome::Complete(SysResult::Err(e));
                }
                if let Err(e) = self.sockets_mut().listen(port, pid, backlog as usize) {
                    self.router.release_port(port, self.shard_id);
                    return Outcome::Complete(SysResult::Err(e));
                }
                file.set_kind(FileKind::SocketListener { port });
                // Socket notification: tell the embedding application a server
                // is ready, so it never needs to poll (§4.1 of the paper).
                self.notify_port_listen(port);
                Outcome::Complete(SysResult::Ok)
            }
            FileKind::Socket { bound_port: None } => Outcome::Complete(SysResult::Err(Errno::EINVAL)),
            FileKind::SocketListener { .. } => Outcome::Complete(SysResult::Ok),
            _ => Outcome::Complete(SysResult::Err(Errno::ENOTSOCK)),
        }
    }

    /// Attempts to accept a pending connection on the listener behind `fd`.
    /// Returns the new descriptor, or `None` if nothing is pending.
    pub(crate) fn try_accept(&mut self, pid: Pid, fd: Fd) -> Result<Option<Fd>, Errno> {
        let file = self.task(pid)?.files.get(fd)?;
        let port = match file.kind() {
            FileKind::SocketListener { port } => port,
            FileKind::Socket { .. } => return Err(Errno::EINVAL),
            _ => return Err(Errno::ENOTSOCK),
        };
        if !self.sockets().port_in_use(port) {
            // The listener was closed (another holder of this description,
            // or the owner exiting).  Error out rather than waiting on a
            // port that can never queue a connection again.
            return Err(Errno::EINVAL);
        }
        let Some(connection) = self.sockets_mut().accept(port) else {
            return Ok(None);
        };
        let stream = OpenFile::new(FileKind::SocketStream {
            connection,
            side: SocketSide::Server,
        });
        let new_fd = self.task_mut(pid)?.files.insert(stream, 0);
        self.recompute_endpoints();
        Ok(Some(new_fd))
    }

    pub(crate) fn sys_accept(&mut self, pid: Pid, reply: ReplyTo, fd: Fd) -> Outcome {
        match self.try_accept(pid, fd) {
            Ok(Some(new_fd)) => Outcome::Complete(SysResult::Int(new_fd as i64)),
            Ok(None) => {
                if self.fd_nonblocking(pid, fd) {
                    self.stats.eagain_returns += 1;
                    return Outcome::Complete(SysResult::Err(Errno::EAGAIN));
                }
                let Some(channel) = self.accept_wait_channel(pid, fd) else {
                    return Outcome::Complete(SysResult::Err(Errno::EBADF));
                };
                self.stats.waiters_parked += 1;
                self.park_waiter_one(
                    channel,
                    Waiter {
                        pid,
                        reply: Some(reply),
                        kind: WaitKind::Accept { fd },
                    },
                );
                Outcome::Blocked
            }
            Err(e) => Outcome::Complete(SysResult::Err(e)),
        }
    }

    pub(crate) fn sys_connect(&mut self, pid: Pid, reply: ReplyTo, fd: Fd, port: u16) -> Outcome {
        let file = match self.task(pid).and_then(|t| t.files.get(fd)) {
            Ok(file) => file,
            Err(e) => return Outcome::Complete(SysResult::Err(e)),
        };
        match file.kind() {
            FileKind::Socket { .. } => {}
            FileKind::SocketStream { .. } => return Outcome::Complete(SysResult::Err(Errno::EINVAL)),
            _ => return Outcome::Complete(SysResult::Err(Errno::ENOTSOCK)),
        }
        if !self.sockets().port_in_use(port) {
            // Not listening here; maybe on another shard.  The owner creates
            // both streams and the connection (so the server side is always
            // shard-local to the listener) and this shard installs the
            // client descriptor when the ConnectReply arrives.
            match self.router.port_owner(port) {
                Some(owner) if owner != self.shard_id => {
                    return self.remote_connect(pid, reply, fd, owner, port);
                }
                _ => return Outcome::Complete(SysResult::Err(Errno::ECONNREFUSED)),
            }
        }
        let client_to_server = self.streams_mut().create();
        let server_to_client = self.streams_mut().create();
        match self.sockets_mut().connect(port, client_to_server, server_to_client) {
            Ok(connection) => {
                file.set_kind(FileKind::SocketStream {
                    connection,
                    side: SocketSide::Client,
                });
                self.recompute_endpoints();
                // Wake exactly the listener's queue: a blocked accept (or a
                // poll on the listener) can now complete.
                self.wake(WaitChannel::Listener(port));
                Outcome::Complete(SysResult::Ok)
            }
            Err(e) => {
                self.streams_mut().remove(client_to_server);
                self.streams_mut().remove(server_to_client);
                Outcome::Complete(SysResult::Err(e))
            }
        }
    }

    // ---- the XMLHttpRequest-like host API ------------------------------------

    /// Starts an HTTP exchange with an in-Browsix server on behalf of the
    /// embedding web application.
    pub(crate) fn host_http_request(
        &mut self,
        port: u16,
        request: HttpRequest,
        reply: Sender<Result<HttpResponse, Errno>>,
    ) {
        if !self.sockets().port_in_use(port) {
            let _ = reply.send(Err(Errno::ECONNREFUSED));
            return;
        }
        let client_to_server = self.streams_mut().create();
        let server_to_client = self.streams_mut().create();
        match self.sockets_mut().connect(port, client_to_server, server_to_client) {
            Ok(connection) => {
                let client = HttpClientState {
                    connection,
                    to_send: request.serialize(),
                    sent: 0,
                    received: Vec::new(),
                    reply,
                };
                self.http_clients.push(client);
                self.recompute_endpoints();
                // The server's blocked accept (or poll) can take the
                // connection now.
                self.wake(WaitChannel::Listener(port));
                // Pump once; if the exchange is still in flight the client
                // parks on its connection's stream queues like any other
                // blocked operation.
                match self.pump_http_client(connection) {
                    HttpPump::Done => {}
                    HttpPump::Blocked(channels) => {
                        self.stats.waiters_parked += 1;
                        self.park_waiter(
                            channels,
                            Waiter {
                                pid: 0,
                                reply: None,
                                kind: WaitKind::HttpClient { connection },
                            },
                        );
                    }
                }
            }
            Err(e) => {
                self.streams_mut().remove(client_to_server);
                self.streams_mut().remove(server_to_client);
                let _ = reply.send(Err(e));
            }
        }
    }
}
