//! Virtual memory: address spaces, regions, copy-on-write pages and shared
//! memory objects.
//!
//! Browsix processes have no hardware page tables — the "MMU" is this module,
//! which is exactly the situation the Virtual Block Interface work argues for:
//! a flexible VM layer built outside the conventional page-table framework.
//! Each task owns an [`AddressSpace`]: an ordered map of page-aligned
//! [`Region`]s, each holding a vector of [`PageSlot`]s.  A page is one of
//!
//! * **zero** — an untouched anonymous page; logically all zeroes, no storage
//!   allocated until first write;
//! * **RAM** — a materialised page behind an `Arc`.  The `Arc` is the
//!   refcount: `fork` clones the region map and shares every page
//!   (`pages_shared`), and the first write through a shared `Arc` is the
//!   **copy-on-write fault**, serviced in the kernel by `Arc::make_mut`
//!   (`cow_faults`/`pages_copied`).  File-backed `MAP_PRIVATE` mappings fault
//!   their pages in through [`FileHandle::map_page`], so a mapped `httpfs`
//!   file *references the VFS page cache* directly — until a write copies the
//!   touched page, leaving the cache untouched;
//! * **shared** — a `MAP_SHARED` region carries no page vector at all: its
//!   bytes live in a [`SharedArrayBuffer`] that the kernel also hands to the
//!   process, giving the guest a zero-syscall data path (the same mechanism
//!   the synchronous system-call convention uses for its shared heap).
//!   `msync` copies the buffer back through the backing [`FileHandle`], so
//!   `read(2)` on a mapped shm object observes mapped writes.
//!
//! Private mappings are accessed through the `VmRead`/`VmWrite` system calls
//! (the simulated analogue of a load/store that may fault); shared mappings
//! are accessed directly through the delivered buffer.  `munmap`/`mprotect`
//! operate on whole regions — a deliberate simplification over splitting.

use std::collections::BTreeMap;
use std::sync::Arc;

use browsix_browser::SharedArrayBuffer;
use browsix_fs::{detached_handle, Errno, FileHandle};
use parking_lot::Mutex;

/// Page size of the simulated MMU (bytes).
pub const PAGE_SIZE: usize = 4096;

/// Lowest address the bump allocator hands out for `addr = 0` mappings.
pub const MAP_BASE: u64 = 0x1000_0000;

/// `PROT_READ`: the mapping may be read.
pub const PROT_READ: u32 = 1;
/// `PROT_WRITE`: the mapping may be written.
pub const PROT_WRITE: u32 = 2;

/// `MAP_SHARED`: writes are visible to every mapper (and, via `msync`, the
/// backing object).
pub const MAP_SHARED: u32 = 1;
/// `MAP_PRIVATE`: writes are copy-on-write, never visible outside the task.
pub const MAP_PRIVATE: u32 = 2;
/// `MAP_ANONYMOUS`: not backed by a file.
pub const MAP_ANONYMOUS: u32 = 0x20;

/// Rounds `len` up to a whole number of pages.
pub fn page_align(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

/// One page of a private region.
#[derive(Clone)]
pub enum PageSlot {
    /// Untouched anonymous page: all zeroes, no storage allocated.
    Zero,
    /// A materialised page.  `Arc::strong_count > 1` means the page is shared
    /// — with a forked sibling (COW) or with a backend's page cache — and the
    /// next write must copy.
    Ram(Arc<Vec<u8>>),
}

/// What backs a region's bytes.
#[derive(Clone)]
pub enum RegionKind {
    /// `MAP_PRIVATE`: anonymous or file-backed, pages held per region.
    Private,
    /// `MAP_SHARED`: bytes live in the shared buffer (also held by every
    /// process that mapped it); `handle` is the `msync` write-back target.
    Shared {
        /// The shared memory carrying the object's bytes.
        sab: SharedArrayBuffer,
        /// Backing file/shm object, if any.
        handle: Option<Arc<dyn FileHandle>>,
    },
}

/// A contiguous page-aligned mapping.
#[derive(Clone)]
pub struct Region {
    /// Starting virtual address (page-aligned).
    pub base: u64,
    /// Length in bytes (a whole number of pages).
    pub len: u64,
    /// `PROT_READ` | `PROT_WRITE`.
    pub prot: u32,
    /// Byte offset into the backing object where the mapping starts
    /// (page-aligned; 0 for anonymous mappings).
    pub offset: u64,
    kind: RegionKind,
    pages: Vec<PageSlot>,
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("base", &format_args!("{:#x}", self.base))
            .field("len", &self.len)
            .field("prot", &self.prot)
            .field("shared", &self.is_shared())
            .field("resident", &self.resident_pages())
            .finish()
    }
}

impl Region {
    /// Whether this is a `MAP_SHARED` region.
    pub fn is_shared(&self) -> bool {
        matches!(self.kind, RegionKind::Shared { .. })
    }

    /// The shared buffer carrying a `MAP_SHARED` region's bytes.
    pub fn shared_buffer(&self) -> Option<&SharedArrayBuffer> {
        match &self.kind {
            RegionKind::Shared { sab, .. } => Some(sab),
            RegionKind::Private => None,
        }
    }

    /// Number of materialised (RAM) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|s| matches!(s, PageSlot::Ram(_))).count()
    }
}

/// Page-sharing/copying activity reported back from an [`AddressSpace`]
/// operation, accumulated into the kernel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmDelta {
    /// Copy-on-write faults serviced (a write hit a shared page).
    pub cow_faults: u64,
    /// Pages shared by reference (fork, file-backed mapping).
    pub pages_shared: u64,
    /// Pages physically copied (each COW fault copies one page).
    pub pages_copied: u64,
}

impl VmDelta {
    /// Sums another delta into this one.
    pub fn absorb(&mut self, other: VmDelta) {
        self.cow_faults += other.cow_faults;
        self.pages_shared += other.pages_shared;
        self.pages_copied += other.pages_copied;
    }
}

/// A task's virtual address space: regions ordered by base address, plus a
/// bump allocator for `addr = 0` mappings.
#[derive(Clone, Default)]
pub struct AddressSpace {
    regions: BTreeMap<u64, Region>,
    next_base: u64,
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("regions", &self.regions.len())
            .field("resident_pages", &self.resident_page_count())
            .finish()
    }
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            regions: BTreeMap::new(),
            next_base: MAP_BASE,
        }
    }

    /// Number of mapped regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total materialised (RAM) pages across all private regions.
    pub fn resident_page_count(&self) -> usize {
        self.regions.values().map(Region::resident_pages).sum()
    }

    /// The region starting exactly at `base`, if any.
    pub fn region_at(&self, base: u64) -> Option<&Region> {
        self.regions.get(&base)
    }

    /// The region containing `[addr, addr + len)`, or `EFAULT`.  Accesses
    /// may not span regions (regions are allocated with guard gaps).
    fn region_containing(&self, addr: u64, len: u64) -> Result<&Region, Errno> {
        let (_, region) = self.regions.range(..=addr).next_back().ok_or(Errno::EFAULT)?;
        if addr + len <= region.base + region.len {
            Ok(region)
        } else {
            Err(Errno::EFAULT)
        }
    }

    fn region_containing_mut(&mut self, addr: u64, len: u64) -> Result<&mut Region, Errno> {
        let (_, region) = self.regions.range_mut(..=addr).next_back().ok_or(Errno::EFAULT)?;
        if addr + len <= region.base + region.len {
            Ok(region)
        } else {
            Err(Errno::EFAULT)
        }
    }

    /// Picks (or validates) a base address for a new `len`-byte mapping.
    fn alloc_range(&mut self, addr_hint: u64, len: u64) -> Result<u64, Errno> {
        if addr_hint == 0 {
            let base = self.next_base;
            // Leave a one-page guard gap so accesses can never run off the
            // end of one region into the next.
            self.next_base = base + len + PAGE_SIZE as u64;
            return Ok(base);
        }
        if !addr_hint.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Errno::EINVAL);
        }
        // A fixed address must not overlap an existing region.
        let overlaps = self
            .regions
            .values()
            .any(|r| addr_hint < r.base + r.len && r.base < addr_hint + len);
        if overlaps {
            return Err(Errno::EEXIST);
        }
        self.next_base = self.next_base.max(addr_hint + len + PAGE_SIZE as u64);
        Ok(addr_hint)
    }

    /// Maps `len` bytes of zero-filled anonymous private memory, returning
    /// the base address.  No storage is allocated until first write.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] for a zero length or unaligned fixed address;
    /// [`Errno::EEXIST`] if a fixed address overlaps an existing mapping.
    pub fn map_anonymous(&mut self, addr_hint: u64, len: u64, prot: u32) -> Result<u64, Errno> {
        if len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = page_align(len);
        let base = self.alloc_range(addr_hint, len)?;
        let pages = vec![PageSlot::Zero; (len / PAGE_SIZE as u64) as usize];
        self.regions.insert(
            base,
            Region {
                base,
                len,
                prot,
                offset: 0,
                kind: RegionKind::Private,
                pages,
            },
        );
        Ok(base)
    }

    /// Maps `[offset, offset + len)` of a file `MAP_PRIVATE`: every page is a
    /// reference into the backend's page cache ([`FileHandle::map_page`]),
    /// copied only when written.  Returns the base address and the
    /// pages-shared delta.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] for a zero length or unaligned offset/fixed address;
    /// the handle's errors faulting pages in.
    pub fn map_file(
        &mut self,
        handle: &Arc<dyn FileHandle>,
        offset: u64,
        len: u64,
        addr_hint: u64,
        prot: u32,
    ) -> Result<(u64, VmDelta), Errno> {
        if len == 0 || !offset.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Errno::EINVAL);
        }
        let len = page_align(len);
        let first_page = offset / PAGE_SIZE as u64;
        let mut pages = Vec::with_capacity((len / PAGE_SIZE as u64) as usize);
        let mut delta = VmDelta::default();
        for i in 0..len / PAGE_SIZE as u64 {
            let page = handle.map_page(first_page + i, PAGE_SIZE)?;
            delta.pages_shared += 1;
            pages.push(PageSlot::Ram(page));
        }
        let base = self.alloc_range(addr_hint, len)?;
        self.regions.insert(
            base,
            Region {
                base,
                len,
                prot,
                offset,
                kind: RegionKind::Private,
                pages,
            },
        );
        Ok((base, delta))
    }

    /// Maps `len` bytes of `sab` (starting at byte `offset`) `MAP_SHARED`.
    /// The caller delivers the same buffer to the process, whose loads and
    /// stores then touch the mapping without any system call.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if the window is zero-length, unaligned or exceeds
    /// the buffer; [`Errno::EEXIST`] for an overlapping fixed address.
    pub fn map_shared(
        &mut self,
        sab: SharedArrayBuffer,
        handle: Option<Arc<dyn FileHandle>>,
        offset: u64,
        len: u64,
        addr_hint: u64,
        prot: u32,
    ) -> Result<u64, Errno> {
        if len == 0 || !offset.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Errno::EINVAL);
        }
        if offset + len > sab.len() as u64 {
            return Err(Errno::EINVAL);
        }
        let len = page_align(len);
        let base = self.alloc_range(addr_hint, len)?;
        self.regions.insert(
            base,
            Region {
                base,
                len,
                prot,
                offset,
                kind: RegionKind::Shared { sab, handle },
                pages: Vec::new(),
            },
        );
        Ok(base)
    }

    /// Unmaps the whole region based at `addr` (partial unmaps are not
    /// supported), returning it.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if `addr` is not a region base or `len` does not
    /// cover the whole region.
    pub fn unmap(&mut self, addr: u64, len: u64) -> Result<Region, Errno> {
        match self.regions.get(&addr) {
            Some(region) if page_align(len) == region.len => Ok(self.regions.remove(&addr).expect("present")),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Changes the whole region's protection (partial ranges are not
    /// supported).
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if the range is not exactly one region.
    pub fn protect(&mut self, addr: u64, len: u64, prot: u32) -> Result<(), Errno> {
        match self.regions.get_mut(&addr) {
            Some(region) if page_align(len) == region.len => {
                region.prot = prot;
                Ok(())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Reads `len` bytes at `addr` (the simulated load; `VmRead`).
    ///
    /// # Errors
    ///
    /// [`Errno::EFAULT`] outside any region, [`Errno::EACCES`] without
    /// `PROT_READ`.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, Errno> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let region = self.region_containing(addr, len as u64)?;
        if region.prot & PROT_READ == 0 {
            return Err(Errno::EACCES);
        }
        let rel = addr - region.base;
        match &region.kind {
            RegionKind::Shared { sab, .. } => sab
                .read_bytes((region.offset + rel) as usize, len)
                .map_err(|_| Errno::EFAULT),
            RegionKind::Private => {
                let mut out = Vec::with_capacity(len);
                let mut pos = 0usize;
                while pos < len {
                    let at = rel as usize + pos;
                    let (page_idx, in_page) = (at / PAGE_SIZE, at % PAGE_SIZE);
                    let n = (PAGE_SIZE - in_page).min(len - pos);
                    match &region.pages[page_idx] {
                        PageSlot::Zero => out.extend(std::iter::repeat_n(0u8, n)),
                        PageSlot::Ram(page) => out.extend_from_slice(&page[in_page..in_page + n]),
                    }
                    pos += n;
                }
                Ok(out)
            }
        }
    }

    /// Writes `data` at `addr` (the simulated store; `VmWrite`).  A write
    /// that lands on a page whose `Arc` is shared — with a forked sibling or
    /// a page cache — is the copy-on-write fault: the page is copied once
    /// (`Arc::make_mut`) and the write proceeds on the private copy.
    ///
    /// # Errors
    ///
    /// [`Errno::EFAULT`] outside any region, [`Errno::EACCES`] without
    /// `PROT_WRITE`.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<VmDelta, Errno> {
        let mut delta = VmDelta::default();
        if data.is_empty() {
            return Ok(delta);
        }
        let region = self.region_containing_mut(addr, data.len() as u64)?;
        if region.prot & PROT_WRITE == 0 {
            return Err(Errno::EACCES);
        }
        let rel = addr - region.base;
        match &mut region.kind {
            RegionKind::Shared { sab, .. } => {
                sab.write_bytes((region.offset + rel) as usize, data)
                    .map_err(|_| Errno::EFAULT)?;
            }
            RegionKind::Private => {
                let mut pos = 0usize;
                while pos < data.len() {
                    let at = rel as usize + pos;
                    let (page_idx, in_page) = (at / PAGE_SIZE, at % PAGE_SIZE);
                    let n = (PAGE_SIZE - in_page).min(data.len() - pos);
                    let slot = &mut region.pages[page_idx];
                    match slot {
                        PageSlot::Zero => {
                            // First touch of an anonymous page: materialise it.
                            let mut page = vec![0u8; PAGE_SIZE];
                            page[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                            *slot = PageSlot::Ram(Arc::new(page));
                        }
                        PageSlot::Ram(page) => {
                            if Arc::strong_count(page) > 1 {
                                delta.cow_faults += 1;
                                delta.pages_copied += 1;
                            }
                            let bytes = Arc::make_mut(page);
                            bytes[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                        }
                    }
                    pos += n;
                }
            }
        }
        Ok(delta)
    }

    /// Writes a `MAP_SHARED` region's bytes back through its backing handle,
    /// so descriptor reads of the object observe mapped writes.  Anonymous
    /// shared regions and private regions have nowhere to sync; `msync` on
    /// them succeeds as a no-op.
    ///
    /// # Errors
    ///
    /// [`Errno::EFAULT`] if the range is outside any region; the handle's
    /// write errors.
    pub fn msync(&self, addr: u64, len: u64) -> Result<(), Errno> {
        let region = self.region_containing(addr, len)?;
        let rel = addr - region.base;
        if let RegionKind::Shared {
            sab,
            handle: Some(handle),
        } = &region.kind
        {
            let span = if len == 0 { region.len - rel } else { len };
            let bytes = sab
                .read_bytes((region.offset + rel) as usize, span as usize)
                .map_err(|_| Errno::EFAULT)?;
            handle.write_at(region.offset + rel, &bytes)?;
        }
        Ok(())
    }

    /// Clones the space for `fork`: O(regions), not O(bytes).  Every RAM page
    /// is shared by reference (its `Arc` refcount rises), `MAP_SHARED`
    /// buffers alias the same memory, and the first post-fork write to a
    /// shared page COW-faults in [`AddressSpace::write`].
    pub fn fork_clone(&self) -> (AddressSpace, VmDelta) {
        let clone = self.clone();
        let delta = VmDelta {
            pages_shared: clone.resident_page_count() as u64,
            ..VmDelta::default()
        };
        (clone, delta)
    }

    /// Tears down every mapping (task exit).  With the `scavenger` feature
    /// this proves the refcount invariant: a page this space solely owned is
    /// actually freed (no leak), and a page shared with a sibling or a page
    /// cache survives for its other owners (no double free).
    pub fn release(&mut self) {
        #[cfg(feature = "scavenger")]
        let watchers: Vec<(std::sync::Weak<Vec<u8>>, usize)> = self
            .regions
            .values()
            .flat_map(|r| r.pages.iter())
            .filter_map(|slot| match slot {
                PageSlot::Ram(page) => Some((Arc::downgrade(page), Arc::strong_count(page))),
                PageSlot::Zero => None,
            })
            .collect();
        self.regions.clear();
        self.next_base = MAP_BASE;
        #[cfg(feature = "scavenger")]
        for (watcher, owners) in watchers {
            if owners == 1 {
                debug_assert!(watcher.upgrade().is_none(), "sole-owner page leaked at release");
            } else {
                debug_assert!(watcher.upgrade().is_some(), "shared page double-freed at release");
            }
        }
    }
}

/// A named POSIX shared-memory object (`shm_open`): an anonymous VFS inode
/// (so `ftruncate`/`read`/`write` on its descriptors just work) plus the
/// `SharedArrayBuffer` every `MAP_SHARED` mapping of it aliases.
pub struct ShmObject {
    /// Descriptor I/O target: a detached in-memory inode.
    pub handle: Arc<dyn FileHandle>,
    /// Created lazily at first `mmap`, sized to the object (SABs cannot
    /// grow); seeded with the inode's contents.
    sab: Mutex<Option<SharedArrayBuffer>>,
}

impl std::fmt::Debug for ShmObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmObject").field("mapped", &self.is_mapped()).finish()
    }
}

impl Default for ShmObject {
    fn default() -> Self {
        ShmObject::new()
    }
}

impl ShmObject {
    /// An empty, zero-length object (size it with `ftruncate`).
    pub fn new() -> ShmObject {
        ShmObject {
            handle: detached_handle(Vec::new()),
            sab: Mutex::new(None),
        }
    }

    /// Whether any mapping has been created yet.
    pub fn is_mapped(&self) -> bool {
        self.sab.lock().is_some()
    }

    /// The buffer backing this object's mappings, created at first call
    /// sized to the object and seeded with its contents.  Every subsequent
    /// mapping aliases the same memory, which is what makes it shared.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if the object still has zero size.
    pub fn sab_for_mapping(&self) -> Result<SharedArrayBuffer, Errno> {
        let mut slot = self.sab.lock();
        if let Some(sab) = slot.as_ref() {
            return Ok(sab.clone());
        }
        let size = page_align(self.handle.metadata()?.size);
        if size == 0 {
            return Err(Errno::EINVAL);
        }
        let sab = SharedArrayBuffer::new(size as usize);
        let seed = self.handle.read_at(0, size as usize)?;
        sab.write_bytes(0, &seed).map_err(|_| Errno::EIO)?;
        *slot = Some(sab.clone());
        Ok(sab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_pages_are_zero_until_written() {
        let mut space = AddressSpace::new();
        let base = space
            .map_anonymous(0, 3 * PAGE_SIZE as u64, PROT_READ | PROT_WRITE)
            .unwrap();
        assert_eq!(base, MAP_BASE);
        assert_eq!(space.read(base, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(space.resident_page_count(), 0, "no storage before first write");
        space.write(base + 10, b"hello").unwrap();
        assert_eq!(space.read(base + 8, 9).unwrap(), b"\0\0hello\0\0");
        assert_eq!(space.resident_page_count(), 1, "only the touched page materialises");
    }

    #[test]
    fn lengths_round_up_to_pages_and_gaps_fault() {
        let mut space = AddressSpace::new();
        let base = space.map_anonymous(0, 100, PROT_READ | PROT_WRITE).unwrap();
        let region = space.region_at(base).unwrap();
        assert_eq!(region.len, PAGE_SIZE as u64);
        // In-page past-the-request reads succeed (mmap rounds to pages)...
        assert!(space.read(base + 200, 8).is_ok());
        // ...but the guard gap beyond the region faults.
        assert_eq!(space.read(base + PAGE_SIZE as u64, 1), Err(Errno::EFAULT));
        assert_eq!(space.read(0x10, 1), Err(Errno::EFAULT));
        assert_eq!(space.map_anonymous(0, 0, PROT_READ), Err(Errno::EINVAL));
    }

    #[test]
    fn writes_spanning_pages_land_correctly() {
        let mut space = AddressSpace::new();
        let base = space
            .map_anonymous(0, 2 * PAGE_SIZE as u64, PROT_READ | PROT_WRITE)
            .unwrap();
        let data: Vec<u8> = (0..100).collect();
        let at = base + PAGE_SIZE as u64 - 50;
        space.write(at, &data).unwrap();
        assert_eq!(space.read(at, 100).unwrap(), data);
        assert_eq!(space.resident_page_count(), 2);
    }

    #[test]
    fn protection_is_enforced() {
        let mut space = AddressSpace::new();
        let base = space.map_anonymous(0, PAGE_SIZE as u64, PROT_READ).unwrap();
        assert_eq!(space.write(base, b"x"), Err(Errno::EACCES));
        space.protect(base, PAGE_SIZE as u64, PROT_READ | PROT_WRITE).unwrap();
        assert!(space.write(base, b"x").is_ok());
        space.protect(base, PAGE_SIZE as u64, PROT_WRITE).unwrap();
        assert_eq!(space.read(base, 1), Err(Errno::EACCES));
        // Partial mprotect of a multi-page region is not supported.
        let wide = space.map_anonymous(0, 2 * PAGE_SIZE as u64, PROT_READ).unwrap();
        assert_eq!(space.protect(wide, PAGE_SIZE as u64, PROT_READ), Err(Errno::EINVAL));
    }

    #[test]
    fn fixed_addresses_validate_alignment_and_overlap() {
        let mut space = AddressSpace::new();
        assert_eq!(
            space.map_anonymous(0x123, PAGE_SIZE as u64, PROT_READ),
            Err(Errno::EINVAL)
        );
        let base = space
            .map_anonymous(0x2000_0000, 2 * PAGE_SIZE as u64, PROT_READ)
            .unwrap();
        assert_eq!(base, 0x2000_0000);
        assert_eq!(
            space.map_anonymous(0x2000_1000, PAGE_SIZE as u64, PROT_READ),
            Err(Errno::EEXIST)
        );
        // The bump allocator steers clear of fixed mappings.
        let auto = space.map_anonymous(0, PAGE_SIZE as u64, PROT_READ).unwrap();
        assert!(auto >= 0x2000_0000 + 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn fork_shares_pages_and_write_cow_faults() {
        let mut parent = AddressSpace::new();
        let base = parent
            .map_anonymous(0, 2 * PAGE_SIZE as u64, PROT_READ | PROT_WRITE)
            .unwrap();
        parent.write(base, b"parent data").unwrap();
        parent.write(base + PAGE_SIZE as u64, b"second page").unwrap();

        let (mut child, delta) = parent.fork_clone();
        assert_eq!(delta.pages_shared, 2);
        assert_eq!(child.read(base, 11).unwrap(), b"parent data");

        // Child write: COW fault copies one page; the other stays shared.
        let delta = child.write(base, b"child  data").unwrap();
        assert_eq!(delta.cow_faults, 1);
        assert_eq!(delta.pages_copied, 1);
        assert_eq!(child.read(base, 11).unwrap(), b"child  data");
        assert_eq!(parent.read(base, 11).unwrap(), b"parent data", "parent unaffected");

        // Parent's same-page write also faults (its Arc was still shared at
        // fork time? no — the child already copied, so the parent is sole
        // owner again and writes in place).
        let delta = parent.write(base, b"PARENT data").unwrap();
        assert_eq!(delta.cow_faults, 0);
        assert_eq!(child.read(base, 11).unwrap(), b"child  data");

        // The untouched second page is still physically shared.
        let delta = parent.write(base + PAGE_SIZE as u64, b"x").unwrap();
        assert_eq!(delta.cow_faults, 1);
        assert_eq!(child.read(base + PAGE_SIZE as u64, 11).unwrap(), b"second page");
    }

    #[test]
    fn file_mappings_reference_the_page_cache_until_written() {
        use browsix_fs::{FileSystem, MemFs};
        let fs = MemFs::new();
        let mut content = vec![7u8; PAGE_SIZE];
        content.extend(vec![9u8; 100]);
        fs.write_file("/data", &content).unwrap();
        let handle = fs.open_handle("/data", browsix_fs::OpenFlags::read_only()).unwrap();

        let mut space = AddressSpace::new();
        let (base, delta) = space
            .map_file(&handle, 0, content.len() as u64, 0, PROT_READ | PROT_WRITE)
            .unwrap();
        assert_eq!(delta.pages_shared, 2);
        assert_eq!(space.read(base, 4).unwrap(), vec![7u8; 4]);
        assert_eq!(space.read(base + PAGE_SIZE as u64, 4).unwrap(), vec![9u8; 4]);
        // The tail page is zero-filled past EOF.
        assert_eq!(space.read(base + PAGE_SIZE as u64 + 100, 4).unwrap(), vec![0u8; 4]);
        // Unaligned offsets are rejected.
        assert_eq!(space.map_file(&handle, 12, 64, 0, PROT_READ).err(), Some(Errno::EINVAL));
        // A private write copies the page; the file never changes.
        space.write(base, b"XX").unwrap();
        assert_eq!(fs.read_file("/data").unwrap(), content);
        assert_eq!(space.read(base, 2).unwrap(), b"XX");
    }

    #[test]
    fn shared_mappings_alias_the_buffer_and_msync_writes_back() {
        let shm = ShmObject::new();
        assert_eq!(shm.sab_for_mapping().err(), Some(Errno::EINVAL), "zero-size object");
        shm.handle.truncate(PAGE_SIZE as u64).unwrap();
        shm.handle.write_at(0, b"seeded").unwrap();

        let sab = shm.sab_for_mapping().unwrap();
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        let base_a = a
            .map_shared(
                sab.clone(),
                Some(Arc::clone(&shm.handle)),
                0,
                PAGE_SIZE as u64,
                0,
                PROT_READ | PROT_WRITE,
            )
            .unwrap();
        let base_b = b
            .map_shared(
                sab.clone(),
                Some(Arc::clone(&shm.handle)),
                0,
                PAGE_SIZE as u64,
                0,
                PROT_READ | PROT_WRITE,
            )
            .unwrap();

        assert_eq!(a.read(base_a, 6).unwrap(), b"seeded");
        // A write through one mapping is visible through the other — and
        // directly through the buffer, with no syscall at all.
        a.write(base_a + 8, b"ping").unwrap();
        assert_eq!(b.read(base_b + 8, 4).unwrap(), b"ping");
        assert_eq!(sab.read_bytes(8, 4).unwrap(), b"ping");

        // The inode still has the seed until msync writes the region back.
        assert_eq!(shm.handle.read_at(8, 4).unwrap(), vec![0u8; 4]);
        a.msync(base_a, 0).unwrap();
        assert_eq!(shm.handle.read_at(8, 4).unwrap(), b"ping");

        // Both mappings share one lazily-created buffer.
        assert!(shm.sab_for_mapping().unwrap().same_buffer(&sab));
    }

    #[test]
    fn unmap_removes_whole_regions_only() {
        let mut space = AddressSpace::new();
        let base = space
            .map_anonymous(0, 2 * PAGE_SIZE as u64, PROT_READ | PROT_WRITE)
            .unwrap();
        assert_eq!(space.unmap(base, PAGE_SIZE as u64).err(), Some(Errno::EINVAL));
        assert_eq!(space.unmap(base + 8, 2 * PAGE_SIZE as u64).err(), Some(Errno::EINVAL));
        let region = space.unmap(base, 2 * PAGE_SIZE as u64).unwrap();
        assert_eq!(region.base, base);
        assert_eq!(space.region_count(), 0);
        assert_eq!(space.read(base, 1), Err(Errno::EFAULT));
    }

    #[test]
    fn release_drops_private_pages_and_spares_shared_ones() {
        let mut parent = AddressSpace::new();
        let base = parent
            .map_anonymous(0, PAGE_SIZE as u64, PROT_READ | PROT_WRITE)
            .unwrap();
        parent.write(base, b"data").unwrap();
        let (child, _) = parent.fork_clone();
        // Parent exit: the page survives for the child...
        parent.release();
        assert_eq!(parent.region_count(), 0);
        assert_eq!(child.read(base, 4).unwrap(), b"data");
        // ...and a second release (idempotent) is fine.
        parent.release();
    }
}
