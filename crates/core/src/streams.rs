//! Kernel byte streams: the single buffered-data object behind pipes *and*
//! socket connections.
//!
//! Browsix pipes are "implemented as in-memory buffers with read-side wait
//! queues": a bounded ring buffer living inside the kernel.  A [`Stream`] is
//! that buffer plus the reader/writer endpoint counts that decide EOF and
//! EPIPE, and the readiness predicates (`read_ready`/`write_ready`) that the
//! wait-queue subsystem and `poll` are built on.  Socket connections are two
//! streams, one per direction, sharing exactly this code — there is no
//! separate socket data path.
//!
//! Blocking lives elsewhere: a read on an empty stream or a write to a full
//! one parks the calling system call on the stream's wait queue
//! (`kernel::waitq`), and the state changes here (`push`, `pop`, endpoint
//! transitions) are what wake those queues.

use std::collections::HashMap;

/// Identifier of a kernel stream buffer.
pub type StreamId = u64;

/// Default stream capacity, matching the Linux pipe default of 64 KiB.
pub const DEFAULT_STREAM_CAPACITY: usize = 64 * 1024;

/// A single in-kernel bounded byte stream (ring buffer + endpoint counts).
#[derive(Debug)]
pub struct Stream {
    /// Ring storage, allocated to `capacity` on first push.
    ring: Vec<u8>,
    /// Read position within `ring`.
    head: usize,
    /// Bytes currently buffered.
    buffered: usize,
    capacity: usize,
    /// Number of live open-file descriptions referring to the read end.
    pub readers: usize,
    /// Number of live open-file descriptions referring to the write end.
    pub writers: usize,
}

impl Stream {
    /// Creates an empty stream with the given capacity.
    pub fn new(capacity: usize) -> Stream {
        Stream {
            ring: Vec::new(),
            head: 0,
            buffered: 0,
            capacity: capacity.max(1),
            readers: 0,
            writers: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Remaining space before writers must block.
    pub fn space(&self) -> usize {
        self.capacity - self.buffered
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether all write ends are closed (EOF once drained).
    pub fn write_end_closed(&self) -> bool {
        self.writers == 0
    }

    /// Whether all read ends are closed (writes raise EPIPE).
    pub fn read_end_closed(&self) -> bool {
        self.readers == 0
    }

    /// Whether a read would make progress right now: data is buffered, or the
    /// stream is at EOF (no writers left).  This is the single definition of
    /// read readiness used by blocking reads, `O_NONBLOCK` and `poll`.
    pub fn read_ready(&self) -> bool {
        !self.is_empty() || self.write_end_closed()
    }

    /// Whether a write would make progress right now: there is space, or the
    /// write would fail immediately with EPIPE (no readers left).
    pub fn write_ready(&self) -> bool {
        self.space() > 0 || self.read_end_closed()
    }

    /// Appends as much of `data` as fits, returning the number of bytes
    /// accepted.
    pub fn push(&mut self, data: &[u8]) -> usize {
        if self.ring.is_empty() {
            self.ring = vec![0; self.capacity];
        }
        let accept = data.len().min(self.space());
        let tail = (self.head + self.buffered) % self.capacity;
        let first = accept.min(self.capacity - tail);
        self.ring[tail..tail + first].copy_from_slice(&data[..first]);
        let rest = accept - first;
        self.ring[..rest].copy_from_slice(&data[first..accept]);
        self.buffered += accept;
        accept
    }

    /// Removes and returns up to `len` bytes.
    pub fn pop(&mut self, len: usize) -> Vec<u8> {
        let take = len.min(self.buffered);
        let mut out = Vec::with_capacity(take);
        let first = take.min(self.capacity - self.head);
        out.extend_from_slice(&self.ring[self.head..self.head + first]);
        let rest = take - first;
        out.extend_from_slice(&self.ring[..rest]);
        self.head = (self.head + take) % self.capacity;
        self.buffered -= take;
        out
    }
}

/// The kernel's table of streams.
///
/// Ids encode the owning shard in their low
/// [`SHARD_ID_BITS`](crate::kernel::shard::SHARD_ID_BITS) bits (see
/// [`kernel::shard`](crate::kernel::shard)): a table created with
/// [`StreamTable::new_for_shard`] hands out ids congruent to its shard, so
/// any shard can route an operation on a foreign stream from the id alone.
#[derive(Debug, Default)]
pub struct StreamTable {
    next_id: StreamId,
    streams: HashMap<StreamId, Stream>,
}

impl StreamTable {
    /// Creates an empty table owned by shard 0.
    pub fn new() -> StreamTable {
        StreamTable::default()
    }

    /// Creates an empty table whose ids encode `shard`.
    pub fn new_for_shard(shard: usize) -> StreamTable {
        StreamTable {
            next_id: shard as StreamId,
            streams: HashMap::new(),
        }
    }

    /// Allocates a new stream with the default capacity and returns its id.
    pub fn create(&mut self) -> StreamId {
        self.create_with_capacity(DEFAULT_STREAM_CAPACITY)
    }

    /// Allocates a new stream with an explicit capacity.
    pub fn create_with_capacity(&mut self, capacity: usize) -> StreamId {
        let id = self.next_id;
        self.next_id += crate::kernel::shard::SHARD_ID_STRIDE;
        self.streams.insert(id, Stream::new(capacity));
        id
    }

    /// Looks up a stream.
    pub fn get(&self, id: StreamId) -> Option<&Stream> {
        self.streams.get(&id)
    }

    /// Looks up a stream mutably.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut Stream> {
        self.streams.get_mut(&id)
    }

    /// Removes a stream whose endpoints are all gone.
    pub fn remove(&mut self, id: StreamId) {
        self.streams.remove(&id);
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether there are no live streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Resets every stream's endpoint counts to zero; the kernel recomputes
    /// them by scanning all descriptor tables after any change (close, exit,
    /// spawn), which keeps the reference counts trivially correct.
    pub fn reset_endpoint_counts(&mut self) {
        for stream in self.streams.values_mut() {
            stream.readers = 0;
            stream.writers = 0;
        }
    }

    /// Snapshot of every stream's `(readers, writers)` endpoint counts, taken
    /// before a recount so the kernel can detect EOF/EPIPE transitions and
    /// wake exactly the affected wait queues.
    pub fn endpoint_snapshot(&self) -> HashMap<StreamId, (usize, usize)> {
        self.streams
            .iter()
            .map(|(&id, s)| (id, (s.readers, s.writers)))
            .collect()
    }

    /// Drops streams with no readers, no writers and no buffered data,
    /// returning the ids that were removed (their wait queues must be woken).
    pub fn collect_garbage(&mut self) -> Vec<StreamId> {
        let dead: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, s)| s.readers == 0 && s.writers == 0 && s.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.streams.remove(id);
        }
        dead
    }

    /// Ids of all live streams (used by tests and statistics).
    pub fn ids(&self) -> Vec<StreamId> {
        self.streams.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_preserve_fifo_order() {
        let mut stream = Stream::new(16);
        assert_eq!(stream.push(b"hello "), 6);
        assert_eq!(stream.push(b"world"), 5);
        assert_eq!(stream.pop(6), b"hello ");
        assert_eq!(stream.pop(100), b"world");
        assert!(stream.is_empty());
    }

    #[test]
    fn push_respects_capacity() {
        let mut stream = Stream::new(4);
        assert_eq!(stream.push(b"abcdef"), 4);
        assert_eq!(stream.space(), 0);
        assert_eq!(stream.push(b"x"), 0);
        stream.pop(2);
        assert_eq!(stream.space(), 2);
        assert_eq!(stream.push(b"yz!"), 2);
        assert_eq!(stream.pop(10), b"cdyz");
    }

    #[test]
    fn ring_wraps_across_the_boundary_many_times() {
        // Push/pop amounts that are coprime with the capacity so the head
        // sweeps every position in the ring.
        let mut stream = Stream::new(7);
        let mut sent = Vec::new();
        let mut received = Vec::new();
        let mut next = 0u8;
        for round in 0..50 {
            let n = (round % 5) + 1;
            let chunk: Vec<u8> = (0..n)
                .map(|_| {
                    next = next.wrapping_add(1);
                    next
                })
                .collect();
            let accepted = stream.push(&chunk);
            sent.extend_from_slice(&chunk[..accepted]);
            received.extend(stream.pop((round % 3) + 1));
        }
        received.extend(stream.pop(usize::MAX));
        assert_eq!(received, sent);
    }

    #[test]
    fn endpoint_flags_and_readiness() {
        let mut stream = Stream::new(8);
        assert!(stream.write_end_closed());
        assert!(stream.read_end_closed());
        // EOF with no writers: readable (a read returns empty immediately).
        assert!(stream.read_ready());
        // No readers: writable (a write raises EPIPE immediately).
        assert!(stream.write_ready());
        stream.readers = 1;
        stream.writers = 2;
        assert!(!stream.write_end_closed());
        assert!(!stream.read_end_closed());
        assert_eq!(stream.capacity(), 8);
        // Empty + live writer: a read would block.
        assert!(!stream.read_ready());
        assert!(stream.write_ready());
        stream.push(b"12345678");
        assert!(stream.read_ready());
        // Full + live reader: a write would block.
        assert!(!stream.write_ready());
    }

    #[test]
    fn table_creates_unique_ids() {
        let mut table = StreamTable::new();
        let a = table.create();
        let b = table.create_with_capacity(128);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(b).unwrap().capacity(), 128);
        assert!(table.get(999).is_none());
        assert_eq!(table.ids().len(), 2);
    }

    #[test]
    fn garbage_collection_keeps_streams_with_data_or_endpoints() {
        let mut table = StreamTable::new();
        let dead = table.create();
        let buffered = table.create();
        let referenced = table.create();
        table.get_mut(buffered).unwrap().push(b"pending data");
        table.get_mut(referenced).unwrap().readers = 1;
        let removed = table.collect_garbage();
        assert_eq!(removed, vec![dead]);
        assert!(table.get(dead).is_none());
        assert!(table.get(buffered).is_some());
        assert!(table.get(referenced).is_some());
        assert!(!table.is_empty());
    }

    #[test]
    fn reset_endpoint_counts_zeroes_everything() {
        let mut table = StreamTable::new();
        let id = table.create();
        table.get_mut(id).unwrap().readers = 3;
        table.get_mut(id).unwrap().writers = 2;
        assert_eq!(table.endpoint_snapshot().get(&id), Some(&(3, 2)));
        table.reset_endpoint_counts();
        assert_eq!(table.get(id).unwrap().readers, 0);
        assert_eq!(table.get(id).unwrap().writers, 0);
    }

    #[test]
    fn remove_deletes_stream() {
        let mut table = StreamTable::new();
        let id = table.create();
        table.remove(id);
        assert!(table.get(id).is_none());
    }
}
