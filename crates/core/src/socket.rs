//! The in-browser loopback socket namespace.
//!
//! Browsix implements a subset of the BSD/POSIX socket API with
//! `SOCK_STREAM` (TCP) semantics for communication *between Browsix
//! processes*: servers `bind`, `listen` and `accept`; clients `connect`; both
//! sides then read and write a sequenced, reliable, bidirectional stream.
//! Connections are carried by two kernel streams, one per direction —
//! exactly the same buffered [`Stream`](crate::streams::Stream) objects that
//! carry pipes, so readiness and blocking are computed in one place.

use std::collections::{HashMap, VecDeque};

use browsix_fs::Errno;

use crate::streams::StreamId;
use crate::task::Pid;

/// Identifier of an established connection.
pub type ConnectionId = u64;

/// A socket listening on a port.
#[derive(Debug)]
pub struct Listener {
    /// The owning process.
    pub owner: Pid,
    /// Maximum number of not-yet-accepted connections.
    pub backlog: usize,
    /// Connections waiting to be accepted.
    pub pending: VecDeque<ConnectionId>,
}

/// An established connection: a kernel stream per direction.
#[derive(Debug, Clone, Copy)]
pub struct Connection {
    /// Bytes flowing from the connecting client towards the accepting server.
    pub client_to_server: StreamId,
    /// Bytes flowing from the server back to the client.
    pub server_to_client: StreamId,
    /// The port the connection was made to.
    pub port: u16,
}

/// The kernel's socket namespace: bound ports, listeners and connections.
#[derive(Debug, Default)]
pub struct SocketTable {
    listeners: HashMap<u16, Listener>,
    connections: HashMap<ConnectionId, Connection>,
    next_connection: ConnectionId,
    next_ephemeral_port: u16,
}

impl SocketTable {
    /// Creates an empty namespace (owned by shard 0).
    pub fn new() -> SocketTable {
        SocketTable {
            next_ephemeral_port: 49152,
            ..SocketTable::default()
        }
    }

    /// Creates an empty namespace whose connection ids encode `shard` (same
    /// low-bit scheme as [`StreamTable`](crate::streams::StreamTable) ids).
    pub fn new_for_shard(shard: usize) -> SocketTable {
        SocketTable {
            next_connection: shard as ConnectionId,
            next_ephemeral_port: 49152,
            ..SocketTable::default()
        }
    }

    /// Picks an unused ephemeral port (for `bind` with port 0).
    pub fn allocate_port(&mut self) -> u16 {
        loop {
            let port = self.next_ephemeral_port;
            self.next_ephemeral_port = self.next_ephemeral_port.wrapping_add(1).max(49152);
            if !self.listeners.contains_key(&port) {
                return port;
            }
        }
    }

    /// Whether `port` already has a listener.
    pub fn port_in_use(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Starts listening on `port`.
    ///
    /// # Errors
    ///
    /// [`Errno::EADDRINUSE`] if another listener owns the port.
    pub fn listen(&mut self, port: u16, owner: Pid, backlog: usize) -> Result<(), Errno> {
        if self.port_in_use(port) {
            return Err(Errno::EADDRINUSE);
        }
        self.listeners.insert(
            port,
            Listener {
                owner,
                backlog: backlog.max(1),
                pending: VecDeque::new(),
            },
        );
        Ok(())
    }

    /// Stops listening on `port` (listener fd closed or owner exited).
    /// Returns the connections that were still waiting to be accepted.
    pub fn close_listener(&mut self, port: u16) -> Vec<ConnectionId> {
        self.listeners
            .remove(&port)
            .map(|l| l.pending.into_iter().collect())
            .unwrap_or_default()
    }

    /// Ports with active listeners, sorted.
    pub fn listening_ports(&self) -> Vec<u16> {
        let mut ports: Vec<u16> = self.listeners.keys().copied().collect();
        ports.sort_unstable();
        ports
    }

    /// The pid that owns the listener on `port`.
    pub fn listener_owner(&self, port: u16) -> Option<Pid> {
        self.listeners.get(&port).map(|l| l.owner)
    }

    /// Registers a new connection to `port`, queueing it for `accept`.
    ///
    /// # Errors
    ///
    /// * [`Errno::ECONNREFUSED`] if nothing is listening on `port`.
    /// * [`Errno::ECONNREFUSED`] if the listener's backlog is full — the
    ///   kernel refuses the connection outright (a SYN met by RST), rather
    ///   than parking the client until the server drains its backlog.
    pub fn connect(
        &mut self,
        port: u16,
        client_to_server: StreamId,
        server_to_client: StreamId,
    ) -> Result<ConnectionId, Errno> {
        let listener = self.listeners.get_mut(&port).ok_or(Errno::ECONNREFUSED)?;
        if listener.pending.len() >= listener.backlog {
            return Err(Errno::ECONNREFUSED);
        }
        let id = self.next_connection;
        self.next_connection += crate::kernel::shard::SHARD_ID_STRIDE;
        self.connections.insert(
            id,
            Connection {
                client_to_server,
                server_to_client,
                port,
            },
        );
        listener.pending.push_back(id);
        Ok(id)
    }

    /// Dequeues a pending connection for `accept` on `port`.
    pub fn accept(&mut self, port: u16) -> Option<ConnectionId> {
        self.listeners.get_mut(&port).and_then(|l| l.pending.pop_front())
    }

    /// Whether `port` has at least one connection waiting to be accepted.
    pub fn has_pending(&self, port: u16) -> bool {
        self.listeners
            .get(&port)
            .map(|l| !l.pending.is_empty())
            .unwrap_or(false)
    }

    /// Every connection that has been made but not yet accepted, across all
    /// listeners.  The kernel treats these as having a live (future) server
    /// endpoint so clients do not observe EOF before `accept` runs.
    pub fn pending_connections(&self) -> Vec<ConnectionId> {
        self.listeners
            .values()
            .flat_map(|l| l.pending.iter().copied())
            .collect()
    }

    /// Looks up an established connection.
    pub fn connection(&self, id: ConnectionId) -> Option<Connection> {
        self.connections.get(&id).copied()
    }

    /// Forgets a connection whose descriptors are all closed.
    pub fn remove_connection(&mut self, id: ConnectionId) {
        self.connections.remove(&id);
    }

    /// Number of established connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_accept_flow() {
        let mut table = SocketTable::new();
        table.listen(8080, 1, 16).unwrap();
        assert!(table.port_in_use(8080));
        assert_eq!(table.listener_owner(8080), Some(1));
        assert!(!table.has_pending(8080));

        let conn = table.connect(8080, 10, 11).unwrap();
        assert!(table.has_pending(8080));
        assert_eq!(table.accept(8080), Some(conn));
        assert_eq!(table.accept(8080), None);
        let c = table.connection(conn).unwrap();
        assert_eq!(c.client_to_server, 10);
        assert_eq!(c.server_to_client, 11);
        assert_eq!(c.port, 8080);
        assert_eq!(table.connection_count(), 1);
        table.remove_connection(conn);
        assert_eq!(table.connection_count(), 0);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let mut table = SocketTable::new();
        assert_eq!(table.connect(9999, 0, 1), Err(Errno::ECONNREFUSED));
    }

    #[test]
    fn double_listen_is_eaddrinuse() {
        let mut table = SocketTable::new();
        table.listen(80, 1, 4).unwrap();
        assert_eq!(table.listen(80, 2, 4), Err(Errno::EADDRINUSE));
    }

    #[test]
    fn full_backlog_refuses_connections_instead_of_parking() {
        let mut table = SocketTable::new();
        table.listen(80, 1, 2).unwrap();
        table.connect(80, 0, 1).unwrap();
        table.connect(80, 2, 3).unwrap();
        // A full backlog must refuse outright: a parked connect would wait
        // forever if the server never accepts.
        assert_eq!(table.connect(80, 4, 5), Err(Errno::ECONNREFUSED));
        table.accept(80).unwrap();
        assert!(table.connect(80, 4, 5).is_ok());
    }

    #[test]
    fn close_listener_returns_unaccepted_connections() {
        let mut table = SocketTable::new();
        table.listen(80, 1, 4).unwrap();
        let a = table.connect(80, 0, 1).unwrap();
        let b = table.connect(80, 2, 3).unwrap();
        let orphans = table.close_listener(80);
        assert_eq!(orphans, vec![a, b]);
        assert!(!table.port_in_use(80));
        assert!(table.close_listener(80).is_empty());
    }

    #[test]
    fn ephemeral_ports_are_unique_while_listening() {
        let mut table = SocketTable::new();
        let p1 = table.allocate_port();
        table.listen(p1, 1, 1).unwrap();
        let p2 = table.allocate_port();
        assert_ne!(p1, p2);
        assert!(p1 >= 49152 && p2 >= 49152);
    }

    #[test]
    fn listening_ports_are_sorted() {
        let mut table = SocketTable::new();
        table.listen(9000, 1, 1).unwrap();
        table.listen(80, 2, 1).unwrap();
        assert_eq!(table.listening_ports(), vec![80, 9000]);
    }
}
