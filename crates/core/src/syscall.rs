//! The system-call interface: call and result types, plus their encodings for
//! the two transport conventions.
//!
//! Asynchronous system calls are carried as structured-clone messages — every
//! argument buffer is deep-copied between the process's heap and the kernel's
//! heap, in both directions.  Synchronous system calls carry only integers
//! (and shared-heap offsets) in the message; bulk data moves through the
//! process's `SharedArrayBuffer`, and the result is written directly into the
//! shared heap before the kernel notifies the waiting process.

use browsix_browser::Message;
use browsix_fs::{DirEntry, Errno, FileType, Metadata, OpenFlags};

use crate::signals::Signal;
use crate::task::Pid;

/// A source of bytes for data-carrying system calls (`write`, `pwrite`).
///
/// The asynchronous convention inlines the bytes into the message (and pays
/// the structured-clone cost); the synchronous convention passes an offset
/// into the process's shared heap and the kernel reads the bytes directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteSource {
    /// Bytes carried inside the system-call message.
    Inline(Vec<u8>),
    /// Bytes already present in the process's shared heap.
    SharedHeap {
        /// Byte offset within the shared heap.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
}

impl ByteSource {
    /// The number of bytes this source refers to.
    pub fn len(&self) -> usize {
        match self {
            ByteSource::Inline(data) => data.len(),
            ByteSource::SharedHeap { len, .. } => *len as usize,
        }
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A system call, with arguments already in structured form.
///
/// Figure 3 of the paper lists the call classes: process management, process
/// metadata, sockets, directory I/O, file I/O and file metadata.  Every one of
/// those calls appears here.
#[derive(Debug, Clone, PartialEq)]
pub enum Syscall {
    // ---- process management -------------------------------------------------
    /// Create a process from an executable on the file system.
    Spawn {
        /// Path of the executable (or shebang script).
        path: String,
        /// Argument vector (argv, including argv[0]).
        args: Vec<String>,
        /// Environment variables.
        env: Vec<(String, String)>,
        /// Working directory for the child (defaults to the parent's).
        cwd: Option<String>,
        /// Parent file descriptors to install as the child's stdin/stdout/stderr;
        /// `None` inherits the parent's descriptor of the same number.
        stdio: [Option<i32>; 3],
    },
    /// Duplicate the calling process (C/C++ Emterpreter mode only): the
    /// runtime ships a snapshot of its heap and resume point.
    Fork {
        /// Serialized guest memory image.
        image: Vec<u8>,
        /// Interpreter resume point within the image.
        resume_point: u64,
    },
    /// Create a pipe; returns the read and write descriptors.
    Pipe2,
    /// Wait for a child to change state.
    Wait4 {
        /// Specific child pid, or -1 for any child.
        pid: i32,
        /// `WNOHANG` is bit 0.
        options: u32,
    },
    /// Terminate the calling process.
    Exit {
        /// Exit code.
        code: i32,
    },
    /// Send a signal to another process.
    Kill {
        /// Target process.
        pid: Pid,
        /// Signal to deliver.
        signal: Signal,
    },
    /// Register interest in a catchable signal (installs a handler).
    SignalAction {
        /// Signal to handle.
        signal: Signal,
        /// `true` installs a handler, `false` restores the default.
        install: bool,
    },

    // ---- process metadata ----------------------------------------------------
    /// Current process id.
    GetPid,
    /// Parent process id.
    GetPPid,
    /// Current working directory.
    GetCwd,
    /// Change the working directory.
    Chdir {
        /// New working directory.
        path: String,
    },

    // ---- file IO -------------------------------------------------------------
    /// Open a file, returning a descriptor.
    Open {
        /// Path to open (resolved against the caller's cwd by the runtime).
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Creation mode.
        mode: u32,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor to close.
        fd: i32,
    },
    /// Read from a descriptor at its current offset.
    Read {
        /// Descriptor.
        fd: i32,
        /// Maximum bytes to read.
        len: u32,
    },
    /// Positional read (does not move the offset).
    Pread {
        /// Descriptor.
        fd: i32,
        /// Maximum bytes to read.
        len: u32,
        /// Absolute file offset.
        offset: u64,
    },
    /// Write to a descriptor at its current offset.
    Write {
        /// Descriptor.
        fd: i32,
        /// Data to write.
        data: ByteSource,
    },
    /// Positional write (does not move the offset).
    Pwrite {
        /// Descriptor.
        fd: i32,
        /// Data to write.
        data: ByteSource,
        /// Absolute file offset.
        offset: u64,
    },
    /// Reposition a descriptor's offset (`llseek`).
    Seek {
        /// Descriptor.
        fd: i32,
        /// Signed offset.
        offset: i64,
        /// 0 = SET, 1 = CUR, 2 = END.
        whence: u32,
    },
    /// Duplicate a descriptor to the lowest free number.
    Dup {
        /// Descriptor to duplicate.
        fd: i32,
    },
    /// Duplicate a descriptor onto a specific number.
    Dup2 {
        /// Source descriptor.
        from: i32,
        /// Destination descriptor.
        to: i32,
    },
    /// Remove a file.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Truncate a file to a length.
    Truncate {
        /// Path to truncate.
        path: String,
        /// New size.
        size: u64,
    },
    /// Rename a file or directory.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },

    // ---- directory IO ----------------------------------------------------------
    /// Read the entries of a directory (`readdir`/`getdents`).
    Readdir {
        /// Directory path.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Path to create.
        path: String,
        /// Mode bits.
        mode: u32,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Path to remove.
        path: String,
    },

    // ---- file metadata -------------------------------------------------------
    /// Stat by path (follows symlinks; Browsix has none, so `lstat` is the
    /// same operation).
    Stat {
        /// Path to stat.
        path: String,
        /// Whether this was an `lstat` call (kept for ABI completeness).
        lstat: bool,
    },
    /// Stat an open descriptor.
    Fstat {
        /// Descriptor.
        fd: i32,
    },
    /// Check accessibility of a path.
    Access {
        /// Path to check.
        path: String,
        /// Mode mask (F_OK/R_OK/W_OK/X_OK) — Browsix relies on the browser
        /// sandbox, so only existence is checked.
        mode: u32,
    },
    /// Read the target of a symbolic link (always `EINVAL` here: the shared
    /// file system has no symlinks, matching BrowserFS).
    Readlink {
        /// Path to inspect.
        path: String,
    },
    /// Update access/modification times.
    Utimes {
        /// Path to touch.
        path: String,
        /// Access time (ms since epoch).
        atime_ms: u64,
        /// Modification time (ms since epoch).
        mtime_ms: u64,
    },

    // ---- sockets ---------------------------------------------------------------
    /// Create a TCP (`SOCK_STREAM`) socket.
    Socket,
    /// Bind a socket to a local port.
    Bind {
        /// Socket descriptor.
        fd: i32,
        /// Port number (0 asks the kernel to pick one).
        port: u16,
    },
    /// Return the local address of a socket.
    GetSockName {
        /// Socket descriptor.
        fd: i32,
    },
    /// Mark a socket as accepting connections.
    Listen {
        /// Socket descriptor.
        fd: i32,
        /// Backlog size.
        backlog: u32,
    },
    /// Accept a pending connection.
    Accept {
        /// Listening socket descriptor.
        fd: i32,
    },
    /// Connect to a listening socket.
    Connect {
        /// Socket descriptor.
        fd: i32,
        /// Destination port on the in-browser loopback network.
        port: u16,
    },
}

impl Syscall {
    /// The syscall's name, used for statistics and tracing (and by the
    /// Figure 3 reproduction).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Spawn { .. } => "spawn",
            Syscall::Fork { .. } => "fork",
            Syscall::Pipe2 => "pipe2",
            Syscall::Wait4 { .. } => "wait4",
            Syscall::Exit { .. } => "exit",
            Syscall::Kill { .. } => "kill",
            Syscall::SignalAction { .. } => "sigaction",
            Syscall::GetPid => "getpid",
            Syscall::GetPPid => "getppid",
            Syscall::GetCwd => "getcwd",
            Syscall::Chdir { .. } => "chdir",
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Read { .. } => "read",
            Syscall::Pread { .. } => "pread",
            Syscall::Write { .. } => "write",
            Syscall::Pwrite { .. } => "pwrite",
            Syscall::Seek { .. } => "llseek",
            Syscall::Dup { .. } => "dup",
            Syscall::Dup2 { .. } => "dup2",
            Syscall::Unlink { .. } => "unlink",
            Syscall::Truncate { .. } => "truncate",
            Syscall::Rename { .. } => "rename",
            Syscall::Readdir { .. } => "getdents",
            Syscall::Mkdir { .. } => "mkdir",
            Syscall::Rmdir { .. } => "rmdir",
            Syscall::Stat { lstat, .. } => {
                if *lstat {
                    "lstat"
                } else {
                    "stat"
                }
            }
            Syscall::Fstat { .. } => "fstat",
            Syscall::Access { .. } => "access",
            Syscall::Readlink { .. } => "readlink",
            Syscall::Utimes { .. } => "utimes",
            Syscall::Socket => "socket",
            Syscall::Bind { .. } => "bind",
            Syscall::GetSockName { .. } => "getsockname",
            Syscall::Listen { .. } => "listen",
            Syscall::Accept { .. } => "accept",
            Syscall::Connect { .. } => "connect",
        }
    }

    /// The Figure 3 class this call belongs to.
    pub fn class(&self) -> &'static str {
        match self {
            Syscall::Spawn { .. }
            | Syscall::Fork { .. }
            | Syscall::Pipe2
            | Syscall::Wait4 { .. }
            | Syscall::Exit { .. }
            | Syscall::Kill { .. }
            | Syscall::SignalAction { .. } => "Process Management",
            Syscall::GetPid | Syscall::GetPPid | Syscall::GetCwd | Syscall::Chdir { .. } => "Process Metadata",
            Syscall::Socket
            | Syscall::Bind { .. }
            | Syscall::GetSockName { .. }
            | Syscall::Listen { .. }
            | Syscall::Accept { .. }
            | Syscall::Connect { .. } => "Sockets",
            Syscall::Readdir { .. } | Syscall::Mkdir { .. } | Syscall::Rmdir { .. } => "Directory IO",
            Syscall::Open { .. }
            | Syscall::Close { .. }
            | Syscall::Read { .. }
            | Syscall::Pread { .. }
            | Syscall::Write { .. }
            | Syscall::Pwrite { .. }
            | Syscall::Seek { .. }
            | Syscall::Dup { .. }
            | Syscall::Dup2 { .. }
            | Syscall::Unlink { .. }
            | Syscall::Truncate { .. }
            | Syscall::Rename { .. } => "File IO",
            Syscall::Stat { .. }
            | Syscall::Fstat { .. }
            | Syscall::Access { .. }
            | Syscall::Readlink { .. }
            | Syscall::Utimes { .. } => "File Metadata",
        }
    }

    /// Encodes the call as a structured-clone message (asynchronous
    /// convention).  All buffers are inlined and therefore copied.
    pub fn to_message(&self) -> Message {
        let mut msg = Message::map().with("syscall", self.name());
        match self {
            Syscall::Spawn {
                path,
                args,
                env,
                cwd,
                stdio,
            } => {
                let env_msgs: Vec<Message> = env
                    .iter()
                    .map(|(k, v)| Message::Array(vec![Message::from(k.as_str()), Message::from(v.as_str())]))
                    .collect();
                msg = msg
                    .with("path", path.as_str())
                    .with("args", Message::from(args.clone()))
                    .with("env", Message::Array(env_msgs))
                    .with("cwd", cwd.clone().map(Message::Str).unwrap_or(Message::Null))
                    .with(
                        "stdio",
                        Message::Array(
                            stdio
                                .iter()
                                .map(|s| s.map(|fd| Message::Int(fd as i64)).unwrap_or(Message::Null))
                                .collect(),
                        ),
                    );
            }
            Syscall::Fork { image, resume_point } => {
                msg = msg.with("image", image.clone()).with("resume", *resume_point as i64);
            }
            Syscall::Pipe2 | Syscall::GetPid | Syscall::GetPPid | Syscall::GetCwd | Syscall::Socket => {}
            Syscall::Wait4 { pid, options } => {
                msg = msg.with("pid", *pid as i64).with("options", *options as i64);
            }
            Syscall::Exit { code } => msg = msg.with("code", *code as i64),
            Syscall::Kill { pid, signal } => {
                msg = msg.with("pid", *pid as i64).with("signal", signal.number() as i64);
            }
            Syscall::SignalAction { signal, install } => {
                msg = msg.with("signal", signal.number() as i64).with("install", *install);
            }
            Syscall::Chdir { path }
            | Syscall::Unlink { path }
            | Syscall::Rmdir { path }
            | Syscall::Readdir { path }
            | Syscall::Readlink { path } => {
                msg = msg.with("path", path.as_str());
            }
            Syscall::Open { path, flags, mode } => {
                msg = msg
                    .with("path", path.as_str())
                    .with("flags", flags.to_bits() as i64)
                    .with("mode", *mode as i64);
            }
            Syscall::Close { fd }
            | Syscall::Dup { fd }
            | Syscall::Fstat { fd }
            | Syscall::GetSockName { fd }
            | Syscall::Accept { fd } => {
                msg = msg.with("fd", *fd as i64);
            }
            Syscall::Read { fd, len } => {
                msg = msg.with("fd", *fd as i64).with("len", *len as i64);
            }
            Syscall::Pread { fd, len, offset } => {
                msg = msg
                    .with("fd", *fd as i64)
                    .with("len", *len as i64)
                    .with("offset", *offset as i64);
            }
            Syscall::Write { fd, data } => {
                msg = msg.with("fd", *fd as i64).with("data", byte_source_to_message(data));
            }
            Syscall::Pwrite { fd, data, offset } => {
                msg = msg
                    .with("fd", *fd as i64)
                    .with("data", byte_source_to_message(data))
                    .with("offset", *offset as i64);
            }
            Syscall::Seek { fd, offset, whence } => {
                msg = msg
                    .with("fd", *fd as i64)
                    .with("offset", *offset)
                    .with("whence", *whence as i64);
            }
            Syscall::Dup2 { from, to } => {
                msg = msg.with("from", *from as i64).with("to", *to as i64);
            }
            Syscall::Truncate { path, size } => {
                msg = msg.with("path", path.as_str()).with("size", *size as i64);
            }
            Syscall::Rename { from, to } => {
                msg = msg.with("from", from.as_str()).with("to", to.as_str());
            }
            Syscall::Mkdir { path, mode } => {
                msg = msg.with("path", path.as_str()).with("mode", *mode as i64);
            }
            Syscall::Stat { path, lstat } => {
                msg = msg.with("path", path.as_str()).with("lstat", *lstat);
            }
            Syscall::Access { path, mode } => {
                msg = msg.with("path", path.as_str()).with("mode", *mode as i64);
            }
            Syscall::Utimes {
                path,
                atime_ms,
                mtime_ms,
            } => {
                msg = msg
                    .with("path", path.as_str())
                    .with("atime", *atime_ms as i64)
                    .with("mtime", *mtime_ms as i64);
            }
            Syscall::Bind { fd, port } | Syscall::Connect { fd, port } => {
                msg = msg.with("fd", *fd as i64).with("port", *port as i64);
            }
            Syscall::Listen { fd, backlog } => {
                msg = msg.with("fd", *fd as i64).with("backlog", *backlog as i64);
            }
        }
        msg
    }

    /// Decodes a call from a structured-clone message.
    ///
    /// Returns `None` if the message is not a well-formed system call.
    pub fn from_message(msg: &Message) -> Option<Syscall> {
        let name = msg.get_str("syscall")?;
        let fd = || msg.get_int("fd").map(|v| v as i32);
        let path = || msg.get_str("path").map(|s| s.to_owned());
        Some(match name {
            "spawn" => {
                let args = msg
                    .get("args")?
                    .as_array()?
                    .iter()
                    .filter_map(|m| m.as_str().map(|s| s.to_owned()))
                    .collect();
                let env = msg
                    .get("env")?
                    .as_array()?
                    .iter()
                    .filter_map(|pair| {
                        let items = pair.as_array()?;
                        Some((items.first()?.as_str()?.to_owned(), items.get(1)?.as_str()?.to_owned()))
                    })
                    .collect();
                let cwd = msg.get("cwd").and_then(|m| m.as_str()).map(|s| s.to_owned());
                let stdio_msgs = msg.get("stdio")?.as_array()?;
                let mut stdio = [None, None, None];
                for (i, slot) in stdio.iter_mut().enumerate() {
                    *slot = stdio_msgs.get(i).and_then(|m| m.as_int()).map(|v| v as i32);
                }
                Syscall::Spawn {
                    path: path()?,
                    args,
                    env,
                    cwd,
                    stdio,
                }
            }
            "fork" => Syscall::Fork {
                image: msg.get_bytes("image")?.to_vec(),
                resume_point: msg.get_int("resume")? as u64,
            },
            "pipe2" => Syscall::Pipe2,
            "wait4" => Syscall::Wait4 {
                pid: msg.get_int("pid")? as i32,
                options: msg.get_int("options")? as u32,
            },
            "exit" => Syscall::Exit {
                code: msg.get_int("code")? as i32,
            },
            "kill" => Syscall::Kill {
                pid: msg.get_int("pid")? as Pid,
                signal: Signal::from_number(msg.get_int("signal")? as i32)?,
            },
            "sigaction" => Syscall::SignalAction {
                signal: Signal::from_number(msg.get_int("signal")? as i32)?,
                install: msg.get_int("install")? != 0,
            },
            "getpid" => Syscall::GetPid,
            "getppid" => Syscall::GetPPid,
            "getcwd" => Syscall::GetCwd,
            "chdir" => Syscall::Chdir { path: path()? },
            "open" => Syscall::Open {
                path: path()?,
                flags: OpenFlags::from_bits(msg.get_int("flags")? as u32).ok()?,
                mode: msg.get_int("mode")? as u32,
            },
            "close" => Syscall::Close { fd: fd()? },
            "read" => Syscall::Read {
                fd: fd()?,
                len: msg.get_int("len")? as u32,
            },
            "pread" => Syscall::Pread {
                fd: fd()?,
                len: msg.get_int("len")? as u32,
                offset: msg.get_int("offset")? as u64,
            },
            "write" => Syscall::Write {
                fd: fd()?,
                data: byte_source_from_message(msg.get("data")?)?,
            },
            "pwrite" => Syscall::Pwrite {
                fd: fd()?,
                data: byte_source_from_message(msg.get("data")?)?,
                offset: msg.get_int("offset")? as u64,
            },
            "llseek" => Syscall::Seek {
                fd: fd()?,
                offset: msg.get_int("offset")?,
                whence: msg.get_int("whence")? as u32,
            },
            "dup" => Syscall::Dup { fd: fd()? },
            "dup2" => Syscall::Dup2 {
                from: msg.get_int("from")? as i32,
                to: msg.get_int("to")? as i32,
            },
            "unlink" => Syscall::Unlink { path: path()? },
            "truncate" => Syscall::Truncate {
                path: path()?,
                size: msg.get_int("size")? as u64,
            },
            "rename" => Syscall::Rename {
                from: msg.get_str("from")?.to_owned(),
                to: msg.get_str("to")?.to_owned(),
            },
            "getdents" => Syscall::Readdir { path: path()? },
            "mkdir" => Syscall::Mkdir {
                path: path()?,
                mode: msg.get_int("mode")? as u32,
            },
            "rmdir" => Syscall::Rmdir { path: path()? },
            "stat" | "lstat" => Syscall::Stat {
                path: path()?,
                lstat: name == "lstat",
            },
            "fstat" => Syscall::Fstat { fd: fd()? },
            "access" => Syscall::Access {
                path: path()?,
                mode: msg.get_int("mode")? as u32,
            },
            "readlink" => Syscall::Readlink { path: path()? },
            "utimes" => Syscall::Utimes {
                path: path()?,
                atime_ms: msg.get_int("atime")? as u64,
                mtime_ms: msg.get_int("mtime")? as u64,
            },
            "socket" => Syscall::Socket,
            "bind" => Syscall::Bind {
                fd: fd()?,
                port: msg.get_int("port")? as u16,
            },
            "getsockname" => Syscall::GetSockName { fd: fd()? },
            "listen" => Syscall::Listen {
                fd: fd()?,
                backlog: msg.get_int("backlog")? as u32,
            },
            "accept" => Syscall::Accept { fd: fd()? },
            "connect" => Syscall::Connect {
                fd: fd()?,
                port: msg.get_int("port")? as u16,
            },
            _ => return None,
        })
    }
}

fn byte_source_to_message(source: &ByteSource) -> Message {
    match source {
        ByteSource::Inline(data) => Message::Bytes(data.clone()),
        ByteSource::SharedHeap { offset, len } => Message::map()
            .with("shared_offset", *offset as i64)
            .with("shared_len", *len as i64),
    }
}

fn byte_source_from_message(msg: &Message) -> Option<ByteSource> {
    if let Some(bytes) = msg.as_bytes() {
        return Some(ByteSource::Inline(bytes.to_vec()));
    }
    Some(ByteSource::SharedHeap {
        offset: msg.get_int("shared_offset")? as u32,
        len: msg.get_int("shared_len")? as u32,
    })
}

/// The result of a system call.
#[derive(Debug, Clone, PartialEq)]
pub enum SysResult {
    /// Success with no interesting value.
    Ok,
    /// A scalar result (descriptor, byte count, pid, offset...).
    Int(i64),
    /// A pair of scalars (`pipe2` returns the read and write descriptors).
    Pair(i64, i64),
    /// Bytes read.
    Data(Vec<u8>),
    /// A path (`getcwd`, `readlink`).
    Path(String),
    /// File metadata (`stat` family).
    Stat(Metadata),
    /// Directory entries (`getdents`).
    Entries(Vec<DirEntry>),
    /// A reaped child and its wait status (`wait4`).
    Wait {
        /// The reaped child's pid (0 when `WNOHANG` found nothing).
        pid: Pid,
        /// The encoded wait status.
        status: i32,
    },
    /// Failure.
    Err(Errno),
}

impl SysResult {
    /// Whether this is an error result.
    pub fn is_err(&self) -> bool {
        matches!(self, SysResult::Err(_))
    }

    /// Converts into a `Result`, mapping every success variant to itself.
    ///
    /// # Errors
    ///
    /// Returns the contained [`Errno`] for [`SysResult::Err`].
    pub fn into_result(self) -> Result<SysResult, Errno> {
        match self {
            SysResult::Err(errno) => Err(errno),
            other => Ok(other),
        }
    }

    /// The scalar payload of an `Int` (or the errno-style negative value of an
    /// error), mirroring the raw Linux ABI return convention.
    pub fn as_linux_return(&self) -> i64 {
        match self {
            SysResult::Ok => 0,
            SysResult::Int(v) => *v,
            SysResult::Pair(a, _) => *a,
            SysResult::Data(data) => data.len() as i64,
            SysResult::Path(path) => path.len() as i64,
            SysResult::Stat(_) => 0,
            SysResult::Entries(entries) => entries.len() as i64,
            SysResult::Wait { pid, .. } => *pid as i64,
            SysResult::Err(errno) => errno.as_syscall_return(),
        }
    }

    /// Encodes the result as a structured-clone message (asynchronous
    /// convention).
    pub fn to_message(&self) -> Message {
        match self {
            SysResult::Ok => Message::map().with("kind", "ok"),
            SysResult::Int(v) => Message::map().with("kind", "int").with("value", *v),
            SysResult::Pair(a, b) => Message::map().with("kind", "pair").with("a", *a).with("b", *b),
            SysResult::Data(data) => Message::map().with("kind", "data").with("data", data.clone()),
            SysResult::Path(path) => Message::map().with("kind", "path").with("path", path.as_str()),
            SysResult::Stat(meta) => Message::map()
                .with("kind", "stat")
                .with("size", meta.size as i64)
                .with("mode", meta.mode as i64)
                .with("mtime", meta.mtime_ms as i64)
                .with("atime", meta.atime_ms as i64)
                .with("is_dir", meta.is_dir()),
            SysResult::Entries(entries) => Message::map().with("kind", "entries").with(
                "entries",
                Message::Array(
                    entries
                        .iter()
                        .map(|e| {
                            Message::map()
                                .with("name", e.name.as_str())
                                .with("is_dir", e.file_type == FileType::Directory)
                        })
                        .collect(),
                ),
            ),
            SysResult::Wait { pid, status } => Message::map()
                .with("kind", "wait")
                .with("pid", *pid as i64)
                .with("status", *status as i64),
            SysResult::Err(errno) => Message::map().with("kind", "err").with("errno", errno.code() as i64),
        }
    }

    /// Decodes a result from a structured-clone message.
    ///
    /// Returns `None` if the message is not a well-formed result.
    pub fn from_message(msg: &Message) -> Option<SysResult> {
        Some(match msg.get_str("kind")? {
            "ok" => SysResult::Ok,
            "int" => SysResult::Int(msg.get_int("value")?),
            "pair" => SysResult::Pair(msg.get_int("a")?, msg.get_int("b")?),
            "data" => SysResult::Data(msg.get_bytes("data")?.to_vec()),
            "path" => SysResult::Path(msg.get_str("path")?.to_owned()),
            "stat" => SysResult::Stat(Metadata {
                file_type: if msg.get_int("is_dir")? != 0 {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
                size: msg.get_int("size")? as u64,
                mode: msg.get_int("mode")? as u32,
                mtime_ms: msg.get_int("mtime")? as u64,
                atime_ms: msg.get_int("atime")? as u64,
            }),
            "entries" => SysResult::Entries(
                msg.get("entries")?
                    .as_array()?
                    .iter()
                    .filter_map(|e| {
                        Some(DirEntry {
                            name: e.get_str("name")?.to_owned(),
                            file_type: if e.get_int("is_dir")? != 0 {
                                FileType::Directory
                            } else {
                                FileType::Regular
                            },
                        })
                    })
                    .collect(),
            ),
            "wait" => SysResult::Wait {
                pid: msg.get_int("pid")? as Pid,
                status: msg.get_int("status")? as i32,
            },
            "err" => SysResult::Err(Errno::from_code(msg.get_int("errno")? as i32)?),
            _ => return None,
        })
    }

    /// Encodes the result into the compact byte format written into a
    /// process's shared heap by the synchronous convention.
    pub fn encode_bytes(&self) -> Vec<u8> {
        // A Message-free, allocation-light framing: tag byte + payload.
        let mut out = Vec::with_capacity(16);
        match self {
            SysResult::Ok => out.push(0),
            SysResult::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            SysResult::Pair(a, b) => {
                out.push(2);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
            SysResult::Data(data) => {
                out.push(3);
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            SysResult::Path(path) => {
                out.push(4);
                out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                out.extend_from_slice(path.as_bytes());
            }
            SysResult::Stat(meta) => {
                out.push(5);
                out.extend_from_slice(&meta.size.to_le_bytes());
                out.extend_from_slice(&meta.mode.to_le_bytes());
                out.extend_from_slice(&meta.mtime_ms.to_le_bytes());
                out.extend_from_slice(&meta.atime_ms.to_le_bytes());
                out.push(meta.is_dir() as u8);
            }
            SysResult::Entries(entries) => {
                out.push(6);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for entry in entries {
                    out.push((entry.file_type == FileType::Directory) as u8);
                    out.extend_from_slice(&(entry.name.len() as u32).to_le_bytes());
                    out.extend_from_slice(entry.name.as_bytes());
                }
            }
            SysResult::Wait { pid, status } => {
                out.push(7);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
            }
            SysResult::Err(errno) => {
                out.push(255);
                out.extend_from_slice(&errno.code().to_le_bytes());
            }
        }
        out
    }

    /// Decodes a result from the compact byte format.
    ///
    /// Returns `None` if the bytes are malformed.
    pub fn decode_bytes(bytes: &[u8]) -> Option<SysResult> {
        fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
            Some(u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?))
        }
        fn read_u64(bytes: &[u8], pos: usize) -> Option<u64> {
            Some(u64::from_le_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?))
        }
        let tag = *bytes.first()?;
        Some(match tag {
            0 => SysResult::Ok,
            1 => SysResult::Int(read_u64(bytes, 1)? as i64),
            2 => SysResult::Pair(read_u64(bytes, 1)? as i64, read_u64(bytes, 9)? as i64),
            3 => {
                let len = read_u32(bytes, 1)? as usize;
                SysResult::Data(bytes.get(5..5 + len)?.to_vec())
            }
            4 => {
                let len = read_u32(bytes, 1)? as usize;
                SysResult::Path(String::from_utf8(bytes.get(5..5 + len)?.to_vec()).ok()?)
            }
            5 => SysResult::Stat(Metadata {
                size: read_u64(bytes, 1)?,
                mode: read_u32(bytes, 9)?,
                mtime_ms: read_u64(bytes, 13)?,
                atime_ms: read_u64(bytes, 21)?,
                file_type: if *bytes.get(29)? != 0 {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            }),
            6 => {
                let count = read_u32(bytes, 1)? as usize;
                let mut entries = Vec::with_capacity(count);
                let mut pos = 5;
                for _ in 0..count {
                    let is_dir = *bytes.get(pos)? != 0;
                    let len = read_u32(bytes, pos + 1)? as usize;
                    let name = String::from_utf8(bytes.get(pos + 5..pos + 5 + len)?.to_vec()).ok()?;
                    entries.push(DirEntry {
                        name,
                        file_type: if is_dir { FileType::Directory } else { FileType::Regular },
                    });
                    pos += 5 + len;
                }
                SysResult::Entries(entries)
            }
            7 => SysResult::Wait {
                pid: read_u32(bytes, 1)?,
                status: read_u32(bytes, 5)? as i32,
            },
            255 => SysResult::Err(Errno::from_code(read_u32(bytes, 1)? as i32)?),
            _ => return None,
        })
    }
}

impl From<Result<SysResult, Errno>> for SysResult {
    fn from(value: Result<SysResult, Errno>) -> Self {
        match value {
            Ok(result) => result,
            Err(errno) => SysResult::Err(errno),
        }
    }
}

/// How a system call travelled from the process to the kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Transport {
    /// Asynchronous convention: the structured-clone encoded call, plus the
    /// sequence number the response must carry.
    Async {
        /// Per-process sequence number used to match responses.
        seq: u64,
        /// The encoded call.
        msg: Message,
    },
    /// Synchronous convention: the decoded call (arguments are integers or
    /// shared-heap references); the response is written into the process's
    /// shared heap.
    Sync {
        /// The call.
        call: Syscall,
    },
}

/// Encodes an exit code / terminating signal into a Linux-style wait status.
pub fn encode_wait_status(exit_code: Option<i32>, signal: Option<Signal>) -> i32 {
    match (exit_code, signal) {
        (_, Some(sig)) => sig.termination_status(),
        (Some(code), None) => (code & 0xff) << 8,
        (None, None) => 0,
    }
}

/// Extracts the exit code from a wait status, if the child exited normally.
pub fn wait_status_exit_code(status: i32) -> Option<i32> {
    if status & 0x7f == 0 {
        Some((status >> 8) & 0xff)
    } else {
        None
    }
}

/// Extracts the terminating signal from a wait status, if any.
pub fn wait_status_signal(status: i32) -> Option<Signal> {
    let sig = status & 0x7f;
    if sig != 0 {
        Signal::from_number(sig)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_calls() -> Vec<Syscall> {
        vec![
            Syscall::Spawn {
                path: "/usr/bin/pdflatex".into(),
                args: vec!["pdflatex".into(), "main.tex".into()],
                env: vec![("HOME".into(), "/home".into())],
                cwd: Some("/home".into()),
                stdio: [None, Some(4), Some(5)],
            },
            Syscall::Fork {
                image: vec![1, 2, 3],
                resume_point: 42,
            },
            Syscall::Pipe2,
            Syscall::Wait4 { pid: -1, options: 1 },
            Syscall::Exit { code: 3 },
            Syscall::Kill {
                pid: 7,
                signal: Signal::SIGTERM,
            },
            Syscall::SignalAction {
                signal: Signal::SIGCHLD,
                install: true,
            },
            Syscall::GetPid,
            Syscall::GetPPid,
            Syscall::GetCwd,
            Syscall::Chdir { path: "/tmp".into() },
            Syscall::Open {
                path: "/etc/passwd".into(),
                flags: OpenFlags::read_only(),
                mode: 0,
            },
            Syscall::Close { fd: 3 },
            Syscall::Read { fd: 3, len: 4096 },
            Syscall::Pread {
                fd: 3,
                len: 16,
                offset: 100,
            },
            Syscall::Write {
                fd: 1,
                data: ByteSource::Inline(b"hello".to_vec()),
            },
            Syscall::Pwrite {
                fd: 1,
                data: ByteSource::SharedHeap { offset: 64, len: 10 },
                offset: 0,
            },
            Syscall::Seek {
                fd: 3,
                offset: -10,
                whence: 2,
            },
            Syscall::Dup { fd: 1 },
            Syscall::Dup2 { from: 4, to: 1 },
            Syscall::Unlink { path: "/tmp/x".into() },
            Syscall::Truncate {
                path: "/tmp/x".into(),
                size: 10,
            },
            Syscall::Rename {
                from: "/a".into(),
                to: "/b".into(),
            },
            Syscall::Readdir {
                path: "/usr/bin".into(),
            },
            Syscall::Mkdir {
                path: "/tmp/d".into(),
                mode: 0o755,
            },
            Syscall::Rmdir { path: "/tmp/d".into() },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: false,
            },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: true,
            },
            Syscall::Fstat { fd: 0 },
            Syscall::Access {
                path: "/bin/sh".into(),
                mode: 1,
            },
            Syscall::Readlink {
                path: "/proc/self".into(),
            },
            Syscall::Utimes {
                path: "/tmp/x".into(),
                atime_ms: 1,
                mtime_ms: 2,
            },
            Syscall::Socket,
            Syscall::Bind { fd: 3, port: 8080 },
            Syscall::GetSockName { fd: 3 },
            Syscall::Listen { fd: 3, backlog: 16 },
            Syscall::Accept { fd: 3 },
            Syscall::Connect { fd: 4, port: 8080 },
        ]
    }

    #[test]
    fn every_syscall_round_trips_through_messages() {
        for call in sample_calls() {
            let msg = call.to_message();
            let decoded = Syscall::from_message(&msg).unwrap_or_else(|| panic!("{}", call.name()));
            assert_eq!(decoded, call, "{}", call.name());
        }
    }

    #[test]
    fn figure3_classes_are_covered() {
        let classes: std::collections::HashSet<&str> = sample_calls().iter().map(|c| c.class()).collect();
        for expected in [
            "Process Management",
            "Process Metadata",
            "Sockets",
            "Directory IO",
            "File IO",
            "File Metadata",
        ] {
            assert!(classes.contains(expected), "missing class {expected}");
        }
    }

    #[test]
    fn names_are_unique_per_variant_shape() {
        let names: Vec<&str> = sample_calls().iter().map(|c| c.name()).collect();
        // `stat` and `lstat` intentionally share a variant; all others unique.
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert!(unique.len() >= names.len() - 1);
    }

    fn sample_results() -> Vec<SysResult> {
        vec![
            SysResult::Ok,
            SysResult::Int(42),
            SysResult::Int(-1),
            SysResult::Pair(3, 4),
            SysResult::Data(vec![0, 1, 2, 250]),
            SysResult::Path("/home/user".into()),
            SysResult::Stat(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o755,
                mtime_ms: 1234,
                atime_ms: 5678,
            }),
            SysResult::Entries(vec![DirEntry::file("a.txt"), DirEntry::dir("sub")]),
            SysResult::Wait { pid: 9, status: 256 },
            SysResult::Err(Errno::ENOENT),
        ]
    }

    #[test]
    fn results_round_trip_through_messages() {
        for result in sample_results() {
            let decoded = SysResult::from_message(&result.to_message()).unwrap();
            assert_eq!(decoded, result);
        }
    }

    #[test]
    fn results_round_trip_through_shared_heap_bytes() {
        for result in sample_results() {
            let decoded = SysResult::decode_bytes(&result.encode_bytes()).unwrap();
            assert_eq!(decoded, result);
        }
    }

    #[test]
    fn malformed_encodings_return_none() {
        assert_eq!(Syscall::from_message(&Message::Null), None);
        assert_eq!(Syscall::from_message(&Message::map().with("syscall", "bogus")), None);
        assert_eq!(SysResult::from_message(&Message::map().with("kind", "bogus")), None);
        assert_eq!(SysResult::decode_bytes(&[99]), None);
        assert_eq!(SysResult::decode_bytes(&[]), None);
        assert_eq!(SysResult::decode_bytes(&[3, 255, 255, 255, 255]), None);
    }

    #[test]
    fn linux_return_convention() {
        assert_eq!(SysResult::Ok.as_linux_return(), 0);
        assert_eq!(SysResult::Int(7).as_linux_return(), 7);
        assert_eq!(SysResult::Err(Errno::ENOENT).as_linux_return(), -2);
        assert_eq!(SysResult::Data(vec![1, 2, 3]).as_linux_return(), 3);
        assert!(SysResult::Err(Errno::EBADF).is_err());
        assert!(SysResult::Int(0).into_result().is_ok());
        assert_eq!(SysResult::Err(Errno::EBADF).into_result(), Err(Errno::EBADF));
    }

    #[test]
    fn wait_status_encoding() {
        let exited = encode_wait_status(Some(3), None);
        assert_eq!(wait_status_exit_code(exited), Some(3));
        assert_eq!(wait_status_signal(exited), None);

        let killed = encode_wait_status(None, Some(Signal::SIGKILL));
        assert_eq!(wait_status_exit_code(killed), None);
        assert_eq!(wait_status_signal(killed), Some(Signal::SIGKILL));
    }

    #[test]
    fn byte_source_length() {
        assert_eq!(ByteSource::Inline(vec![1, 2, 3]).len(), 3);
        assert!(ByteSource::Inline(vec![]).is_empty());
        assert_eq!(ByteSource::SharedHeap { offset: 0, len: 10 }.len(), 10);
        assert!(!ByteSource::SharedHeap { offset: 0, len: 10 }.is_empty());
    }

    #[test]
    fn async_messages_for_writes_carry_payload_size() {
        // The asynchronous convention pays a copy cost proportional to the
        // payload; the synchronous convention's message stays tiny.
        let big = Syscall::Write {
            fd: 1,
            data: ByteSource::Inline(vec![0u8; 4096]),
        };
        let small = Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 0, len: 4096 },
        };
        assert!(big.to_message().byte_size() > 4096);
        assert!(small.to_message().byte_size() < 256);
    }
}
