//! The system-call ABI: call and result types, submission/completion batches,
//! and the single wire codec shared by both transport conventions.
//!
//! A process never sends one system call at a time; it submits a
//! [`SyscallBatch`] and receives a [`CompletionBatch`] holding one
//! [`Completion`] per entry.  Both frames are encoded with the compact,
//! self-describing wire codec in this module (built on [`crate::wire`]) —
//! the **only** encoder/decoder in the system:
//!
//! * **asynchronous convention** — the encoded submission travels to the
//!   kernel as a byte buffer inside a structured-clone message (paying the
//!   clone cost once per batch instead of once per call), and the encoded
//!   completion batch comes back the same way.
//! * **synchronous convention** — the submission crosses in a tiny integer
//!   message while bulk data sits in the process's `SharedArrayBuffer`; the
//!   kernel writes the *same* encoded completion-batch frame into the shared
//!   heap and wakes the process with `Atomics.notify`.
//!
//! Wire format, all integers little-endian, strings and buffers
//! `u32`-length-prefixed:
//!
//! ```text
//! submission  := 0x42 'B' | version u8 | count u32 | entry*
//! entry       := opcode u8 | fields (fixed order per opcode)
//! completion  := 0x43 'C' | version u8 | count u32 | (index u32 | result)*
//! result      := tag u8 | payload
//! ```
//!
//! Entries that cannot finish immediately peel off into the kernel's pending
//! list individually; the kernel delivers the completion batch once — a
//! single reply message or a single shared-heap write + notify — when every
//! entry has completed.

use browsix_fs::{DirEntry, Errno, FileType, Metadata, OpenFlags};

use crate::signals::{SigAction, Signal};
use crate::task::Pid;
use crate::wire::{self, Reader};

/// Frame marker for an encoded [`SyscallBatch`].
const BATCH_MAGIC: u8 = 0x42;
/// Frame marker for an encoded [`CompletionBatch`].
const COMPLETION_MAGIC: u8 = 0x43;
/// Codec version, bumped on incompatible layout changes.
const WIRE_VERSION: u8 = 1;

// Poll event bits, matching the Linux `poll(2)` ABI.  `events` is what the
// caller asks about; `revents` is what the kernel reports.  `POLLERR`,
// `POLLHUP` and `POLLNVAL` are always reported, whether requested or not.

/// There is data to read (or the stream is at EOF, so a read returns now).
pub const POLLIN: u16 = 0x001;
/// Writing now will not block (or will fail immediately with EPIPE).
pub const POLLOUT: u16 = 0x004;
/// Error condition (for streams: the read side is gone, writes raise EPIPE).
pub const POLLERR: u16 = 0x008;
/// Hang-up: the peer closed its end of the stream.
pub const POLLHUP: u16 = 0x010;
/// The descriptor is not open.
pub const POLLNVAL: u16 = 0x020;

/// Status-flag bit for [`Syscall::SetFlags`]: `O_NONBLOCK`.  Reads, writes
/// and accepts on a non-blocking description return `EAGAIN` instead of
/// parking on a wait queue.
pub const NONBLOCK: u32 = 0x1;

/// `wait4` option bit: return immediately when no child has changed state.
pub const WNOHANG: u32 = 1;
/// `wait4` option bit: also report children stopped by a job-control signal
/// (each stop is reported once).
pub const WUNTRACED: u32 = 2;

/// One descriptor's entry in a [`Syscall::Poll`] submission: which fd, and
/// which readiness events the caller is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRequest {
    /// Descriptor to query.
    pub fd: i32,
    /// Requested event mask (`POLLIN` | `POLLOUT`).
    pub events: u16,
}

/// A source of bytes for data-carrying system calls (`write`, `pwrite`).
///
/// The asynchronous convention inlines the bytes into the submission frame
/// (and pays the structured-clone cost); the synchronous convention passes an
/// offset into the process's shared heap and the kernel reads the bytes
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteSource {
    /// Bytes carried inside the submission frame.
    Inline(Vec<u8>),
    /// Bytes already present in the process's shared heap.
    SharedHeap {
        /// Byte offset within the shared heap.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
}

impl ByteSource {
    /// The number of bytes this source refers to.
    pub fn len(&self) -> usize {
        match self {
            ByteSource::Inline(data) => data.len(),
            ByteSource::SharedHeap { len, .. } => *len as usize,
        }
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ByteSource::Inline(data) => {
                wire::put_u8(out, 0);
                wire::put_bytes(out, data);
            }
            ByteSource::SharedHeap { offset, len } => {
                wire::put_u8(out, 1);
                wire::put_u32(out, *offset);
                wire::put_u32(out, *len);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Option<ByteSource> {
        match r.u8()? {
            0 => Some(ByteSource::Inline(r.bytes()?.to_vec())),
            1 => Some(ByteSource::SharedHeap {
                offset: r.u32()?,
                len: r.u32()?,
            }),
            _ => None,
        }
    }
}

/// A system call, with arguments already in structured form.
///
/// Figure 3 of the paper lists the call classes: process management, process
/// metadata, sockets, directory I/O, file I/O and file metadata.  Every one of
/// those calls appears here.
#[derive(Debug, Clone, PartialEq)]
pub enum Syscall {
    // ---- process management -------------------------------------------------
    /// Create a process from an executable on the file system.
    Spawn {
        /// Path of the executable (or shebang script).
        path: String,
        /// Argument vector (argv, including argv[0]).
        args: Vec<String>,
        /// Environment variables.
        env: Vec<(String, String)>,
        /// Working directory for the child (defaults to the parent's).
        cwd: Option<String>,
        /// Parent file descriptors to install as the child's stdin/stdout/stderr;
        /// `None` inherits the parent's descriptor of the same number.
        stdio: [Option<i32>; 3],
    },
    /// Duplicate the calling process (C/C++ Emterpreter mode only): the
    /// runtime ships a snapshot of its heap and resume point.
    Fork {
        /// Serialized guest memory image.
        image: Vec<u8>,
        /// Interpreter resume point within the image.
        resume_point: u64,
    },
    /// Create a pipe; returns the read and write descriptors.
    Pipe2,
    /// Wait for a child to change state.
    Wait4 {
        /// Specific child pid, or -1 for any child.
        pid: i32,
        /// `WNOHANG` is bit 0.
        options: u32,
    },
    /// Terminate the calling process.
    Exit {
        /// Exit code.
        code: i32,
    },
    /// Send a signal to a process or a process group, following the `kill(2)`
    /// addressing convention.
    Kill {
        /// `> 0`: that process; `< 0`: every process in group `-pid`;
        /// `0`: every process in the caller's own group.
        pid: i32,
        /// Signal to deliver.
        signal: Signal,
    },
    /// Install, ignore or reset the action for a catchable signal
    /// (`sigaction`), including the `SA_RESTART` flag.
    SignalAction {
        /// Signal to configure.
        signal: Signal,
        /// The requested action.
        action: SigAction,
    },
    /// Change the calling process's blocked-signal mask (`sigprocmask`);
    /// returns the previous mask.
    Sigprocmask {
        /// One of [`crate::signals::SIG_BLOCK`],
        /// [`crate::signals::SIG_UNBLOCK`], [`crate::signals::SIG_SETMASK`].
        how: u32,
        /// The mask operand, as a [`crate::signals::SigSet`] bitmask.
        mask: u64,
    },
    /// Move a process into a process group (`setpgid`).
    Setpgid {
        /// Target process (0 = the caller).
        pid: Pid,
        /// Destination group (0 = a new group led by `pid`).
        pgid: Pid,
    },
    /// Read a process's group id (`getpgid`; 0 = the caller).
    Getpgid {
        /// Target process (0 = the caller).
        pid: Pid,
    },
    /// Make `pgid` the foreground process group of the controlling terminal
    /// (`tcsetpgrp`; the kernel models a single controlling terminal, so no
    /// descriptor argument is needed).
    Tcsetpgrp {
        /// The new foreground group.
        pgid: Pid,
    },

    // ---- process metadata ----------------------------------------------------
    /// Current process id.
    GetPid,
    /// Parent process id.
    GetPPid,
    /// Current working directory.
    GetCwd,
    /// Change the working directory.
    Chdir {
        /// New working directory.
        path: String,
    },

    // ---- file IO -------------------------------------------------------------
    /// Open a file, returning a descriptor.
    Open {
        /// Path to open (resolved against the caller's cwd by the runtime).
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Creation mode.
        mode: u32,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor to close.
        fd: i32,
    },
    /// Read from a descriptor at its current offset.
    Read {
        /// Descriptor.
        fd: i32,
        /// Maximum bytes to read.
        len: u32,
    },
    /// Positional read (does not move the offset).
    Pread {
        /// Descriptor.
        fd: i32,
        /// Maximum bytes to read.
        len: u32,
        /// Absolute file offset.
        offset: u64,
    },
    /// Write to a descriptor at its current offset.
    Write {
        /// Descriptor.
        fd: i32,
        /// Data to write.
        data: ByteSource,
    },
    /// Positional write (does not move the offset).
    Pwrite {
        /// Descriptor.
        fd: i32,
        /// Data to write.
        data: ByteSource,
        /// Absolute file offset.
        offset: u64,
    },
    /// Reposition a descriptor's offset (`llseek`).
    Seek {
        /// Descriptor.
        fd: i32,
        /// Signed offset.
        offset: i64,
        /// 0 = SET, 1 = CUR, 2 = END.
        whence: u32,
    },
    /// Duplicate a descriptor to the lowest free number.
    Dup {
        /// Descriptor to duplicate.
        fd: i32,
    },
    /// Duplicate a descriptor onto a specific number.
    Dup2 {
        /// Source descriptor.
        from: i32,
        /// Destination descriptor.
        to: i32,
    },
    /// Remove a file.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Truncate a file to a length.
    Truncate {
        /// Path to truncate.
        path: String,
        /// New size.
        size: u64,
    },
    /// Rename a file or directory.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Flush a descriptor's data to its backing store.
    Fsync {
        /// Descriptor.
        fd: i32,
    },
    /// Wait for readiness on a set of descriptors (`poll`).  Completes as
    /// soon as any descriptor has a non-zero `revents`, or when the timeout
    /// expires.
    Poll {
        /// Descriptors and the events of interest.
        fds: Vec<PollRequest>,
        /// Milliseconds to wait: negative waits forever, 0 returns
        /// immediately with the current readiness.
        timeout_ms: i32,
    },
    /// Replace a description's status flags (`fcntl(F_SETFL)`); the only
    /// defined bit is [`NONBLOCK`].
    SetFlags {
        /// Descriptor.
        fd: i32,
        /// New status-flag word.
        flags: u32,
    },

    // ---- directory IO ----------------------------------------------------------
    /// Read the entries of a directory (`readdir`/`getdents`).
    Readdir {
        /// Directory path.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// Path to create.
        path: String,
        /// Mode bits.
        mode: u32,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Path to remove.
        path: String,
    },

    // ---- file metadata -------------------------------------------------------
    /// Stat by path (follows symlinks; Browsix has none, so `lstat` is the
    /// same operation).
    Stat {
        /// Path to stat.
        path: String,
        /// Whether this was an `lstat` call (kept for ABI completeness).
        lstat: bool,
    },
    /// Stat an open descriptor.
    Fstat {
        /// Descriptor.
        fd: i32,
    },
    /// Check accessibility of a path.
    Access {
        /// Path to check.
        path: String,
        /// Mode mask (F_OK/R_OK/W_OK/X_OK) — Browsix relies on the browser
        /// sandbox, so only existence is checked.
        mode: u32,
    },
    /// Read the target of a symbolic link (always `EINVAL` here: the shared
    /// file system has no symlinks, matching BrowserFS).
    Readlink {
        /// Path to inspect.
        path: String,
    },
    /// Update access/modification times.
    Utimes {
        /// Path to touch.
        path: String,
        /// Access time (ms since epoch).
        atime_ms: u64,
        /// Modification time (ms since epoch).
        mtime_ms: u64,
    },

    // ---- sockets ---------------------------------------------------------------
    /// Create a TCP (`SOCK_STREAM`) socket.
    Socket,
    /// Bind a socket to a local port.
    Bind {
        /// Socket descriptor.
        fd: i32,
        /// Port number (0 asks the kernel to pick one).
        port: u16,
    },
    /// Return the local address of a socket.
    GetSockName {
        /// Socket descriptor.
        fd: i32,
    },
    /// Mark a socket as accepting connections.
    Listen {
        /// Socket descriptor.
        fd: i32,
        /// Backlog size.
        backlog: u32,
    },
    /// Accept a pending connection.
    Accept {
        /// Listening socket descriptor.
        fd: i32,
    },
    /// Connect to a listening socket.
    Connect {
        /// Socket descriptor.
        fd: i32,
        /// Destination port on the in-browser loopback network.
        port: u16,
    },

    // ---- virtual memory --------------------------------------------------------
    /// Truncate (or zero-extend) an open descriptor's file (`ftruncate`) —
    /// the way `shm_open` objects, which have no path, are sized before
    /// mapping.
    Ftruncate {
        /// Descriptor.
        fd: i32,
        /// New size.
        size: u64,
    },
    /// Map memory into the calling task's address space.  Returns the base
    /// address; for `MAP_SHARED` the kernel also delivers the backing
    /// `SharedArrayBuffer` to the process out of band, so subsequent access
    /// needs no system calls at all.
    Mmap {
        /// Fixed base address (0 lets the kernel choose).
        addr: u64,
        /// Length in bytes (rounded up to whole pages).
        len: u64,
        /// `PROT_READ` | `PROT_WRITE` ([`crate::vm`] constants).
        prot: u32,
        /// `MAP_PRIVATE`/`MAP_SHARED` | `MAP_ANONYMOUS`.
        flags: u32,
        /// Backing descriptor (-1 for anonymous mappings).
        fd: i32,
        /// Page-aligned byte offset into the backing object.
        offset: u64,
    },
    /// Remove a mapping (whole regions only).
    Munmap {
        /// Region base address.
        addr: u64,
        /// Region length.
        len: u64,
    },
    /// Write a shared mapping's bytes back to its backing object.
    Msync {
        /// Address within the mapping.
        addr: u64,
        /// Bytes to sync (0 = through the end of the region).
        len: u64,
    },
    /// Change a mapping's protection (whole regions only).
    Mprotect {
        /// Region base address.
        addr: u64,
        /// Region length.
        len: u64,
        /// New protection bits.
        prot: u32,
    },
    /// Open (or create) a named POSIX shared-memory object, returning a
    /// descriptor that supports `ftruncate`/`read`/`write` and `mmap`.
    ShmOpen {
        /// Object name (by convention `/name`).
        name: String,
        /// Open flags ([`OpenFlags`] bits; `create` creates the object).
        flags: u32,
        /// Creation mode.
        mode: u32,
    },
    /// Remove a shared-memory object's name; the object lives on until the
    /// last mapping and descriptor are gone.
    ShmUnlink {
        /// Object name.
        name: String,
    },
    /// Read from the calling task's address space (the simulated load; how
    /// processes access private mappings).
    VmRead {
        /// Virtual address.
        addr: u64,
        /// Bytes to read.
        len: u32,
    },
    /// Write to the calling task's address space (the simulated store; a hit
    /// on a shared page is a copy-on-write fault serviced in the kernel).
    VmWrite {
        /// Virtual address.
        addr: u64,
        /// Bytes to write.
        data: ByteSource,
    },
    /// Copy up to `len` bytes from a file descriptor to a stream descriptor
    /// entirely inside the kernel: page-cache pages feed the destination
    /// stream without the bytes ever entering guest memory.
    Sendfile {
        /// Destination descriptor (must name a stream: pipe or socket).
        out_fd: i32,
        /// Source descriptor (must name a regular file opened for reading).
        in_fd: i32,
        /// Byte offset to read from, or `-1` to use (and advance) the file
        /// cursor.
        offset: i64,
        /// Maximum number of bytes to move.
        len: u64,
    },
    /// Move up to `len` bytes from one stream descriptor to another entirely
    /// inside the kernel.
    Splice {
        /// Source descriptor (a stream).
        fd_in: i32,
        /// Destination descriptor (a stream).
        fd_out: i32,
        /// Maximum number of bytes to move.
        len: u64,
    },
    /// Register a persistent submission/completion ring living inside the
    /// process's shared heap.  Sent once over the classic framed transport
    /// right after the heap itself is registered; afterwards the synchronous
    /// convention submits through the ring instead of building frames.
    RingSetup {
        /// Byte offset of the submission-queue header within the shared heap.
        sq_offset: u32,
        /// Byte offset of the completion-queue header within the shared heap.
        cq_offset: u32,
        /// Number of slots in each queue (power of two).
        slots: u32,
        /// Byte size of one ring slot (header + payload capacity).
        slot_bytes: u32,
        /// Byte offset of the registered-buffer table within the shared heap.
        buf_offset: u32,
        /// Number of registered buffers.
        buf_count: u32,
        /// Byte size of one registered buffer.
        buf_bytes: u32,
    },
}

// Opcodes, grouped by Figure 3 class.  New calls append; existing numbers are
// part of the ABI and never change.
const OP_SPAWN: u8 = 1;
const OP_FORK: u8 = 2;
const OP_PIPE2: u8 = 3;
const OP_WAIT4: u8 = 4;
const OP_EXIT: u8 = 5;
const OP_KILL: u8 = 6;
const OP_SIGACTION: u8 = 7;
const OP_GETPID: u8 = 8;
const OP_GETPPID: u8 = 9;
const OP_GETCWD: u8 = 10;
const OP_CHDIR: u8 = 11;
const OP_OPEN: u8 = 12;
const OP_CLOSE: u8 = 13;
const OP_READ: u8 = 14;
const OP_PREAD: u8 = 15;
const OP_WRITE: u8 = 16;
const OP_PWRITE: u8 = 17;
const OP_SEEK: u8 = 18;
const OP_DUP: u8 = 19;
const OP_DUP2: u8 = 20;
const OP_UNLINK: u8 = 21;
const OP_TRUNCATE: u8 = 22;
const OP_RENAME: u8 = 23;
const OP_READDIR: u8 = 24;
const OP_MKDIR: u8 = 25;
const OP_RMDIR: u8 = 26;
const OP_STAT: u8 = 27;
const OP_FSTAT: u8 = 28;
const OP_ACCESS: u8 = 29;
const OP_READLINK: u8 = 30;
const OP_UTIMES: u8 = 31;
const OP_SOCKET: u8 = 32;
const OP_BIND: u8 = 33;
const OP_GETSOCKNAME: u8 = 34;
const OP_LISTEN: u8 = 35;
const OP_ACCEPT: u8 = 36;
const OP_CONNECT: u8 = 37;
const OP_FSYNC: u8 = 38;
const OP_POLL: u8 = 39;
const OP_SETFLAGS: u8 = 40;
const OP_SIGPROCMASK: u8 = 41;
const OP_SETPGID: u8 = 42;
const OP_GETPGID: u8 = 43;
const OP_TCSETPGRP: u8 = 44;
const OP_FTRUNCATE: u8 = 45;
const OP_MMAP: u8 = 46;
const OP_MUNMAP: u8 = 47;
const OP_MSYNC: u8 = 48;
const OP_MPROTECT: u8 = 49;
const OP_SHMOPEN: u8 = 50;
const OP_SHMUNLINK: u8 = 51;
const OP_VMREAD: u8 = 52;
const OP_VMWRITE: u8 = 53;
const OP_SENDFILE: u8 = 54;
const OP_SPLICE: u8 = 55;
const OP_RINGSETUP: u8 = 56;

impl Syscall {
    /// The syscall's name, used for statistics and tracing (and by the
    /// Figure 3 reproduction).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Spawn { .. } => "spawn",
            Syscall::Fork { .. } => "fork",
            Syscall::Pipe2 => "pipe2",
            Syscall::Wait4 { .. } => "wait4",
            Syscall::Exit { .. } => "exit",
            Syscall::Kill { .. } => "kill",
            Syscall::SignalAction { .. } => "sigaction",
            Syscall::Sigprocmask { .. } => "sigprocmask",
            Syscall::Setpgid { .. } => "setpgid",
            Syscall::Getpgid { .. } => "getpgid",
            Syscall::Tcsetpgrp { .. } => "tcsetpgrp",
            Syscall::GetPid => "getpid",
            Syscall::GetPPid => "getppid",
            Syscall::GetCwd => "getcwd",
            Syscall::Chdir { .. } => "chdir",
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Read { .. } => "read",
            Syscall::Pread { .. } => "pread",
            Syscall::Write { .. } => "write",
            Syscall::Pwrite { .. } => "pwrite",
            Syscall::Seek { .. } => "llseek",
            Syscall::Dup { .. } => "dup",
            Syscall::Dup2 { .. } => "dup2",
            Syscall::Unlink { .. } => "unlink",
            Syscall::Truncate { .. } => "truncate",
            Syscall::Rename { .. } => "rename",
            Syscall::Fsync { .. } => "fsync",
            Syscall::Poll { .. } => "poll",
            Syscall::SetFlags { .. } => "fcntl",
            Syscall::Readdir { .. } => "getdents",
            Syscall::Mkdir { .. } => "mkdir",
            Syscall::Rmdir { .. } => "rmdir",
            Syscall::Stat { lstat, .. } => {
                if *lstat {
                    "lstat"
                } else {
                    "stat"
                }
            }
            Syscall::Fstat { .. } => "fstat",
            Syscall::Access { .. } => "access",
            Syscall::Readlink { .. } => "readlink",
            Syscall::Utimes { .. } => "utimes",
            Syscall::Socket => "socket",
            Syscall::Bind { .. } => "bind",
            Syscall::GetSockName { .. } => "getsockname",
            Syscall::Listen { .. } => "listen",
            Syscall::Accept { .. } => "accept",
            Syscall::Connect { .. } => "connect",
            Syscall::Ftruncate { .. } => "ftruncate",
            Syscall::Mmap { .. } => "mmap",
            Syscall::Munmap { .. } => "munmap",
            Syscall::Msync { .. } => "msync",
            Syscall::Mprotect { .. } => "mprotect",
            Syscall::ShmOpen { .. } => "shm_open",
            Syscall::ShmUnlink { .. } => "shm_unlink",
            Syscall::VmRead { .. } => "vm_read",
            Syscall::VmWrite { .. } => "vm_write",
            Syscall::Sendfile { .. } => "sendfile",
            Syscall::Splice { .. } => "splice",
            Syscall::RingSetup { .. } => "ring_setup",
        }
    }

    /// The Figure 3 class this call belongs to.
    pub fn class(&self) -> &'static str {
        match self {
            Syscall::Spawn { .. }
            | Syscall::Fork { .. }
            | Syscall::Pipe2
            | Syscall::Wait4 { .. }
            | Syscall::Exit { .. }
            | Syscall::Kill { .. }
            | Syscall::SignalAction { .. }
            | Syscall::Sigprocmask { .. }
            | Syscall::Setpgid { .. }
            | Syscall::Tcsetpgrp { .. } => "Process Management",
            Syscall::GetPid | Syscall::GetPPid | Syscall::GetCwd | Syscall::Chdir { .. } | Syscall::Getpgid { .. } => {
                "Process Metadata"
            }
            Syscall::Socket
            | Syscall::Bind { .. }
            | Syscall::GetSockName { .. }
            | Syscall::Listen { .. }
            | Syscall::Accept { .. }
            | Syscall::Connect { .. } => "Sockets",
            Syscall::Readdir { .. } | Syscall::Mkdir { .. } | Syscall::Rmdir { .. } => "Directory IO",
            Syscall::Open { .. }
            | Syscall::Close { .. }
            | Syscall::Read { .. }
            | Syscall::Pread { .. }
            | Syscall::Write { .. }
            | Syscall::Pwrite { .. }
            | Syscall::Seek { .. }
            | Syscall::Dup { .. }
            | Syscall::Dup2 { .. }
            | Syscall::Unlink { .. }
            | Syscall::Truncate { .. }
            | Syscall::Rename { .. }
            | Syscall::Fsync { .. }
            | Syscall::Poll { .. }
            | Syscall::SetFlags { .. }
            | Syscall::Ftruncate { .. }
            | Syscall::Sendfile { .. }
            | Syscall::Splice { .. } => "File IO",
            Syscall::RingSetup { .. } => "Syscall Rings",
            Syscall::Mmap { .. }
            | Syscall::Munmap { .. }
            | Syscall::Msync { .. }
            | Syscall::Mprotect { .. }
            | Syscall::ShmOpen { .. }
            | Syscall::ShmUnlink { .. }
            | Syscall::VmRead { .. }
            | Syscall::VmWrite { .. } => "Virtual Memory",
            Syscall::Stat { .. }
            | Syscall::Fstat { .. }
            | Syscall::Access { .. }
            | Syscall::Readlink { .. }
            | Syscall::Utimes { .. } => "File Metadata",
        }
    }

    /// Appends the call's wire encoding (opcode + fields) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Syscall::Spawn {
                path,
                args,
                env,
                cwd,
                stdio,
            } => {
                wire::put_u8(out, OP_SPAWN);
                wire::put_str(out, path);
                wire::put_u32(out, args.len() as u32);
                for arg in args {
                    wire::put_str(out, arg);
                }
                wire::put_u32(out, env.len() as u32);
                for (key, value) in env {
                    wire::put_str(out, key);
                    wire::put_str(out, value);
                }
                match cwd {
                    Some(cwd) => {
                        wire::put_bool(out, true);
                        wire::put_str(out, cwd);
                    }
                    None => wire::put_bool(out, false),
                }
                for slot in stdio {
                    match slot {
                        Some(fd) => {
                            wire::put_bool(out, true);
                            wire::put_i32(out, *fd);
                        }
                        None => wire::put_bool(out, false),
                    }
                }
            }
            Syscall::Fork { image, resume_point } => {
                wire::put_u8(out, OP_FORK);
                wire::put_bytes(out, image);
                wire::put_u64(out, *resume_point);
            }
            Syscall::Pipe2 => wire::put_u8(out, OP_PIPE2),
            Syscall::Wait4 { pid, options } => {
                wire::put_u8(out, OP_WAIT4);
                wire::put_i32(out, *pid);
                wire::put_u32(out, *options);
            }
            Syscall::Exit { code } => {
                wire::put_u8(out, OP_EXIT);
                wire::put_i32(out, *code);
            }
            Syscall::Kill { pid, signal } => {
                wire::put_u8(out, OP_KILL);
                wire::put_i32(out, *pid);
                wire::put_i32(out, signal.number());
            }
            Syscall::SignalAction { signal, action } => {
                wire::put_u8(out, OP_SIGACTION);
                wire::put_i32(out, signal.number());
                wire::put_u8(out, encode_sigaction(*action));
            }
            Syscall::Sigprocmask { how, mask } => {
                wire::put_u8(out, OP_SIGPROCMASK);
                wire::put_u32(out, *how);
                wire::put_u64(out, *mask);
            }
            Syscall::Setpgid { pid, pgid } => {
                wire::put_u8(out, OP_SETPGID);
                wire::put_u32(out, *pid);
                wire::put_u32(out, *pgid);
            }
            Syscall::Getpgid { pid } => {
                wire::put_u8(out, OP_GETPGID);
                wire::put_u32(out, *pid);
            }
            Syscall::Tcsetpgrp { pgid } => {
                wire::put_u8(out, OP_TCSETPGRP);
                wire::put_u32(out, *pgid);
            }
            Syscall::GetPid => wire::put_u8(out, OP_GETPID),
            Syscall::GetPPid => wire::put_u8(out, OP_GETPPID),
            Syscall::GetCwd => wire::put_u8(out, OP_GETCWD),
            Syscall::Chdir { path } => {
                wire::put_u8(out, OP_CHDIR);
                wire::put_str(out, path);
            }
            Syscall::Open { path, flags, mode } => {
                wire::put_u8(out, OP_OPEN);
                wire::put_str(out, path);
                wire::put_u32(out, flags.to_bits());
                wire::put_u32(out, *mode);
            }
            Syscall::Close { fd } => {
                wire::put_u8(out, OP_CLOSE);
                wire::put_i32(out, *fd);
            }
            Syscall::Read { fd, len } => {
                wire::put_u8(out, OP_READ);
                wire::put_i32(out, *fd);
                wire::put_u32(out, *len);
            }
            Syscall::Pread { fd, len, offset } => {
                wire::put_u8(out, OP_PREAD);
                wire::put_i32(out, *fd);
                wire::put_u32(out, *len);
                wire::put_u64(out, *offset);
            }
            Syscall::Write { fd, data } => {
                wire::put_u8(out, OP_WRITE);
                wire::put_i32(out, *fd);
                data.encode_into(out);
            }
            Syscall::Pwrite { fd, data, offset } => {
                wire::put_u8(out, OP_PWRITE);
                wire::put_i32(out, *fd);
                data.encode_into(out);
                wire::put_u64(out, *offset);
            }
            Syscall::Seek { fd, offset, whence } => {
                wire::put_u8(out, OP_SEEK);
                wire::put_i32(out, *fd);
                wire::put_i64(out, *offset);
                wire::put_u32(out, *whence);
            }
            Syscall::Dup { fd } => {
                wire::put_u8(out, OP_DUP);
                wire::put_i32(out, *fd);
            }
            Syscall::Dup2 { from, to } => {
                wire::put_u8(out, OP_DUP2);
                wire::put_i32(out, *from);
                wire::put_i32(out, *to);
            }
            Syscall::Unlink { path } => {
                wire::put_u8(out, OP_UNLINK);
                wire::put_str(out, path);
            }
            Syscall::Truncate { path, size } => {
                wire::put_u8(out, OP_TRUNCATE);
                wire::put_str(out, path);
                wire::put_u64(out, *size);
            }
            Syscall::Rename { from, to } => {
                wire::put_u8(out, OP_RENAME);
                wire::put_str(out, from);
                wire::put_str(out, to);
            }
            Syscall::Fsync { fd } => {
                wire::put_u8(out, OP_FSYNC);
                wire::put_i32(out, *fd);
            }
            Syscall::Poll { fds, timeout_ms } => {
                wire::put_u8(out, OP_POLL);
                wire::put_u32(out, fds.len() as u32);
                for req in fds {
                    wire::put_i32(out, req.fd);
                    wire::put_u16(out, req.events);
                }
                wire::put_i32(out, *timeout_ms);
            }
            Syscall::SetFlags { fd, flags } => {
                wire::put_u8(out, OP_SETFLAGS);
                wire::put_i32(out, *fd);
                wire::put_u32(out, *flags);
            }
            Syscall::Readdir { path } => {
                wire::put_u8(out, OP_READDIR);
                wire::put_str(out, path);
            }
            Syscall::Mkdir { path, mode } => {
                wire::put_u8(out, OP_MKDIR);
                wire::put_str(out, path);
                wire::put_u32(out, *mode);
            }
            Syscall::Rmdir { path } => {
                wire::put_u8(out, OP_RMDIR);
                wire::put_str(out, path);
            }
            Syscall::Stat { path, lstat } => {
                wire::put_u8(out, OP_STAT);
                wire::put_str(out, path);
                wire::put_bool(out, *lstat);
            }
            Syscall::Fstat { fd } => {
                wire::put_u8(out, OP_FSTAT);
                wire::put_i32(out, *fd);
            }
            Syscall::Access { path, mode } => {
                wire::put_u8(out, OP_ACCESS);
                wire::put_str(out, path);
                wire::put_u32(out, *mode);
            }
            Syscall::Readlink { path } => {
                wire::put_u8(out, OP_READLINK);
                wire::put_str(out, path);
            }
            Syscall::Utimes {
                path,
                atime_ms,
                mtime_ms,
            } => {
                wire::put_u8(out, OP_UTIMES);
                wire::put_str(out, path);
                wire::put_u64(out, *atime_ms);
                wire::put_u64(out, *mtime_ms);
            }
            Syscall::Socket => wire::put_u8(out, OP_SOCKET),
            Syscall::Bind { fd, port } => {
                wire::put_u8(out, OP_BIND);
                wire::put_i32(out, *fd);
                wire::put_u16(out, *port);
            }
            Syscall::GetSockName { fd } => {
                wire::put_u8(out, OP_GETSOCKNAME);
                wire::put_i32(out, *fd);
            }
            Syscall::Listen { fd, backlog } => {
                wire::put_u8(out, OP_LISTEN);
                wire::put_i32(out, *fd);
                wire::put_u32(out, *backlog);
            }
            Syscall::Accept { fd } => {
                wire::put_u8(out, OP_ACCEPT);
                wire::put_i32(out, *fd);
            }
            Syscall::Connect { fd, port } => {
                wire::put_u8(out, OP_CONNECT);
                wire::put_i32(out, *fd);
                wire::put_u16(out, *port);
            }
            Syscall::Ftruncate { fd, size } => {
                wire::put_u8(out, OP_FTRUNCATE);
                wire::put_i32(out, *fd);
                wire::put_u64(out, *size);
            }
            Syscall::Mmap {
                addr,
                len,
                prot,
                flags,
                fd,
                offset,
            } => {
                wire::put_u8(out, OP_MMAP);
                wire::put_u64(out, *addr);
                wire::put_u64(out, *len);
                wire::put_u32(out, *prot);
                wire::put_u32(out, *flags);
                wire::put_i32(out, *fd);
                wire::put_u64(out, *offset);
            }
            Syscall::Munmap { addr, len } => {
                wire::put_u8(out, OP_MUNMAP);
                wire::put_u64(out, *addr);
                wire::put_u64(out, *len);
            }
            Syscall::Msync { addr, len } => {
                wire::put_u8(out, OP_MSYNC);
                wire::put_u64(out, *addr);
                wire::put_u64(out, *len);
            }
            Syscall::Mprotect { addr, len, prot } => {
                wire::put_u8(out, OP_MPROTECT);
                wire::put_u64(out, *addr);
                wire::put_u64(out, *len);
                wire::put_u32(out, *prot);
            }
            Syscall::ShmOpen { name, flags, mode } => {
                wire::put_u8(out, OP_SHMOPEN);
                wire::put_str(out, name);
                wire::put_u32(out, *flags);
                wire::put_u32(out, *mode);
            }
            Syscall::ShmUnlink { name } => {
                wire::put_u8(out, OP_SHMUNLINK);
                wire::put_str(out, name);
            }
            Syscall::VmRead { addr, len } => {
                wire::put_u8(out, OP_VMREAD);
                wire::put_u64(out, *addr);
                wire::put_u32(out, *len);
            }
            Syscall::VmWrite { addr, data } => {
                wire::put_u8(out, OP_VMWRITE);
                wire::put_u64(out, *addr);
                data.encode_into(out);
            }
            Syscall::Sendfile {
                out_fd,
                in_fd,
                offset,
                len,
            } => {
                wire::put_u8(out, OP_SENDFILE);
                wire::put_i32(out, *out_fd);
                wire::put_i32(out, *in_fd);
                wire::put_i64(out, *offset);
                wire::put_u64(out, *len);
            }
            Syscall::Splice { fd_in, fd_out, len } => {
                wire::put_u8(out, OP_SPLICE);
                wire::put_i32(out, *fd_in);
                wire::put_i32(out, *fd_out);
                wire::put_u64(out, *len);
            }
            Syscall::RingSetup {
                sq_offset,
                cq_offset,
                slots,
                slot_bytes,
                buf_offset,
                buf_count,
                buf_bytes,
            } => {
                wire::put_u8(out, OP_RINGSETUP);
                wire::put_u32(out, *sq_offset);
                wire::put_u32(out, *cq_offset);
                wire::put_u32(out, *slots);
                wire::put_u32(out, *slot_bytes);
                wire::put_u32(out, *buf_offset);
                wire::put_u32(out, *buf_count);
                wire::put_u32(out, *buf_bytes);
            }
        }
    }

    /// Decodes one call from the reader, consuming exactly its encoding.
    ///
    /// Returns `None` if the frame is truncated or the opcode is unknown.
    pub fn decode_from(r: &mut Reader<'_>) -> Option<Syscall> {
        Some(match r.u8()? {
            OP_SPAWN => {
                let path = r.str()?.to_owned();
                let arg_count = r.u32()? as usize;
                let mut args = Vec::with_capacity(arg_count.min(1024));
                for _ in 0..arg_count {
                    args.push(r.str()?.to_owned());
                }
                let env_count = r.u32()? as usize;
                let mut env = Vec::with_capacity(env_count.min(1024));
                for _ in 0..env_count {
                    let key = r.str()?.to_owned();
                    let value = r.str()?.to_owned();
                    env.push((key, value));
                }
                let cwd = if r.bool()? { Some(r.str()?.to_owned()) } else { None };
                let mut stdio = [None; 3];
                for slot in stdio.iter_mut() {
                    if r.bool()? {
                        *slot = Some(r.i32()?);
                    }
                }
                Syscall::Spawn {
                    path,
                    args,
                    env,
                    cwd,
                    stdio,
                }
            }
            OP_FORK => Syscall::Fork {
                image: r.bytes()?.to_vec(),
                resume_point: r.u64()?,
            },
            OP_PIPE2 => Syscall::Pipe2,
            OP_WAIT4 => Syscall::Wait4 {
                pid: r.i32()?,
                options: r.u32()?,
            },
            OP_EXIT => Syscall::Exit { code: r.i32()? },
            OP_KILL => Syscall::Kill {
                pid: r.i32()?,
                signal: Signal::from_number(r.i32()?)?,
            },
            OP_SIGACTION => Syscall::SignalAction {
                signal: Signal::from_number(r.i32()?)?,
                action: decode_sigaction(r.u8()?)?,
            },
            OP_SIGPROCMASK => Syscall::Sigprocmask {
                how: r.u32()?,
                mask: r.u64()?,
            },
            OP_SETPGID => Syscall::Setpgid {
                pid: r.u32()?,
                pgid: r.u32()?,
            },
            OP_GETPGID => Syscall::Getpgid { pid: r.u32()? },
            OP_TCSETPGRP => Syscall::Tcsetpgrp { pgid: r.u32()? },
            OP_GETPID => Syscall::GetPid,
            OP_GETPPID => Syscall::GetPPid,
            OP_GETCWD => Syscall::GetCwd,
            OP_CHDIR => Syscall::Chdir {
                path: r.str()?.to_owned(),
            },
            OP_OPEN => Syscall::Open {
                path: r.str()?.to_owned(),
                flags: OpenFlags::from_bits(r.u32()?).ok()?,
                mode: r.u32()?,
            },
            OP_CLOSE => Syscall::Close { fd: r.i32()? },
            OP_READ => Syscall::Read {
                fd: r.i32()?,
                len: r.u32()?,
            },
            OP_PREAD => Syscall::Pread {
                fd: r.i32()?,
                len: r.u32()?,
                offset: r.u64()?,
            },
            OP_WRITE => Syscall::Write {
                fd: r.i32()?,
                data: ByteSource::decode_from(r)?,
            },
            OP_PWRITE => Syscall::Pwrite {
                fd: r.i32()?,
                data: ByteSource::decode_from(r)?,
                offset: r.u64()?,
            },
            OP_SEEK => Syscall::Seek {
                fd: r.i32()?,
                offset: r.i64()?,
                whence: r.u32()?,
            },
            OP_DUP => Syscall::Dup { fd: r.i32()? },
            OP_DUP2 => Syscall::Dup2 {
                from: r.i32()?,
                to: r.i32()?,
            },
            OP_UNLINK => Syscall::Unlink {
                path: r.str()?.to_owned(),
            },
            OP_TRUNCATE => Syscall::Truncate {
                path: r.str()?.to_owned(),
                size: r.u64()?,
            },
            OP_RENAME => Syscall::Rename {
                from: r.str()?.to_owned(),
                to: r.str()?.to_owned(),
            },
            OP_FSYNC => Syscall::Fsync { fd: r.i32()? },
            OP_POLL => {
                let count = r.u32()? as usize;
                let mut fds = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    fds.push(PollRequest {
                        fd: r.i32()?,
                        events: r.u16()?,
                    });
                }
                Syscall::Poll {
                    fds,
                    timeout_ms: r.i32()?,
                }
            }
            OP_SETFLAGS => Syscall::SetFlags {
                fd: r.i32()?,
                flags: r.u32()?,
            },
            OP_READDIR => Syscall::Readdir {
                path: r.str()?.to_owned(),
            },
            OP_MKDIR => Syscall::Mkdir {
                path: r.str()?.to_owned(),
                mode: r.u32()?,
            },
            OP_RMDIR => Syscall::Rmdir {
                path: r.str()?.to_owned(),
            },
            OP_STAT => Syscall::Stat {
                path: r.str()?.to_owned(),
                lstat: r.bool()?,
            },
            OP_FSTAT => Syscall::Fstat { fd: r.i32()? },
            OP_ACCESS => Syscall::Access {
                path: r.str()?.to_owned(),
                mode: r.u32()?,
            },
            OP_READLINK => Syscall::Readlink {
                path: r.str()?.to_owned(),
            },
            OP_UTIMES => Syscall::Utimes {
                path: r.str()?.to_owned(),
                atime_ms: r.u64()?,
                mtime_ms: r.u64()?,
            },
            OP_SOCKET => Syscall::Socket,
            OP_BIND => Syscall::Bind {
                fd: r.i32()?,
                port: r.u16()?,
            },
            OP_GETSOCKNAME => Syscall::GetSockName { fd: r.i32()? },
            OP_LISTEN => Syscall::Listen {
                fd: r.i32()?,
                backlog: r.u32()?,
            },
            OP_ACCEPT => Syscall::Accept { fd: r.i32()? },
            OP_CONNECT => Syscall::Connect {
                fd: r.i32()?,
                port: r.u16()?,
            },
            OP_FTRUNCATE => Syscall::Ftruncate {
                fd: r.i32()?,
                size: r.u64()?,
            },
            OP_MMAP => Syscall::Mmap {
                addr: r.u64()?,
                len: r.u64()?,
                prot: r.u32()?,
                flags: r.u32()?,
                fd: r.i32()?,
                offset: r.u64()?,
            },
            OP_MUNMAP => Syscall::Munmap {
                addr: r.u64()?,
                len: r.u64()?,
            },
            OP_MSYNC => Syscall::Msync {
                addr: r.u64()?,
                len: r.u64()?,
            },
            OP_MPROTECT => Syscall::Mprotect {
                addr: r.u64()?,
                len: r.u64()?,
                prot: r.u32()?,
            },
            OP_SHMOPEN => Syscall::ShmOpen {
                name: r.str()?.to_owned(),
                flags: r.u32()?,
                mode: r.u32()?,
            },
            OP_SHMUNLINK => Syscall::ShmUnlink {
                name: r.str()?.to_owned(),
            },
            OP_VMREAD => Syscall::VmRead {
                addr: r.u64()?,
                len: r.u32()?,
            },
            OP_VMWRITE => Syscall::VmWrite {
                addr: r.u64()?,
                data: ByteSource::decode_from(r)?,
            },
            OP_SENDFILE => Syscall::Sendfile {
                out_fd: r.i32()?,
                in_fd: r.i32()?,
                offset: r.i64()?,
                len: r.u64()?,
            },
            OP_SPLICE => Syscall::Splice {
                fd_in: r.i32()?,
                fd_out: r.i32()?,
                len: r.u64()?,
            },
            OP_RINGSETUP => Syscall::RingSetup {
                sq_offset: r.u32()?,
                cq_offset: r.u32()?,
                slots: r.u32()?,
                slot_bytes: r.u32()?,
                buf_offset: r.u32()?,
                buf_count: r.u32()?,
                buf_bytes: r.u32()?,
            },
            _ => return None,
        })
    }
}

/// An ordered set of system calls submitted to the kernel in one round trip.
///
/// The kernel dispatches entries in order against the same task state, so a
/// batch behaves exactly like the same calls issued back to back — it just
/// pays the transport cost once.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SyscallBatch {
    /// The calls, in submission order.
    pub entries: Vec<Syscall>,
}

impl SyscallBatch {
    /// An empty batch.
    pub fn new() -> SyscallBatch {
        SyscallBatch::default()
    }

    /// A batch holding a single call (the compatibility path for the old
    /// one-call-per-round-trip API).
    pub fn single(call: Syscall) -> SyscallBatch {
        SyscallBatch { entries: vec![call] }
    }

    /// Appends a call to the batch.
    pub fn push(&mut self, call: Syscall) {
        self.entries.push(call);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the batch as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 16);
        wire::put_u8(&mut out, BATCH_MAGIC);
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_u32(&mut out, self.entries.len() as u32);
        for entry in &self.entries {
            entry.encode_into(&mut out);
        }
        out
    }

    /// Decodes a wire frame back into a batch.
    ///
    /// Returns `None` on a bad magic/version byte, a truncated frame, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<SyscallBatch> {
        let mut r = Reader::new(bytes);
        if r.u8()? != BATCH_MAGIC || r.u8()? != WIRE_VERSION {
            return None;
        }
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            entries.push(Syscall::decode_from(&mut r)?);
        }
        if !r.is_empty() {
            return None;
        }
        Some(SyscallBatch { entries })
    }
}

impl From<Syscall> for SyscallBatch {
    fn from(call: Syscall) -> SyscallBatch {
        SyscallBatch::single(call)
    }
}

/// The result of one batch entry, tagged with the entry's index so blocked
/// entries can complete out of order.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Index of the entry within its submission batch.
    pub index: u32,
    /// The entry's result.
    pub result: SysResult,
}

/// Every completion for one submission batch, delivered to the process in a
/// single reply message (asynchronous convention) or a single shared-heap
/// write + notify (synchronous convention).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompletionBatch {
    /// The completions, in arbitrary order; receivers place each one by its
    /// entry index.
    pub completions: Vec<Completion>,
}

impl CompletionBatch {
    /// Encodes the batch as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.completions.len() * 16);
        wire::put_u8(&mut out, COMPLETION_MAGIC);
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_u32(&mut out, self.completions.len() as u32);
        for completion in &self.completions {
            wire::put_u32(&mut out, completion.index);
            completion.result.encode_into(&mut out);
        }
        out
    }

    /// Decodes a wire frame back into a completion batch.
    ///
    /// Returns `None` on a bad magic/version byte, a truncated frame, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<CompletionBatch> {
        let mut r = Reader::new(bytes);
        if r.u8()? != COMPLETION_MAGIC || r.u8()? != WIRE_VERSION {
            return None;
        }
        let count = r.u32()? as usize;
        let mut completions = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let index = r.u32()?;
            let result = SysResult::decode_from(&mut r)?;
            completions.push(Completion { index, result });
        }
        if !r.is_empty() {
            return None;
        }
        Some(CompletionBatch { completions })
    }
}

/// The result of a system call.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a SysResult may carry an errno that should not be silently dropped"]
pub enum SysResult {
    /// Success with no interesting value.
    Ok,
    /// A scalar result (descriptor, byte count, pid, offset...).
    Int(i64),
    /// A pair of scalars (`pipe2` returns the read and write descriptors).
    Pair(i64, i64),
    /// Bytes read.
    Data(Vec<u8>),
    /// A path (`getcwd`, `readlink`).
    Path(String),
    /// File metadata (`stat` family).
    Stat(Metadata),
    /// Directory entries (`getdents`).
    Entries(Vec<DirEntry>),
    /// A reaped child and its wait status (`wait4`).
    Wait {
        /// The reaped child's pid (0 when `WNOHANG` found nothing).
        pid: Pid,
        /// The encoded wait status.
        status: i32,
    },
    /// Readiness report for a `poll`: one `revents` word per submitted
    /// descriptor, in submission order (all zero on timeout).
    Poll(Vec<u16>),
    /// Bytes read, parked in registered buffer `buf` of the submitter's ring
    /// rather than copied into the completion entry.  The client reads the
    /// bytes out, releases the buffer, and surfaces a plain [`SysResult::Data`]
    /// to callers; it never appears outside the ring transport.
    DataFixed {
        /// Index of the registered buffer holding the bytes.
        buf: u32,
        /// Number of valid bytes in the buffer.
        len: u32,
    },
    /// Failure.
    Err(Errno),
}

// Result tags (the numbering predates batching and is kept stable).
const RES_OK: u8 = 0;
const RES_INT: u8 = 1;
const RES_PAIR: u8 = 2;
const RES_DATA: u8 = 3;
const RES_PATH: u8 = 4;
const RES_STAT: u8 = 5;
const RES_ENTRIES: u8 = 6;
const RES_WAIT: u8 = 7;
const RES_POLL: u8 = 8;
const RES_DATA_FIXED: u8 = 9;
const RES_ERR: u8 = 255;

impl SysResult {
    /// Whether this is an error result.
    pub fn is_err(&self) -> bool {
        matches!(self, SysResult::Err(_))
    }

    /// Converts into a `Result`, mapping every success variant to itself.
    ///
    /// # Errors
    ///
    /// Returns the contained [`Errno`] for [`SysResult::Err`].
    pub fn into_result(self) -> Result<SysResult, Errno> {
        match self {
            SysResult::Err(errno) => Err(errno),
            other => Ok(other),
        }
    }

    /// The scalar payload of an `Int` (or the errno-style negative value of an
    /// error), mirroring the raw Linux ABI return convention.
    pub fn as_linux_return(&self) -> i64 {
        match self {
            SysResult::Ok => 0,
            SysResult::Int(v) => *v,
            SysResult::Pair(a, _) => *a,
            SysResult::Data(data) => data.len() as i64,
            SysResult::Path(path) => path.len() as i64,
            SysResult::Stat(_) => 0,
            SysResult::Entries(entries) => entries.len() as i64,
            SysResult::Wait { pid, .. } => *pid as i64,
            SysResult::Poll(revents) => revents.iter().filter(|&&r| r != 0).count() as i64,
            SysResult::DataFixed { len, .. } => *len as i64,
            SysResult::Err(errno) => errno.as_syscall_return(),
        }
    }

    /// Appends the result's wire encoding (tag + payload) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            SysResult::Ok => wire::put_u8(out, RES_OK),
            SysResult::Int(v) => {
                wire::put_u8(out, RES_INT);
                wire::put_i64(out, *v);
            }
            SysResult::Pair(a, b) => {
                wire::put_u8(out, RES_PAIR);
                wire::put_i64(out, *a);
                wire::put_i64(out, *b);
            }
            SysResult::Data(data) => {
                wire::put_u8(out, RES_DATA);
                wire::put_bytes(out, data);
            }
            SysResult::Path(path) => {
                wire::put_u8(out, RES_PATH);
                wire::put_str(out, path);
            }
            SysResult::Stat(meta) => {
                wire::put_u8(out, RES_STAT);
                wire::put_u64(out, meta.size);
                wire::put_u32(out, meta.mode);
                wire::put_u64(out, meta.mtime_ms);
                wire::put_u64(out, meta.atime_ms);
                wire::put_bool(out, meta.is_dir());
            }
            SysResult::Entries(entries) => {
                wire::put_u8(out, RES_ENTRIES);
                wire::put_u32(out, entries.len() as u32);
                for entry in entries {
                    wire::put_bool(out, entry.file_type == FileType::Directory);
                    wire::put_str(out, &entry.name);
                }
            }
            SysResult::Wait { pid, status } => {
                wire::put_u8(out, RES_WAIT);
                wire::put_u32(out, *pid);
                wire::put_i32(out, *status);
            }
            SysResult::Poll(revents) => {
                wire::put_u8(out, RES_POLL);
                wire::put_u32(out, revents.len() as u32);
                for r in revents {
                    wire::put_u16(out, *r);
                }
            }
            SysResult::DataFixed { buf, len } => {
                wire::put_u8(out, RES_DATA_FIXED);
                wire::put_u32(out, *buf);
                wire::put_u32(out, *len);
            }
            SysResult::Err(errno) => {
                wire::put_u8(out, RES_ERR);
                wire::put_i32(out, errno.code());
            }
        }
    }

    /// Decodes one result from the reader, consuming exactly its encoding.
    ///
    /// Returns `None` if the frame is truncated or the tag is unknown.
    pub fn decode_from(r: &mut Reader<'_>) -> Option<SysResult> {
        Some(match r.u8()? {
            RES_OK => SysResult::Ok,
            RES_INT => SysResult::Int(r.i64()?),
            RES_PAIR => SysResult::Pair(r.i64()?, r.i64()?),
            RES_DATA => SysResult::Data(r.bytes()?.to_vec()),
            RES_PATH => SysResult::Path(r.str()?.to_owned()),
            RES_STAT => {
                let size = r.u64()?;
                let mode = r.u32()?;
                let mtime_ms = r.u64()?;
                let atime_ms = r.u64()?;
                let is_dir = r.bool()?;
                SysResult::Stat(Metadata {
                    file_type: if is_dir { FileType::Directory } else { FileType::Regular },
                    size,
                    mode,
                    mtime_ms,
                    atime_ms,
                })
            }
            RES_ENTRIES => {
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let is_dir = r.bool()?;
                    let name = r.str()?.to_owned();
                    entries.push(DirEntry {
                        name,
                        file_type: if is_dir { FileType::Directory } else { FileType::Regular },
                    });
                }
                SysResult::Entries(entries)
            }
            RES_WAIT => SysResult::Wait {
                pid: r.u32()?,
                status: r.i32()?,
            },
            RES_POLL => {
                let count = r.u32()? as usize;
                let mut revents = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    revents.push(r.u16()?);
                }
                SysResult::Poll(revents)
            }
            RES_DATA_FIXED => SysResult::DataFixed {
                buf: r.u32()?,
                len: r.u32()?,
            },
            RES_ERR => SysResult::Err(Errno::from_code(r.i32()?)?),
            _ => return None,
        })
    }
}

impl From<Result<SysResult, Errno>> for SysResult {
    fn from(value: Result<SysResult, Errno>) -> Self {
        match value {
            Ok(result) => result,
            Err(errno) => SysResult::Err(errno),
        }
    }
}

/// How a submission batch travelled from the process to the kernel.
///
/// Both variants carry the same wire frame (an encoded [`SyscallBatch`]);
/// they differ only in how the frame crossed the worker boundary and how the
/// completion batch must be delivered back, which is what lets the kernel
/// run one code path for both conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum Transport {
    /// Asynchronous convention: the frame was structured-clone copied inside
    /// a message, and the reply must be a message carrying `seq`.
    Async {
        /// Per-process sequence number used to match responses.
        seq: u64,
        /// The encoded submission batch.
        payload: Vec<u8>,
    },
    /// Synchronous convention: the frame sits in the process's shared heap
    /// (carried here by value in the simulation); the reply is written into
    /// the shared heap and the process woken with `Atomics.notify`.
    Sync {
        /// The encoded submission batch.
        payload: Vec<u8>,
    },
}

impl Transport {
    /// Whether this is the synchronous (shared-memory) convention.
    pub fn is_sync(&self) -> bool {
        matches!(self, Transport::Sync { .. })
    }

    /// The size of the encoded submission frame in bytes.
    pub fn payload_len(&self) -> usize {
        match self {
            Transport::Async { payload, .. } | Transport::Sync { payload } => payload.len(),
        }
    }

    /// Decodes the submission batch carried by either convention.
    pub fn decode_batch(&self) -> Option<SyscallBatch> {
        match self {
            Transport::Async { payload, .. } | Transport::Sync { payload } => SyscallBatch::decode(payload),
        }
    }
}

/// Wire encoding of a [`SigAction`] (one byte).
fn encode_sigaction(action: SigAction) -> u8 {
    match action {
        SigAction::Default => 0,
        SigAction::Ignore => 1,
        SigAction::Handler { restart: false } => 2,
        SigAction::Handler { restart: true } => 3,
    }
}

fn decode_sigaction(byte: u8) -> Option<SigAction> {
    Some(match byte {
        0 => SigAction::Default,
        1 => SigAction::Ignore,
        2 => SigAction::Handler { restart: false },
        3 => SigAction::Handler { restart: true },
        _ => return None,
    })
}

/// Encodes an exit code / terminating signal into a Linux-style wait status.
pub fn encode_wait_status(exit_code: Option<i32>, signal: Option<Signal>) -> i32 {
    match (exit_code, signal) {
        (_, Some(sig)) => sig.termination_status(),
        (Some(code), None) => (code & 0xff) << 8,
        (None, None) => 0,
    }
}

/// Encodes a "stopped by signal" wait status (`WUNTRACED` reporting), using
/// the Linux layout: low byte `0x7f`, stop signal in the next byte.
pub fn encode_stop_status(signal: Signal) -> i32 {
    (signal.number() << 8) | 0x7f
}

/// Extracts the exit code from a wait status, if the child exited normally.
pub fn wait_status_exit_code(status: i32) -> Option<i32> {
    if status & 0x7f == 0 {
        Some((status >> 8) & 0xff)
    } else {
        None
    }
}

/// Extracts the terminating signal from a wait status, if any.
pub fn wait_status_signal(status: i32) -> Option<Signal> {
    if status & 0xff == 0x7f {
        // Stopped, not terminated.
        return None;
    }
    let sig = status & 0x7f;
    if sig != 0 {
        Signal::from_number(sig)
    } else {
        None
    }
}

/// Extracts the stop signal from a wait status, if the child is stopped.
pub fn wait_status_stop_signal(status: i32) -> Option<Signal> {
    if status & 0xff == 0x7f {
        Signal::from_number((status >> 8) & 0xff)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every call variant (including both `stat` spellings).
    /// The exhaustive randomized round-trips live in the workspace-level
    /// property tests; this is the deterministic anchor.
    pub(crate) fn sample_calls() -> Vec<Syscall> {
        vec![
            Syscall::Spawn {
                path: "/usr/bin/pdflatex".into(),
                args: vec!["pdflatex".into(), "main.tex".into()],
                env: vec![("HOME".into(), "/home".into())],
                cwd: Some("/home".into()),
                stdio: [None, Some(4), Some(5)],
            },
            Syscall::Fork {
                image: vec![1, 2, 3],
                resume_point: 42,
            },
            Syscall::Pipe2,
            Syscall::Wait4 { pid: -1, options: 1 },
            Syscall::Exit { code: 3 },
            Syscall::Kill {
                pid: 7,
                signal: Signal::SIGTERM,
            },
            Syscall::Kill {
                pid: -5,
                signal: Signal::SIGINT,
            },
            Syscall::SignalAction {
                signal: Signal::SIGCHLD,
                action: SigAction::Handler { restart: false },
            },
            Syscall::SignalAction {
                signal: Signal::SIGINT,
                action: SigAction::Handler { restart: true },
            },
            Syscall::SignalAction {
                signal: Signal::SIGTTIN,
                action: SigAction::Ignore,
            },
            Syscall::Sigprocmask {
                how: crate::signals::SIG_BLOCK,
                mask: 0x4200,
            },
            Syscall::Setpgid { pid: 3, pgid: 3 },
            Syscall::Getpgid { pid: 0 },
            Syscall::Tcsetpgrp { pgid: 3 },
            Syscall::GetPid,
            Syscall::GetPPid,
            Syscall::GetCwd,
            Syscall::Chdir { path: "/tmp".into() },
            Syscall::Open {
                path: "/etc/passwd".into(),
                flags: OpenFlags::read_only(),
                mode: 0,
            },
            Syscall::Close { fd: 3 },
            Syscall::Read { fd: 3, len: 4096 },
            Syscall::Pread {
                fd: 3,
                len: 16,
                offset: 100,
            },
            Syscall::Write {
                fd: 1,
                data: ByteSource::Inline(b"hello".to_vec()),
            },
            Syscall::Pwrite {
                fd: 1,
                data: ByteSource::SharedHeap { offset: 64, len: 10 },
                offset: 0,
            },
            Syscall::Seek {
                fd: 3,
                offset: -10,
                whence: 2,
            },
            Syscall::Dup { fd: 1 },
            Syscall::Dup2 { from: 4, to: 1 },
            Syscall::Unlink { path: "/tmp/x".into() },
            Syscall::Truncate {
                path: "/tmp/x".into(),
                size: 10,
            },
            Syscall::Rename {
                from: "/a".into(),
                to: "/b".into(),
            },
            Syscall::Fsync { fd: 3 },
            Syscall::Poll {
                fds: vec![
                    PollRequest { fd: 3, events: POLLIN },
                    PollRequest {
                        fd: 5,
                        events: POLLIN | POLLOUT,
                    },
                ],
                timeout_ms: -1,
            },
            Syscall::Poll {
                fds: Vec::new(),
                timeout_ms: 250,
            },
            Syscall::SetFlags { fd: 4, flags: NONBLOCK },
            Syscall::Readdir {
                path: "/usr/bin".into(),
            },
            Syscall::Mkdir {
                path: "/tmp/d".into(),
                mode: 0o755,
            },
            Syscall::Rmdir { path: "/tmp/d".into() },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: false,
            },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: true,
            },
            Syscall::Fstat { fd: 0 },
            Syscall::Access {
                path: "/bin/sh".into(),
                mode: 1,
            },
            Syscall::Readlink {
                path: "/proc/self".into(),
            },
            Syscall::Utimes {
                path: "/tmp/x".into(),
                atime_ms: 1,
                mtime_ms: 2,
            },
            Syscall::Socket,
            Syscall::Bind { fd: 3, port: 8080 },
            Syscall::GetSockName { fd: 3 },
            Syscall::Listen { fd: 3, backlog: 16 },
            Syscall::Accept { fd: 3 },
            Syscall::Connect { fd: 4, port: 8080 },
            Syscall::Ftruncate { fd: 5, size: 8192 },
            Syscall::Mmap {
                addr: 0,
                len: 1 << 20,
                prot: 3,
                flags: 0x22,
                fd: -1,
                offset: 0,
            },
            Syscall::Mmap {
                addr: 0x2000_0000,
                len: 4096,
                prot: 1,
                flags: 1,
                fd: 5,
                offset: 4096,
            },
            Syscall::Munmap {
                addr: 0x1000_0000,
                len: 1 << 20,
            },
            Syscall::Msync {
                addr: 0x2000_0000,
                len: 0,
            },
            Syscall::Mprotect {
                addr: 0x1000_0000,
                len: 4096,
                prot: 1,
            },
            Syscall::ShmOpen {
                name: "/ring".into(),
                flags: OpenFlags {
                    create: true,
                    ..OpenFlags::read_write()
                }
                .to_bits(),
                mode: 0o600,
            },
            Syscall::ShmUnlink { name: "/ring".into() },
            Syscall::VmRead {
                addr: 0x1000_0040,
                len: 64,
            },
            Syscall::VmWrite {
                addr: 0x1000_0040,
                data: ByteSource::Inline(b"cow me".to_vec()),
            },
            Syscall::VmWrite {
                addr: 0x1000_0080,
                data: ByteSource::SharedHeap { offset: 128, len: 32 },
            },
            Syscall::Sendfile {
                out_fd: 4,
                in_fd: 3,
                offset: -1,
                len: 1 << 20,
            },
            Syscall::Sendfile {
                out_fd: 5,
                in_fd: 3,
                offset: 8192,
                len: 4096,
            },
            Syscall::Splice {
                fd_in: 3,
                fd_out: 4,
                len: 65536,
            },
            Syscall::RingSetup {
                sq_offset: 512 * 1024,
                cq_offset: 512 * 1024 + 16 + 64 * 256,
                slots: 64,
                slot_bytes: 256,
                buf_offset: 512 * 1024 + 2 * (16 + 64 * 256),
                buf_count: 7,
                buf_bytes: 64 * 1024,
            },
        ]
    }

    fn sample_results() -> Vec<SysResult> {
        vec![
            SysResult::Ok,
            SysResult::Int(42),
            SysResult::Int(-1),
            SysResult::Pair(3, 4),
            SysResult::Data(vec![0, 1, 2, 250]),
            SysResult::Path("/home/user".into()),
            SysResult::Stat(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o755,
                mtime_ms: 1234,
                atime_ms: 5678,
            }),
            SysResult::Entries(vec![DirEntry::file("a.txt"), DirEntry::dir("sub")]),
            SysResult::Wait { pid: 9, status: 256 },
            SysResult::Poll(vec![POLLIN, 0, POLLOUT | POLLHUP]),
            SysResult::Poll(Vec::new()),
            SysResult::DataFixed { buf: 3, len: 4096 },
            SysResult::Err(Errno::ENOENT),
        ]
    }

    #[test]
    fn every_syscall_round_trips_through_the_wire_codec() {
        for call in sample_calls() {
            let mut out = Vec::new();
            call.encode_into(&mut out);
            let mut r = Reader::new(&out);
            let decoded = Syscall::decode_from(&mut r).unwrap_or_else(|| panic!("{}", call.name()));
            assert_eq!(decoded, call, "{}", call.name());
            assert!(r.is_empty(), "{} left trailing bytes", call.name());
        }
    }

    #[test]
    fn whole_batches_round_trip() {
        let batch = SyscallBatch {
            entries: sample_calls(),
        };
        let encoded = batch.encode();
        assert_eq!(SyscallBatch::decode(&encoded).unwrap(), batch);

        let empty = SyscallBatch::new();
        assert!(empty.is_empty());
        assert_eq!(SyscallBatch::decode(&empty.encode()).unwrap().len(), 0);

        let single: SyscallBatch = Syscall::GetPid.into();
        assert_eq!(single.len(), 1);
        assert_eq!(SyscallBatch::decode(&single.encode()).unwrap(), single);
    }

    #[test]
    fn completion_batches_round_trip() {
        let batch = CompletionBatch {
            completions: sample_results()
                .into_iter()
                .enumerate()
                .map(|(index, result)| Completion {
                    index: index as u32,
                    result,
                })
                .collect(),
        };
        let encoded = batch.encode();
        assert_eq!(CompletionBatch::decode(&encoded).unwrap(), batch);
    }

    #[test]
    fn figure3_classes_are_covered() {
        let classes: std::collections::HashSet<&str> = sample_calls().iter().map(|c| c.class()).collect();
        for expected in [
            "Process Management",
            "Process Metadata",
            "Sockets",
            "Directory IO",
            "File IO",
            "File Metadata",
        ] {
            assert!(classes.contains(expected), "missing class {expected}");
        }
    }

    #[test]
    fn names_are_unique_per_variant_shape() {
        let names: Vec<&str> = sample_calls().iter().map(|c| c.name()).collect();
        // `stat`/`lstat` intentionally share a variant, and the sample set
        // carries two `poll` shapes (fd list and empty), two `kill` shapes
        // (process and group), three `sigaction` shapes, two `mmap` shapes
        // (anonymous and file-backed), two `vm_write` shapes (inline and
        // shared-heap) and two `sendfile` shapes (cursor and explicit
        // offset); all others unique.
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert!(unique.len() >= names.len() - 8);
    }

    #[test]
    fn malformed_frames_return_none() {
        assert_eq!(SyscallBatch::decode(&[]), None);
        assert_eq!(SyscallBatch::decode(&[0x42]), None);
        assert_eq!(
            SyscallBatch::decode(&[0x99, WIRE_VERSION, 0, 0, 0, 0]),
            None,
            "bad magic"
        );
        assert_eq!(SyscallBatch::decode(&[0x42, 99, 0, 0, 0, 0]), None, "bad version");
        // Count says one entry but the frame ends.
        assert_eq!(SyscallBatch::decode(&[0x42, WIRE_VERSION, 1, 0, 0, 0]), None);
        // Unknown opcode.
        assert_eq!(SyscallBatch::decode(&[0x42, WIRE_VERSION, 1, 0, 0, 0, 250]), None);
        // Trailing garbage after a valid batch.
        let mut ok = SyscallBatch::single(Syscall::GetPid).encode();
        ok.push(0);
        assert_eq!(SyscallBatch::decode(&ok), None);

        assert_eq!(CompletionBatch::decode(&[]), None);
        assert_eq!(CompletionBatch::decode(&[0x43, WIRE_VERSION, 1, 0, 0, 0]), None);
        // Unknown result tag.
        let mut r = Reader::new(&[99]);
        assert_eq!(SysResult::decode_from(&mut r), None);
        // Truncated data payload.
        let mut r = Reader::new(&[RES_DATA, 255, 255, 255, 255]);
        assert_eq!(SysResult::decode_from(&mut r), None);
    }

    #[test]
    fn transports_share_the_codec() {
        let batch = SyscallBatch {
            entries: vec![Syscall::GetPid, Syscall::Pipe2],
        };
        let payload = batch.encode();
        let on_message = Transport::Async {
            seq: 9,
            payload: payload.clone(),
        };
        let on_shared_heap = Transport::Sync { payload };
        assert!(!on_message.is_sync());
        assert!(on_shared_heap.is_sync());
        assert_eq!(on_message.payload_len(), on_shared_heap.payload_len());
        assert_eq!(on_message.decode_batch().unwrap(), batch);
        assert_eq!(on_shared_heap.decode_batch().unwrap(), batch);
    }

    #[test]
    fn linux_return_convention() {
        assert_eq!(SysResult::Ok.as_linux_return(), 0);
        assert_eq!(SysResult::Int(7).as_linux_return(), 7);
        assert_eq!(SysResult::Err(Errno::ENOENT).as_linux_return(), -2);
        assert_eq!(SysResult::Data(vec![1, 2, 3]).as_linux_return(), 3);
        assert!(SysResult::Err(Errno::EBADF).is_err());
        assert!(SysResult::Int(0).into_result().is_ok());
        assert_eq!(SysResult::Err(Errno::EBADF).into_result(), Err(Errno::EBADF));
    }

    #[test]
    fn wait_status_encoding() {
        let exited = encode_wait_status(Some(3), None);
        assert_eq!(wait_status_exit_code(exited), Some(3));
        assert_eq!(wait_status_signal(exited), None);
        assert_eq!(wait_status_stop_signal(exited), None);

        let killed = encode_wait_status(None, Some(Signal::SIGKILL));
        assert_eq!(wait_status_exit_code(killed), None);
        assert_eq!(wait_status_signal(killed), Some(Signal::SIGKILL));
        assert_eq!(wait_status_stop_signal(killed), None);

        let stopped = encode_stop_status(Signal::SIGTSTP);
        assert_eq!(wait_status_exit_code(stopped), None);
        assert_eq!(wait_status_signal(stopped), None);
        assert_eq!(wait_status_stop_signal(stopped), Some(Signal::SIGTSTP));
    }

    #[test]
    fn sigaction_byte_round_trips() {
        for action in [
            SigAction::Default,
            SigAction::Ignore,
            SigAction::Handler { restart: false },
            SigAction::Handler { restart: true },
        ] {
            assert_eq!(decode_sigaction(encode_sigaction(action)), Some(action));
        }
        assert_eq!(decode_sigaction(9), None);
    }

    #[test]
    fn byte_source_length() {
        assert_eq!(ByteSource::Inline(vec![1, 2, 3]).len(), 3);
        assert!(ByteSource::Inline(vec![]).is_empty());
        assert_eq!(ByteSource::SharedHeap { offset: 0, len: 10 }.len(), 10);
        assert!(!ByteSource::SharedHeap { offset: 0, len: 10 }.is_empty());
    }

    #[test]
    fn shared_heap_writes_encode_small() {
        // The asynchronous convention pays a copy cost proportional to the
        // payload; a shared-heap reference stays tiny on the wire.
        let big = SyscallBatch::single(Syscall::Write {
            fd: 1,
            data: ByteSource::Inline(vec![0u8; 4096]),
        });
        let small = SyscallBatch::single(Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 0, len: 4096 },
        });
        assert!(big.encode().len() > 4096);
        assert!(small.encode().len() < 64);
    }

    #[test]
    fn batching_amortizes_the_frame_header() {
        // 64 writes in one batch encode smaller than 64 one-call batches.
        let call = Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 0, len: 64 },
        };
        let mut batch = SyscallBatch::new();
        for _ in 0..64 {
            batch.push(call.clone());
        }
        let batched = batch.encode().len();
        let per_call = SyscallBatch::single(call).encode().len() * 64;
        assert!(batched < per_call);
    }
}
