//! The system-call ABI: call and result types, submission/completion batches,
//! and the single wire codec shared by both transport conventions.
//!
//! A process never sends one system call at a time; it submits a
//! [`SyscallBatch`] and receives a [`CompletionBatch`] holding one
//! [`Completion`] per entry.  Both frames are encoded with the compact,
//! self-describing wire codec in this module (built on [`crate::wire`]) —
//! the **only** encoder/decoder in the system:
//!
//! * **asynchronous convention** — the encoded submission travels to the
//!   kernel as a byte buffer inside a structured-clone message (paying the
//!   clone cost once per batch instead of once per call), and the encoded
//!   completion batch comes back the same way.
//! * **synchronous convention** — the submission crosses in a tiny integer
//!   message while bulk data sits in the process's `SharedArrayBuffer`; the
//!   kernel writes the *same* encoded completion-batch frame into the shared
//!   heap and wakes the process with `Atomics.notify`.
//!
//! Wire format, all integers little-endian, strings and buffers
//! `u32`-length-prefixed:
//!
//! ```text
//! submission  := 0x42 'B' | version u8 | count u32 | entry*
//! entry       := opcode u8 | fields (fixed order per opcode)
//! completion  := 0x43 'C' | version u8 | count u32 | (index u32 | result)*
//! result      := tag u8 | payload
//! ```
//!
//! Entries that cannot finish immediately peel off into the kernel's pending
//! list individually; the kernel delivers the completion batch once — a
//! single reply message or a single shared-heap write + notify — when every
//! entry has completed.
//!
//! The [`Syscall`] and [`SysResult`] enums and their codec are generated
//! from `abi/syscalls.abi` by `browsix-abigen` (see `docs/ABI.md`); the
//! golden corpus in `abi/golden_corpus.txt` pins every layout byte for byte.
//!
//! # Example
//!
//! The codec round-trips every call and result shape exactly:
//!
//! ```
//! use browsix_core::{Syscall, SysResult, SyscallBatch};
//!
//! let batch = SyscallBatch {
//!     entries: vec![
//!         Syscall::GetPid,
//!         Syscall::Read { fd: 3, len: 4096 },
//!     ],
//! };
//! let decoded = SyscallBatch::decode(&batch.encode()).unwrap();
//! assert_eq!(decoded, batch);
//!
//! // Truncated or corrupt frames decode to `None`, never panic.
//! assert_eq!(SyscallBatch::decode(&batch.encode()[..5]), None);
//! ```

use browsix_fs::{DirEntry, Errno, FileType, Metadata, OpenFlags};

use crate::signals::{SigAction, Signal};
use crate::task::Pid;
use crate::wire::{self, Reader};

/// Frame marker for an encoded [`SyscallBatch`].
const BATCH_MAGIC: u8 = 0x42;
/// Frame marker for an encoded [`CompletionBatch`].
const COMPLETION_MAGIC: u8 = 0x43;
/// Codec version, bumped on incompatible layout changes.
const WIRE_VERSION: u8 = 1;

// Poll event bits, matching the Linux `poll(2)` ABI.  `events` is what the
// caller asks about; `revents` is what the kernel reports.  `POLLERR`,
// `POLLHUP` and `POLLNVAL` are always reported, whether requested or not.

/// There is data to read (or the stream is at EOF, so a read returns now).
pub const POLLIN: u16 = 0x001;
/// Writing now will not block (or will fail immediately with EPIPE).
pub const POLLOUT: u16 = 0x004;
/// Error condition (for streams: the read side is gone, writes raise EPIPE).
pub const POLLERR: u16 = 0x008;
/// Hang-up: the peer closed its end of the stream.
pub const POLLHUP: u16 = 0x010;
/// The descriptor is not open.
pub const POLLNVAL: u16 = 0x020;

/// Status-flag bit for [`Syscall::SetFlags`]: `O_NONBLOCK`.  Reads, writes
/// and accepts on a non-blocking description return `EAGAIN` instead of
/// parking on a wait queue.
pub const NONBLOCK: u32 = 0x1;

/// `wait4` option bit: return immediately when no child has changed state.
pub const WNOHANG: u32 = 1;
/// `wait4` option bit: also report children stopped by a job-control signal
/// (each stop is reported once).
pub const WUNTRACED: u32 = 2;

/// One descriptor's entry in a [`Syscall::Poll`] submission: which fd, and
/// which readiness events the caller is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollRequest {
    /// Descriptor to query.
    pub fd: i32,
    /// Requested event mask (`POLLIN` | `POLLOUT`).
    pub events: u16,
}

/// A source of bytes for data-carrying system calls (`write`, `pwrite`).
///
/// The asynchronous convention inlines the bytes into the submission frame
/// (and pays the structured-clone cost); the synchronous convention passes an
/// offset into the process's shared heap and the kernel reads the bytes
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteSource {
    /// Bytes carried inside the submission frame.
    Inline(Vec<u8>),
    /// Bytes already present in the process's shared heap.
    SharedHeap {
        /// Byte offset within the shared heap.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
}

impl ByteSource {
    /// The number of bytes this source refers to.
    pub fn len(&self) -> usize {
        match self {
            ByteSource::Inline(data) => data.len(),
            ByteSource::SharedHeap { len, .. } => *len as usize,
        }
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ByteSource::Inline(data) => {
                wire::put_u8(out, 0);
                wire::put_bytes(out, data);
            }
            ByteSource::SharedHeap { offset, len } => {
                wire::put_u8(out, 1);
                wire::put_u32(out, *offset);
                wire::put_u32(out, *len);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Option<ByteSource> {
        match r.u8()? {
            0 => Some(ByteSource::Inline(r.bytes()?.to_vec())),
            1 => Some(ByteSource::SharedHeap {
                offset: r.u32()?,
                len: r.u32()?,
            }),
            _ => None,
        }
    }
}

include!(concat!(env!("OUT_DIR"), "/syscall_gen.rs"));

/// An ordered set of system calls submitted to the kernel in one round trip.
///
/// The kernel dispatches entries in order against the same task state, so a
/// batch behaves exactly like the same calls issued back to back — it just
/// pays the transport cost once.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SyscallBatch {
    /// The calls, in submission order.
    pub entries: Vec<Syscall>,
}

impl SyscallBatch {
    /// An empty batch.
    pub fn new() -> SyscallBatch {
        SyscallBatch::default()
    }

    /// A batch holding a single call (the compatibility path for the old
    /// one-call-per-round-trip API).
    pub fn single(call: Syscall) -> SyscallBatch {
        SyscallBatch { entries: vec![call] }
    }

    /// Appends a call to the batch.
    pub fn push(&mut self, call: Syscall) {
        self.entries.push(call);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the batch as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 16);
        wire::put_u8(&mut out, BATCH_MAGIC);
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_u32(&mut out, self.entries.len() as u32);
        for entry in &self.entries {
            entry.encode_into(&mut out);
        }
        out
    }

    /// Decodes a wire frame back into a batch.
    ///
    /// Returns `None` on a bad magic/version byte, a truncated frame, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<SyscallBatch> {
        let mut r = Reader::new(bytes);
        if r.u8()? != BATCH_MAGIC || r.u8()? != WIRE_VERSION {
            return None;
        }
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            entries.push(Syscall::decode_from(&mut r)?);
        }
        if !r.is_empty() {
            return None;
        }
        Some(SyscallBatch { entries })
    }
}

impl From<Syscall> for SyscallBatch {
    fn from(call: Syscall) -> SyscallBatch {
        SyscallBatch::single(call)
    }
}

/// The result of one batch entry, tagged with the entry's index so blocked
/// entries can complete out of order.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Index of the entry within its submission batch.
    pub index: u32,
    /// The entry's result.
    pub result: SysResult,
}

/// Every completion for one submission batch, delivered to the process in a
/// single reply message (asynchronous convention) or a single shared-heap
/// write + notify (synchronous convention).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompletionBatch {
    /// The completions, in arbitrary order; receivers place each one by its
    /// entry index.
    pub completions: Vec<Completion>,
}

impl CompletionBatch {
    /// Encodes the batch as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.completions.len() * 16);
        wire::put_u8(&mut out, COMPLETION_MAGIC);
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_u32(&mut out, self.completions.len() as u32);
        for completion in &self.completions {
            wire::put_u32(&mut out, completion.index);
            completion.result.encode_into(&mut out);
        }
        out
    }

    /// Decodes a wire frame back into a completion batch.
    ///
    /// Returns `None` on a bad magic/version byte, a truncated frame, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<CompletionBatch> {
        let mut r = Reader::new(bytes);
        if r.u8()? != COMPLETION_MAGIC || r.u8()? != WIRE_VERSION {
            return None;
        }
        let count = r.u32()? as usize;
        let mut completions = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let index = r.u32()?;
            let result = SysResult::decode_from(&mut r)?;
            completions.push(Completion { index, result });
        }
        if !r.is_empty() {
            return None;
        }
        Some(CompletionBatch { completions })
    }
}

impl SysResult {
    /// Whether this is an error result.
    pub fn is_err(&self) -> bool {
        matches!(self, SysResult::Err(_))
    }

    /// Converts into a `Result`, mapping every success variant to itself.
    ///
    /// # Errors
    ///
    /// Returns the contained [`Errno`] for [`SysResult::Err`].
    pub fn into_result(self) -> Result<SysResult, Errno> {
        match self {
            SysResult::Err(errno) => Err(errno),
            other => Ok(other),
        }
    }

    /// The scalar payload of an `Int` (or the errno-style negative value of an
    /// error), mirroring the raw Linux ABI return convention.
    pub fn as_linux_return(&self) -> i64 {
        match self {
            SysResult::Ok => 0,
            SysResult::Int(v) => *v,
            SysResult::Pair(a, _) => *a,
            SysResult::Data(data) => data.len() as i64,
            SysResult::Path(path) => path.len() as i64,
            SysResult::Stat(_) => 0,
            SysResult::Entries(entries) => entries.len() as i64,
            SysResult::Wait { pid, .. } => *pid as i64,
            SysResult::Poll(revents) => revents.iter().filter(|&&r| r != 0).count() as i64,
            SysResult::DataFixed { len, .. } => *len as i64,
            SysResult::Err(errno) => errno.as_syscall_return(),
        }
    }
}

impl From<Result<SysResult, Errno>> for SysResult {
    fn from(value: Result<SysResult, Errno>) -> Self {
        match value {
            Ok(result) => result,
            Err(errno) => SysResult::Err(errno),
        }
    }
}

/// How a submission batch travelled from the process to the kernel.
///
/// Both variants carry the same wire frame (an encoded [`SyscallBatch`]);
/// they differ only in how the frame crossed the worker boundary and how the
/// completion batch must be delivered back, which is what lets the kernel
/// run one code path for both conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum Transport {
    /// Asynchronous convention: the frame was structured-clone copied inside
    /// a message, and the reply must be a message carrying `seq`.
    Async {
        /// Per-process sequence number used to match responses.
        seq: u64,
        /// The encoded submission batch.
        payload: Vec<u8>,
    },
    /// Synchronous convention: the frame sits in the process's shared heap
    /// (carried here by value in the simulation); the reply is written into
    /// the shared heap and the process woken with `Atomics.notify`.
    Sync {
        /// The encoded submission batch.
        payload: Vec<u8>,
    },
}

impl Transport {
    /// Whether this is the synchronous (shared-memory) convention.
    pub fn is_sync(&self) -> bool {
        matches!(self, Transport::Sync { .. })
    }

    /// The size of the encoded submission frame in bytes.
    pub fn payload_len(&self) -> usize {
        match self {
            Transport::Async { payload, .. } | Transport::Sync { payload } => payload.len(),
        }
    }

    /// Decodes the submission batch carried by either convention.
    pub fn decode_batch(&self) -> Option<SyscallBatch> {
        match self {
            Transport::Async { payload, .. } | Transport::Sync { payload } => SyscallBatch::decode(payload),
        }
    }
}

/// Wire encoding of a [`SigAction`] (one byte).
fn encode_sigaction(action: SigAction) -> u8 {
    match action {
        SigAction::Default => 0,
        SigAction::Ignore => 1,
        SigAction::Handler { restart: false } => 2,
        SigAction::Handler { restart: true } => 3,
    }
}

fn decode_sigaction(byte: u8) -> Option<SigAction> {
    Some(match byte {
        0 => SigAction::Default,
        1 => SigAction::Ignore,
        2 => SigAction::Handler { restart: false },
        3 => SigAction::Handler { restart: true },
        _ => return None,
    })
}

/// Encodes an exit code / terminating signal into a Linux-style wait status.
pub fn encode_wait_status(exit_code: Option<i32>, signal: Option<Signal>) -> i32 {
    match (exit_code, signal) {
        (_, Some(sig)) => sig.termination_status(),
        (Some(code), None) => (code & 0xff) << 8,
        (None, None) => 0,
    }
}

/// Encodes a "stopped by signal" wait status (`WUNTRACED` reporting), using
/// the Linux layout: low byte `0x7f`, stop signal in the next byte.
pub fn encode_stop_status(signal: Signal) -> i32 {
    (signal.number() << 8) | 0x7f
}

/// Extracts the exit code from a wait status, if the child exited normally.
pub fn wait_status_exit_code(status: i32) -> Option<i32> {
    if status & 0x7f == 0 {
        Some((status >> 8) & 0xff)
    } else {
        None
    }
}

/// Extracts the terminating signal from a wait status, if any.
pub fn wait_status_signal(status: i32) -> Option<Signal> {
    if status & 0xff == 0x7f {
        // Stopped, not terminated.
        return None;
    }
    let sig = status & 0x7f;
    if sig != 0 {
        Signal::from_number(sig)
    } else {
        None
    }
}

/// Extracts the stop signal from a wait status, if the child is stopped.
pub fn wait_status_stop_signal(status: i32) -> Option<Signal> {
    if status & 0xff == 0x7f {
        Signal::from_number((status >> 8) & 0xff)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every call variant (including both `stat` spellings).
    /// The exhaustive randomized round-trips live in the workspace-level
    /// property tests; this is the deterministic anchor.
    pub(crate) fn sample_calls() -> Vec<Syscall> {
        vec![
            Syscall::Spawn {
                path: "/usr/bin/pdflatex".into(),
                args: vec!["pdflatex".into(), "main.tex".into()],
                env: vec![("HOME".into(), "/home".into())],
                cwd: Some("/home".into()),
                stdio: [None, Some(4), Some(5)],
            },
            Syscall::Fork {
                image: vec![1, 2, 3],
                resume_point: 42,
            },
            Syscall::Pipe2,
            Syscall::Wait4 { pid: -1, options: 1 },
            Syscall::Exit { code: 3 },
            Syscall::Kill {
                pid: 7,
                signal: Signal::SIGTERM,
            },
            Syscall::Kill {
                pid: -5,
                signal: Signal::SIGINT,
            },
            Syscall::SignalAction {
                signal: Signal::SIGCHLD,
                action: SigAction::Handler { restart: false },
            },
            Syscall::SignalAction {
                signal: Signal::SIGINT,
                action: SigAction::Handler { restart: true },
            },
            Syscall::SignalAction {
                signal: Signal::SIGTTIN,
                action: SigAction::Ignore,
            },
            Syscall::Sigprocmask {
                how: crate::signals::SIG_BLOCK,
                mask: 0x4200,
            },
            Syscall::Setpgid { pid: 3, pgid: 3 },
            Syscall::Getpgid { pid: 0 },
            Syscall::Tcsetpgrp { pgid: 3 },
            Syscall::GetPid,
            Syscall::GetPPid,
            Syscall::GetCwd,
            Syscall::Chdir { path: "/tmp".into() },
            Syscall::Open {
                path: "/etc/passwd".into(),
                flags: OpenFlags::read_only(),
                mode: 0,
            },
            Syscall::Close { fd: 3 },
            Syscall::Read { fd: 3, len: 4096 },
            Syscall::Pread {
                fd: 3,
                len: 16,
                offset: 100,
            },
            Syscall::Write {
                fd: 1,
                data: ByteSource::Inline(b"hello".to_vec()),
            },
            Syscall::Pwrite {
                fd: 1,
                data: ByteSource::SharedHeap { offset: 64, len: 10 },
                offset: 0,
            },
            Syscall::Seek {
                fd: 3,
                offset: -10,
                whence: 2,
            },
            Syscall::Dup { fd: 1 },
            Syscall::Dup2 { from: 4, to: 1 },
            Syscall::Unlink { path: "/tmp/x".into() },
            Syscall::Truncate {
                path: "/tmp/x".into(),
                size: 10,
            },
            Syscall::Rename {
                from: "/a".into(),
                to: "/b".into(),
            },
            Syscall::Fsync { fd: 3 },
            Syscall::Poll {
                fds: vec![
                    PollRequest { fd: 3, events: POLLIN },
                    PollRequest {
                        fd: 5,
                        events: POLLIN | POLLOUT,
                    },
                ],
                timeout_ms: -1,
            },
            Syscall::Poll {
                fds: Vec::new(),
                timeout_ms: 250,
            },
            Syscall::SetFlags { fd: 4, flags: NONBLOCK },
            Syscall::Readdir {
                path: "/usr/bin".into(),
            },
            Syscall::Mkdir {
                path: "/tmp/d".into(),
                mode: 0o755,
            },
            Syscall::Rmdir { path: "/tmp/d".into() },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: false,
            },
            Syscall::Stat {
                path: "/etc".into(),
                lstat: true,
            },
            Syscall::Fstat { fd: 0 },
            Syscall::Access {
                path: "/bin/sh".into(),
                mode: 1,
            },
            Syscall::Readlink {
                path: "/proc/self".into(),
            },
            Syscall::Utimes {
                path: "/tmp/x".into(),
                atime_ms: 1,
                mtime_ms: 2,
            },
            Syscall::Socket,
            Syscall::Bind { fd: 3, port: 8080 },
            Syscall::GetSockName { fd: 3 },
            Syscall::Listen { fd: 3, backlog: 16 },
            Syscall::Accept { fd: 3 },
            Syscall::Connect { fd: 4, port: 8080 },
            Syscall::Ftruncate { fd: 5, size: 8192 },
            Syscall::Mmap {
                addr: 0,
                len: 1 << 20,
                prot: 3,
                flags: 0x22,
                fd: -1,
                offset: 0,
            },
            Syscall::Mmap {
                addr: 0x2000_0000,
                len: 4096,
                prot: 1,
                flags: 1,
                fd: 5,
                offset: 4096,
            },
            Syscall::Munmap {
                addr: 0x1000_0000,
                len: 1 << 20,
            },
            Syscall::Msync {
                addr: 0x2000_0000,
                len: 0,
            },
            Syscall::Mprotect {
                addr: 0x1000_0000,
                len: 4096,
                prot: 1,
            },
            Syscall::ShmOpen {
                name: "/ring".into(),
                flags: OpenFlags {
                    create: true,
                    ..OpenFlags::read_write()
                }
                .to_bits(),
                mode: 0o600,
            },
            Syscall::ShmUnlink { name: "/ring".into() },
            Syscall::VmRead {
                addr: 0x1000_0040,
                len: 64,
            },
            Syscall::VmWrite {
                addr: 0x1000_0040,
                data: ByteSource::Inline(b"cow me".to_vec()),
            },
            Syscall::VmWrite {
                addr: 0x1000_0080,
                data: ByteSource::SharedHeap { offset: 128, len: 32 },
            },
            Syscall::Sendfile {
                out_fd: 4,
                in_fd: 3,
                offset: -1,
                len: 1 << 20,
            },
            Syscall::Sendfile {
                out_fd: 5,
                in_fd: 3,
                offset: 8192,
                len: 4096,
            },
            Syscall::Splice {
                fd_in: 3,
                fd_out: 4,
                len: 65536,
            },
            Syscall::RingSetup {
                sq_offset: 512 * 1024,
                cq_offset: 512 * 1024 + 16 + 64 * 256,
                slots: 64,
                slot_bytes: 256,
                buf_offset: 512 * 1024 + 2 * (16 + 64 * 256),
                buf_count: 7,
                buf_bytes: 64 * 1024,
            },
        ]
    }

    fn sample_results() -> Vec<SysResult> {
        vec![
            SysResult::Ok,
            SysResult::Int(42),
            SysResult::Int(-1),
            SysResult::Pair(3, 4),
            SysResult::Data(vec![0, 1, 2, 250]),
            SysResult::Path("/home/user".into()),
            SysResult::Stat(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o755,
                mtime_ms: 1234,
                atime_ms: 5678,
            }),
            SysResult::Entries(vec![DirEntry::file("a.txt"), DirEntry::dir("sub")]),
            SysResult::Wait { pid: 9, status: 256 },
            SysResult::Poll(vec![POLLIN, 0, POLLOUT | POLLHUP]),
            SysResult::Poll(Vec::new()),
            SysResult::DataFixed { buf: 3, len: 4096 },
            SysResult::Err(Errno::ENOENT),
        ]
    }

    #[test]
    fn every_syscall_round_trips_through_the_wire_codec() {
        for call in sample_calls() {
            let mut out = Vec::new();
            call.encode_into(&mut out);
            let mut r = Reader::new(&out);
            let decoded = Syscall::decode_from(&mut r).unwrap_or_else(|| panic!("{}", call.name()));
            assert_eq!(decoded, call, "{}", call.name());
            assert!(r.is_empty(), "{} left trailing bytes", call.name());
        }
    }

    #[test]
    fn whole_batches_round_trip() {
        let batch = SyscallBatch {
            entries: sample_calls(),
        };
        let encoded = batch.encode();
        assert_eq!(SyscallBatch::decode(&encoded).unwrap(), batch);

        let empty = SyscallBatch::new();
        assert!(empty.is_empty());
        assert_eq!(SyscallBatch::decode(&empty.encode()).unwrap().len(), 0);

        let single: SyscallBatch = Syscall::GetPid.into();
        assert_eq!(single.len(), 1);
        assert_eq!(SyscallBatch::decode(&single.encode()).unwrap(), single);
    }

    #[test]
    fn completion_batches_round_trip() {
        let batch = CompletionBatch {
            completions: sample_results()
                .into_iter()
                .enumerate()
                .map(|(index, result)| Completion {
                    index: index as u32,
                    result,
                })
                .collect(),
        };
        let encoded = batch.encode();
        assert_eq!(CompletionBatch::decode(&encoded).unwrap(), batch);
    }

    #[test]
    fn figure3_classes_are_covered() {
        let classes: std::collections::HashSet<&str> = sample_calls().iter().map(|c| c.class()).collect();
        for expected in [
            "Process Management",
            "Process Metadata",
            "Sockets",
            "Directory IO",
            "File IO",
            "File Metadata",
        ] {
            assert!(classes.contains(expected), "missing class {expected}");
        }
    }

    #[test]
    fn names_are_unique_per_variant_shape() {
        let names: Vec<&str> = sample_calls().iter().map(|c| c.name()).collect();
        // `stat`/`lstat` intentionally share a variant, and the sample set
        // carries two `poll` shapes (fd list and empty), two `kill` shapes
        // (process and group), three `sigaction` shapes, two `mmap` shapes
        // (anonymous and file-backed), two `vm_write` shapes (inline and
        // shared-heap) and two `sendfile` shapes (cursor and explicit
        // offset); all others unique.
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert!(unique.len() >= names.len() - 8);
    }

    #[test]
    fn malformed_frames_return_none() {
        assert_eq!(SyscallBatch::decode(&[]), None);
        assert_eq!(SyscallBatch::decode(&[0x42]), None);
        assert_eq!(
            SyscallBatch::decode(&[0x99, WIRE_VERSION, 0, 0, 0, 0]),
            None,
            "bad magic"
        );
        assert_eq!(SyscallBatch::decode(&[0x42, 99, 0, 0, 0, 0]), None, "bad version");
        // Count says one entry but the frame ends.
        assert_eq!(SyscallBatch::decode(&[0x42, WIRE_VERSION, 1, 0, 0, 0]), None);
        // Unknown opcode.
        assert_eq!(SyscallBatch::decode(&[0x42, WIRE_VERSION, 1, 0, 0, 0, 250]), None);
        // Trailing garbage after a valid batch.
        let mut ok = SyscallBatch::single(Syscall::GetPid).encode();
        ok.push(0);
        assert_eq!(SyscallBatch::decode(&ok), None);

        assert_eq!(CompletionBatch::decode(&[]), None);
        assert_eq!(CompletionBatch::decode(&[0x43, WIRE_VERSION, 1, 0, 0, 0]), None);
        // Unknown result tag.
        let mut r = Reader::new(&[99]);
        assert_eq!(SysResult::decode_from(&mut r), None);
        // Truncated data payload.
        let mut r = Reader::new(&[3, 255, 255, 255, 255]);
        assert_eq!(SysResult::decode_from(&mut r), None);
    }

    #[test]
    fn transports_share_the_codec() {
        let batch = SyscallBatch {
            entries: vec![Syscall::GetPid, Syscall::Pipe2],
        };
        let payload = batch.encode();
        let on_message = Transport::Async {
            seq: 9,
            payload: payload.clone(),
        };
        let on_shared_heap = Transport::Sync { payload };
        assert!(!on_message.is_sync());
        assert!(on_shared_heap.is_sync());
        assert_eq!(on_message.payload_len(), on_shared_heap.payload_len());
        assert_eq!(on_message.decode_batch().unwrap(), batch);
        assert_eq!(on_shared_heap.decode_batch().unwrap(), batch);
    }

    #[test]
    fn linux_return_convention() {
        assert_eq!(SysResult::Ok.as_linux_return(), 0);
        assert_eq!(SysResult::Int(7).as_linux_return(), 7);
        assert_eq!(SysResult::Err(Errno::ENOENT).as_linux_return(), -2);
        assert_eq!(SysResult::Data(vec![1, 2, 3]).as_linux_return(), 3);
        assert!(SysResult::Err(Errno::EBADF).is_err());
        assert!(SysResult::Int(0).into_result().is_ok());
        assert_eq!(SysResult::Err(Errno::EBADF).into_result(), Err(Errno::EBADF));
    }

    #[test]
    fn wait_status_encoding() {
        let exited = encode_wait_status(Some(3), None);
        assert_eq!(wait_status_exit_code(exited), Some(3));
        assert_eq!(wait_status_signal(exited), None);
        assert_eq!(wait_status_stop_signal(exited), None);

        let killed = encode_wait_status(None, Some(Signal::SIGKILL));
        assert_eq!(wait_status_exit_code(killed), None);
        assert_eq!(wait_status_signal(killed), Some(Signal::SIGKILL));
        assert_eq!(wait_status_stop_signal(killed), None);

        let stopped = encode_stop_status(Signal::SIGTSTP);
        assert_eq!(wait_status_exit_code(stopped), None);
        assert_eq!(wait_status_signal(stopped), None);
        assert_eq!(wait_status_stop_signal(stopped), Some(Signal::SIGTSTP));
    }

    #[test]
    fn sigaction_byte_round_trips() {
        for action in [
            SigAction::Default,
            SigAction::Ignore,
            SigAction::Handler { restart: false },
            SigAction::Handler { restart: true },
        ] {
            assert_eq!(decode_sigaction(encode_sigaction(action)), Some(action));
        }
        assert_eq!(decode_sigaction(9), None);
    }

    #[test]
    fn byte_source_length() {
        assert_eq!(ByteSource::Inline(vec![1, 2, 3]).len(), 3);
        assert!(ByteSource::Inline(vec![]).is_empty());
        assert_eq!(ByteSource::SharedHeap { offset: 0, len: 10 }.len(), 10);
        assert!(!ByteSource::SharedHeap { offset: 0, len: 10 }.is_empty());
    }

    #[test]
    fn shared_heap_writes_encode_small() {
        // The asynchronous convention pays a copy cost proportional to the
        // payload; a shared-heap reference stays tiny on the wire.
        let big = SyscallBatch::single(Syscall::Write {
            fd: 1,
            data: ByteSource::Inline(vec![0u8; 4096]),
        });
        let small = SyscallBatch::single(Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 0, len: 4096 },
        });
        assert!(big.encode().len() > 4096);
        assert!(small.encode().len() < 64);
    }

    #[test]
    fn batching_amortizes_the_frame_header() {
        // 64 writes in one batch encode smaller than 64 one-call batches.
        let call = Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 0, len: 64 },
        };
        let mut batch = SyscallBatch::new();
        for _ in 0..64 {
            batch.push(call.clone());
        }
        let batched = batch.encode().len();
        let per_call = SyscallBatch::single(call).encode().len() * 64;
        assert!(batched < per_call);
    }
}
