//! # browsix-http — HTTP/1.1 framing and a tiny JSON codec
//!
//! Browsix replaces Node's native HTTP parser module with a pure-JavaScript
//! implementation so HTTP servers can run as Browsix processes, and its
//! `XMLHttpRequest`-like host API "encapsulates the details of ... serializing
//! the HTTP request to a byte array, sending the byte array to the BROWSIX
//! process, processing the (potentially chunked) HTTP response".  This crate
//! is that replacement layer for the Rust reproduction:
//!
//! * [`types`] — [`HttpRequest`], [`HttpResponse`], [`Method`], [`Headers`].
//! * [`parse`] — incremental request/response parsing from byte streams,
//!   including chunked transfer encoding.
//! * [`json`] — a minimal JSON value model, encoder and decoder, used by the
//!   meme-generator API (the paper's Go server exchanges JSON).
//!
//! # Example
//!
//! ```
//! use browsix_http::{HttpRequest, HttpResponse, Method, parse::parse_request};
//!
//! let req = HttpRequest::new(Method::Get, "/api/backgrounds");
//! let bytes = req.serialize();
//! let parsed = parse_request(&bytes).unwrap().unwrap();
//! assert_eq!(parsed.path, "/api/backgrounds");
//!
//! let resp = HttpResponse::ok().with_body(b"[]".to_vec(), "application/json");
//! assert_eq!(resp.status, 200);
//! ```

pub mod json;
pub mod parse;
pub mod types;

pub use json::Json;
pub use parse::{parse_request, parse_response, HttpParseError};
pub use types::{Headers, HttpRequest, HttpResponse, Method};
