//! HTTP request/response types and serialization.

use std::fmt;

/// An HTTP request method (the subset used by the case studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
    /// OPTIONS
    Options,
}

impl Method {
    /// The canonical request-line token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }

    /// Parses a request-line token (case-sensitive, per RFC 7230).
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            "OPTIONS" => Some(Method::Options),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header, preserving insertion order.
    pub fn insert(&mut self, name: &str, value: &str) {
        self.entries.push((name.to_owned(), value.to_owned()));
    }

    /// Replaces all values of `name` with a single `value`.
    pub fn set(&mut self, name: &str, value: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.insert(name, value);
    }

    /// The first value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// The declared `Content-Length`, if present and valid.
    pub fn content_length(&self) -> Option<usize> {
        self.get("Content-Length").and_then(|v| v.trim().parse().ok())
    }

    /// Whether the message uses chunked transfer encoding.
    pub fn is_chunked(&self) -> bool {
        self.get("Transfer-Encoding")
            .map(|v| v.to_ascii_lowercase().contains("chunked"))
            .unwrap_or(false)
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        for (name, value) in &self.entries {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request target (path plus optional query string).
    pub path: String,
    /// Headers in insertion order.
    pub headers: Headers,
    /// Request body (may be empty).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Creates a new request with no headers and an empty body.
    pub fn new(method: Method, path: &str) -> HttpRequest {
        HttpRequest {
            method,
            path: path.to_owned(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builder-style: attaches a body and sets `Content-Type`.
    pub fn with_body(mut self, body: Vec<u8>, content_type: &str) -> HttpRequest {
        self.headers.set("Content-Type", content_type);
        self.body = body;
        self
    }

    /// Builder-style: adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> HttpRequest {
        self.headers.insert(name, value);
        self
    }

    /// The path portion of the request target (without the query string).
    pub fn path_only(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// The query string, if any (without the leading `?`).
    pub fn query(&self) -> Option<&str> {
        self.path.split_once('?').map(|(_, q)| q)
    }

    /// Serializes the request to wire format, adding `Content-Length` and a
    /// `Host` header if they are missing.
    pub fn serialize(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        if !headers.contains("Host") {
            headers.set("Host", "browsix.localhost");
        }
        if !self.body.is_empty() || self.method == Method::Post || self.method == Method::Put {
            headers.set("Content-Length", &self.body.len().to_string());
        }
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.path).as_bytes());
        headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Reason phrase ("OK", "Not Found", ...).
    pub reason: String,
    /// Headers in insertion order.
    pub headers: Headers,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Creates a response with the given status and a standard reason phrase.
    pub fn new(status: u16) -> HttpResponse {
        HttpResponse {
            status,
            reason: reason_phrase(status).to_owned(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// A `200 OK` response.
    pub fn ok() -> HttpResponse {
        HttpResponse::new(200)
    }

    /// A `404 Not Found` response with a small text body.
    pub fn not_found() -> HttpResponse {
        HttpResponse::new(404).with_body(b"not found".to_vec(), "text/plain")
    }

    /// Builder-style: attaches a body and sets `Content-Type`.
    pub fn with_body(mut self, body: Vec<u8>, content_type: &str) -> HttpResponse {
        self.headers.set("Content-Type", content_type);
        self.body = body;
        self
    }

    /// Builder-style: adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> HttpResponse {
        self.headers.insert(name, value);
        self
    }

    /// Whether the status indicates success (2xx).
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Serializes the response to wire format with a `Content-Length` body.
    pub fn serialize(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        headers.set("Content-Length", &self.body.len().to_string());
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes only the status line and headers, declaring
    /// `content_length` for a body that will be transmitted separately.
    /// This is the `sendfile` shape: the headers leave through an ordinary
    /// write while the body moves kernel-side, never entering the guest.
    pub fn serialize_head(&self, content_length: u64) -> Vec<u8> {
        let mut headers = self.headers.clone();
        headers.set("Content-Length", &content_length.to_string());
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out
    }

    /// Serializes the response using chunked transfer encoding, splitting the
    /// body into chunks of at most `chunk_size` bytes.  Used to exercise the
    /// "potentially chunked" response handling the paper's XHR shim performs.
    pub fn serialize_chunked(&self, chunk_size: usize) -> Vec<u8> {
        let chunk_size = chunk_size.max(1);
        let mut headers = self.headers.clone();
        headers.set("Transfer-Encoding", "chunked");
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        for chunk in self.body.chunks(chunk_size) {
            out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            out.extend_from_slice(chunk);
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
        out
    }
}

/// The standard reason phrase for a status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_round_trip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
            Method::Options,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
        assert_eq!(Method::parse("get"), None);
    }

    #[test]
    fn headers_are_case_insensitive_ordered() {
        let mut headers = Headers::new();
        headers.insert("Content-Type", "text/plain");
        headers.insert("X-Custom", "1");
        assert_eq!(headers.get("content-type"), Some("text/plain"));
        assert!(headers.contains("x-custom"));
        assert_eq!(headers.len(), 2);
        headers.set("X-CUSTOM", "2");
        assert_eq!(headers.get("X-Custom"), Some("2"));
        assert_eq!(headers.len(), 2);
        let names: Vec<&str> = headers.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["Content-Type", "X-CUSTOM"]);
    }

    #[test]
    fn content_length_and_chunked_detection() {
        let mut headers = Headers::new();
        headers.set("Content-Length", "42");
        assert_eq!(headers.content_length(), Some(42));
        headers.set("Content-Length", "nonsense");
        assert_eq!(headers.content_length(), None);
        assert!(!headers.is_chunked());
        headers.set("Transfer-Encoding", "Chunked");
        assert!(headers.is_chunked());
    }

    #[test]
    fn request_serialization_includes_host_and_length() {
        let req =
            HttpRequest::new(Method::Post, "/api/meme").with_body(b"{\"text\":\"hi\"}".to_vec(), "application/json");
        let bytes = req.serialize();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("POST /api/meme HTTP/1.1\r\n"));
        assert!(text.contains("Host: "));
        assert!(text.contains("Content-Length: 13"));
        assert!(text.ends_with("{\"text\":\"hi\"}"));
    }

    #[test]
    fn request_path_helpers() {
        let req = HttpRequest::new(Method::Get, "/api/backgrounds?limit=10");
        assert_eq!(req.path_only(), "/api/backgrounds");
        assert_eq!(req.query(), Some("limit=10"));
        let plain = HttpRequest::new(Method::Get, "/index.html");
        assert_eq!(plain.query(), None);
    }

    #[test]
    fn response_serialization() {
        let resp = HttpResponse::ok().with_body(b"hello".to_vec(), "text/plain");
        let text = String::from_utf8(resp.serialize()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5"));
        assert!(text.ends_with("hello"));
        assert!(resp.is_success());
        assert!(!HttpResponse::not_found().is_success());
    }

    #[test]
    fn chunked_serialization_splits_body() {
        let resp = HttpResponse::ok().with_body(b"abcdefghij".to_vec(), "text/plain");
        let text = String::from_utf8(resp.serialize_chunked(4)).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("4\r\nabcd\r\n"));
        assert!(text.contains("2\r\nij\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(reason_phrase(200), "OK");
        assert_eq!(reason_phrase(404), "Not Found");
        assert_eq!(reason_phrase(599), "Unknown");
        assert_eq!(HttpResponse::new(503).reason, "Service Unavailable");
    }
}
