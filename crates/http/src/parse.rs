//! Incremental HTTP/1.1 parsing.
//!
//! Browsix's socket streams deliver bytes in arbitrary fragments, so both the
//! in-Browsix HTTP servers and the kernel's `XMLHttpRequest`-like shim parse
//! incrementally: [`parse_request`] and [`parse_response`] return `Ok(None)`
//! while the message is still incomplete and `Ok(Some(..))` once a full
//! message (headers plus body, honouring `Content-Length` and chunked
//! transfer encoding) is available.

use std::error::Error;
use std::fmt;

use crate::types::{Headers, HttpRequest, HttpResponse, Method};

/// Errors produced while parsing HTTP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The start line was malformed.
    BadStartLine(String),
    /// A header line was malformed.
    BadHeader(String),
    /// The request method is not supported.
    BadMethod(String),
    /// The status code could not be parsed.
    BadStatus(String),
    /// A chunk size field was malformed.
    BadChunk(String),
    /// The message is not valid UTF-8 where it must be (start line/headers).
    NotUtf8,
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::BadStartLine(line) => write!(f, "malformed start line: {line:?}"),
            HttpParseError::BadHeader(line) => write!(f, "malformed header: {line:?}"),
            HttpParseError::BadMethod(method) => write!(f, "unsupported method: {method:?}"),
            HttpParseError::BadStatus(status) => write!(f, "invalid status code: {status:?}"),
            HttpParseError::BadChunk(chunk) => write!(f, "invalid chunk size: {chunk:?}"),
            HttpParseError::NotUtf8 => write!(f, "header section is not valid utf-8"),
        }
    }
}

impl Error for HttpParseError {}

/// Locates the end of the header section (the `\r\n\r\n` separator).
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_headers(text: &str) -> Result<Headers, HttpParseError> {
    let mut headers = Headers::new();
    for line in text.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpParseError::BadHeader(line.to_owned()))?;
        headers.insert(name.trim(), value.trim());
    }
    Ok(headers)
}

/// Result of trying to extract a body: either we need more bytes, or we have
/// the body plus the total number of bytes consumed from `buf`.
fn parse_body(buf: &[u8], header_end: usize, headers: &Headers) -> Result<Option<(Vec<u8>, usize)>, HttpParseError> {
    if headers.is_chunked() {
        let mut body = Vec::new();
        let mut pos = header_end;
        loop {
            let rest = &buf[pos..];
            let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(None);
            };
            let size_text = std::str::from_utf8(&rest[..line_end])
                .map_err(|_| HttpParseError::NotUtf8)?
                .trim()
                .to_owned();
            let size_field = size_text.split(';').next().unwrap_or("").trim();
            let size =
                usize::from_str_radix(size_field, 16).map_err(|_| HttpParseError::BadChunk(size_text.clone()))?;
            let chunk_start = pos + line_end + 2;
            if size == 0 {
                // Trailing CRLF after the last chunk.
                let trailer_end = chunk_start + 2;
                if buf.len() < trailer_end {
                    return Ok(None);
                }
                return Ok(Some((body, trailer_end)));
            }
            let chunk_end = chunk_start + size + 2;
            if buf.len() < chunk_end {
                return Ok(None);
            }
            body.extend_from_slice(&buf[chunk_start..chunk_start + size]);
            pos = chunk_end;
        }
    }
    let length = headers.content_length().unwrap_or(0);
    let total = header_end + length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((buf[header_end..total].to_vec(), total)))
}

/// Attempts to parse a complete HTTP request from the front of `buf`.
///
/// Returns `Ok(None)` if more bytes are needed.  On success the request is
/// returned; callers that stream multiple requests over one connection can
/// use [`parse_request_consumed`] to learn how many bytes were used.
///
/// # Errors
///
/// Returns an [`HttpParseError`] if the bytes present are not a valid HTTP
/// request.
pub fn parse_request(buf: &[u8]) -> Result<Option<HttpRequest>, HttpParseError> {
    parse_request_consumed(buf).map(|opt| opt.map(|(req, _)| req))
}

/// Like [`parse_request`] but also returns the number of bytes consumed.
///
/// # Errors
///
/// Returns an [`HttpParseError`] if the bytes present are not a valid HTTP
/// request.
pub fn parse_request_consumed(buf: &[u8]) -> Result<Option<(HttpRequest, usize)>, HttpParseError> {
    let Some(header_end) = find_header_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end - 4]).map_err(|_| HttpParseError::NotUtf8)?;
    let mut lines = head.splitn(2, "\r\n");
    let start_line = lines.next().unwrap_or("");
    let rest = lines.next().unwrap_or("");
    let mut parts = start_line.split_whitespace();
    let (method, path, _version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(HttpParseError::BadStartLine(start_line.to_owned())),
    };
    let method = Method::parse(method).ok_or_else(|| HttpParseError::BadMethod(method.to_owned()))?;
    let headers = parse_headers(rest)?;
    let Some((body, consumed)) = parse_body(buf, header_end, &headers)? else {
        return Ok(None);
    };
    Ok(Some((
        HttpRequest {
            method,
            path: path.to_owned(),
            headers,
            body,
        },
        consumed,
    )))
}

/// Attempts to parse a complete HTTP response from the front of `buf`.
///
/// Returns `Ok(None)` if more bytes are needed.
///
/// # Errors
///
/// Returns an [`HttpParseError`] if the bytes present are not a valid HTTP
/// response.
pub fn parse_response(buf: &[u8]) -> Result<Option<HttpResponse>, HttpParseError> {
    let Some(header_end) = find_header_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end - 4]).map_err(|_| HttpParseError::NotUtf8)?;
    let mut lines = head.splitn(2, "\r\n");
    let status_line = lines.next().unwrap_or("");
    let rest = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (_version, status, reason) = match (parts.next(), parts.next(), parts.next()) {
        (Some(v), Some(s), reason) => (v, s, reason.unwrap_or("")),
        _ => return Err(HttpParseError::BadStartLine(status_line.to_owned())),
    };
    let status: u16 = status
        .parse()
        .map_err(|_| HttpParseError::BadStatus(status.to_owned()))?;
    let headers = parse_headers(rest)?;
    let Some((body, _consumed)) = parse_body(buf, header_end, &headers)? else {
        return Ok(None);
    };
    Ok(Some(HttpResponse {
        status,
        reason: reason.to_owned(),
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let original = HttpRequest::new(Method::Post, "/api/meme")
            .with_header("X-Trace", "abc")
            .with_body(b"payload".to_vec(), "application/octet-stream");
        let bytes = original.serialize();
        let parsed = parse_request(&bytes).unwrap().unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/api/meme");
        assert_eq!(parsed.headers.get("x-trace"), Some("abc"));
        assert_eq!(parsed.body, b"payload");
    }

    #[test]
    fn response_round_trip() {
        let original = HttpResponse::ok().with_body(b"{\"ok\":true}".to_vec(), "application/json");
        let parsed = parse_response(&original.serialize()).unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, b"{\"ok\":true}");
        assert_eq!(parsed.headers.get("content-type"), Some("application/json"));
    }

    #[test]
    fn incremental_parsing_waits_for_full_message() {
        let full = HttpRequest::new(Method::Post, "/upload")
            .with_body(vec![7u8; 100], "application/octet-stream")
            .serialize();
        // Feed successively larger prefixes; only the full buffer parses.
        for cut in [10, 40, full.len() - 1] {
            assert_eq!(parse_request(&full[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(parse_request(&full).unwrap().is_some());
    }

    #[test]
    fn chunked_response_is_reassembled() {
        let original = HttpResponse::ok().with_body(b"hello chunked world".to_vec(), "text/plain");
        let wire = original.serialize_chunked(5);
        let parsed = parse_response(&wire).unwrap().unwrap();
        assert_eq!(parsed.body, b"hello chunked world");
        // Incomplete chunked stream returns None.
        assert_eq!(parse_response(&wire[..wire.len() - 3]).unwrap(), None);
    }

    #[test]
    fn consumed_length_supports_pipelining() {
        let first = HttpRequest::new(Method::Get, "/a").serialize();
        let second = HttpRequest::new(Method::Get, "/b").serialize();
        let mut stream = first.clone();
        stream.extend_from_slice(&second);
        let (req, consumed) = parse_request_consumed(&stream).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        let (req2, consumed2) = parse_request_consumed(&stream[consumed..]).unwrap().unwrap();
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, stream.len());
    }

    #[test]
    fn malformed_messages_are_errors() {
        assert!(matches!(
            parse_request(b"NOTAMETHOD /x HTTP/1.1\r\n\r\n"),
            Err(HttpParseError::BadMethod(_))
        ));
        assert!(matches!(
            parse_request(b"GARBAGE\r\n\r\n"),
            Err(HttpParseError::BadStartLine(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n"),
            Err(HttpParseError::BadStatus(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"),
            Err(HttpParseError::BadHeader(_))
        ));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let parsed = parse_request(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn parse_error_display_is_informative() {
        let err = HttpParseError::BadChunk("zz".into());
        assert!(err.to_string().contains("zz"));
    }
}
