//! A minimal JSON value model, encoder and decoder.
//!
//! The paper's meme generator exchanges JSON between its HTML5 client and its
//! Go server (`GET /api/backgrounds` returns a JSON list; `POST /api/meme`
//! takes a JSON body).  To keep the dependency set to the pre-approved crates
//! we implement the small amount of JSON needed by hand.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with string keys.
    Object(BTreeMap<String, Json>),
}

/// Error produced when decoding malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset where the error occurred.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonParseError {}

impl Json {
    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Builder-style insertion into an object (no-op on other variants).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Object(ref mut map) = self {
            map.insert(key.to_owned(), value.into());
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes this value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => encode_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Decodes JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] describing the first syntax problem.
    pub fn decode(text: &str) -> Result<Json, JsonParseError> {
        let bytes = text.as_bytes();
        let mut parser = Parser { bytes, pos: 0 };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != bytes.len() {
            return Err(parser.error("trailing characters"));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::String(value.to_owned())
    }
}

impl From<String> for Json {
    fn from(value: String) -> Self {
        Json::String(value)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Number(value)
    }
}

impl From<i64> for Json {
    fn from(value: i64) -> Self {
        Json::Number(value as f64)
    }
}

impl From<i32> for Json {
    fn from(value: i32) -> Self {
        Json::Number(value as f64)
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::Number(value as f64)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}

impl From<Vec<Json>> for Json {
    fn from(value: Vec<Json>) -> Self {
        Json::Array(value)
    }
}

impl From<Vec<String>> for Json {
    fn from(value: Vec<String>) -> Self {
        Json::Array(value.into_iter().map(Json::String).collect())
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a json value")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {literal}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("bad unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad unicode escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_basic_values() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::from(42i64).encode(), "42");
        assert_eq!(Json::from(2.5).encode(), "2.5");
        assert_eq!(Json::from("hi\n\"there\"").encode(), "\"hi\\n\\\"there\\\"\"");
        let arr = Json::Array(vec![Json::from(1i64), Json::from("x")]);
        assert_eq!(arr.encode(), "[1,\"x\"]");
        let obj = Json::object().with("b", 2i64).with("a", 1i64);
        assert_eq!(obj.encode(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn decode_basic_values() {
        assert_eq!(Json::decode("null").unwrap(), Json::Null);
        assert_eq!(Json::decode(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::decode("-12.5").unwrap(), Json::Number(-12.5));
        assert_eq!(Json::decode("\"a b\"").unwrap().as_str(), Some("a b"));
        assert_eq!(Json::decode("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::decode("{}").unwrap(), Json::object());
    }

    #[test]
    fn round_trip_nested_structures() {
        let value = Json::object()
            .with("name", "grumpy-cat.png")
            .with("width", 640i64)
            .with("tags", Json::Array(vec![Json::from("cat"), Json::from("meme")]))
            .with("meta", Json::object().with("nsfw", false).with("score", 9.5));
        let text = value.encode();
        let parsed = Json::decode(&text).unwrap();
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("meta").unwrap().get("score").unwrap().as_f64(), Some(9.5));
        assert_eq!(parsed.get("width").unwrap().as_i64(), Some(640));
        assert_eq!(parsed.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(parsed.get("meta").unwrap().get("nsfw").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let value = Json::from("emoji \u{1F600} tab\t backslash\\");
        let parsed = Json::decode(&value.encode()).unwrap();
        assert_eq!(parsed, value);
        let escaped = Json::decode("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(escaped.as_str(), Some("Aé"));
    }

    #[test]
    fn malformed_json_errors_carry_position() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "12..5", "[1] extra"] {
            let err = Json::decode(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}");
            assert!(err.to_string().contains("invalid json"));
        }
    }

    #[test]
    fn accessors_return_none_for_wrong_types() {
        let value = Json::from(1i64);
        assert_eq!(value.as_str(), None);
        assert_eq!(value.as_bool(), None);
        assert_eq!(value.as_array(), None);
        assert_eq!(value.get("key"), None);
        assert_eq!(Json::Null.as_f64(), None);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Json::from(3i32), Json::Number(3.0));
        assert_eq!(Json::from(3usize), Json::Number(3.0));
        assert_eq!(Json::from("s".to_string()), Json::String("s".into()));
        assert_eq!(
            Json::from(vec!["a".to_string(), "b".to_string()])
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }
}
