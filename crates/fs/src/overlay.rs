//! The overlay file system: a writable upper layer over a read-only underlay.
//!
//! This is the backend Browsix modified most heavily.  The original BrowserFS
//! overlay *eagerly* read every file from the read-only underlay when it was
//! initialised; Browsix changed it to load lazily, which "drastically improves
//! the startup time of the kernel, minimizes the amount of data transferred
//! over the network, and enables applications like the LaTeX editor where only
//! a small subset of files are required".  Browsix also added locking so
//! operations from different processes do not interleave.
//!
//! [`OverlayFs`] reproduces both: [`OverlayMode::Lazy`] (Browsix behaviour)
//! versus [`OverlayMode::Eager`] (original BrowserFS behaviour, kept for the
//! ablation experiment), copy-up on first write, whiteouts for deletions of
//! underlay files, and an internal [`PathLocks`] table.

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{make_parent_dirs, FileSystem, FsResult, IoStats};
use crate::errno::Errno;
use crate::handle::FileHandle;
use crate::locks::PathLocks;
use crate::memfs::MemFs;
use crate::path::normalize;
use crate::types::{DirEntry, Metadata, OpenFlags};

/// How the overlay treats its read-only underlay at initialisation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayMode {
    /// Files are pulled from the underlay only when first accessed
    /// (the Browsix optimisation).
    #[default]
    Lazy,
    /// Every underlay file is copied into the writable layer at mount time
    /// (the original BrowserFS behaviour).  Kept for the ablation benchmark.
    Eager,
}

/// Log of namespace changes (`unlink`, both sides of `rename`, `rmdir`):
/// a monotonically increasing sequence plus the affected path per event.
/// A lazy write-armed handle records the sequence at `open`; before binding
/// its copy-up to the path it checks whether any later event hit the path
/// *or an ancestor* (a renamed parent directory invalidates every name
/// beneath it).  If so, the handle promotes to a detached orphan inode
/// instead of resurrecting the old name or clobbering its new occupant.
#[derive(Debug, Default)]
struct NsLog {
    seq: u64,
    events: Vec<(u64, String)>,
    /// opened-sequence → number of live write-armed handles opened there.
    /// Events at or before the smallest watched sequence can never matter
    /// again and are pruned, so the log is bounded by the churn during the
    /// lifetime of outstanding handles, not the filesystem's lifetime.
    watchers: BTreeMap<u64, usize>,
}

impl NsLog {
    fn record(&mut self, path: String) {
        self.seq += 1;
        if self.watchers.is_empty() {
            // No handle can ever observe this event.
            self.events.clear();
            return;
        }
        let seq = self.seq;
        self.events.push((seq, path));
    }

    /// Registers a write-armed handle; returns the sequence it opened at.
    fn watch(&mut self) -> u64 {
        let seq = self.seq;
        *self.watchers.entry(seq).or_insert(0) += 1;
        seq
    }

    /// Drops a handle's registration and prunes unobservable events.
    fn unwatch(&mut self, opened_seq: u64) {
        if let Some(count) = self.watchers.get_mut(&opened_seq) {
            *count -= 1;
            if *count == 0 {
                self.watchers.remove(&opened_seq);
            }
        }
        match self.watchers.keys().next().copied() {
            None => self.events.clear(),
            Some(min) => self.events.retain(|(seq, _)| *seq > min),
        }
    }

    /// Whether `path` (or an ancestor of it) changed after `since`.
    fn invalidated_since(&self, path: &str, since: u64) -> bool {
        self.events
            .iter()
            .rev()
            .take_while(|(seq, _)| *seq > since)
            .any(|(_, changed)| crate::path::starts_with(path, changed))
    }
}

/// A writable overlay on top of a read-only underlay.
pub struct OverlayFs {
    upper: Arc<MemFs>,
    lower: Arc<dyn FileSystem>,
    whiteouts: Mutex<HashSet<String>>,
    locks: PathLocks,
    mode: OverlayMode,
    copy_ups: Arc<AtomicU64>,
    ns_log: Arc<Mutex<NsLog>>,
}

impl std::fmt::Debug for OverlayFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayFs")
            .field("mode", &self.mode)
            .field("lower", &self.lower.backend_name())
            .field("whiteouts", &self.whiteouts.lock().len())
            .finish()
    }
}

impl OverlayFs {
    /// Creates an overlay over `lower`.
    ///
    /// With [`OverlayMode::Eager`] every file reachable from the underlay root
    /// is copied up immediately, reproducing the expensive behaviour the paper
    /// replaced.
    pub fn new(lower: Arc<dyn FileSystem>, mode: OverlayMode) -> OverlayFs {
        let overlay = OverlayFs {
            upper: Arc::new(MemFs::new()),
            lower,
            whiteouts: Mutex::new(HashSet::new()),
            locks: PathLocks::new(),
            mode,
            copy_ups: Arc::new(AtomicU64::new(0)),
            ns_log: Arc::new(Mutex::new(NsLog::default())),
        };
        if mode == OverlayMode::Eager {
            overlay.copy_up_tree("/");
        }
        overlay
    }

    /// The overlay's initialisation mode.
    pub fn mode(&self) -> OverlayMode {
        self.mode
    }

    /// Number of files materialised in the writable layer by copy-up (both
    /// eager initialisation and copy-up-on-first-write).
    pub fn copy_up_count(&self) -> u64 {
        self.copy_ups.load(Ordering::Relaxed)
    }

    /// The per-path advisory lock table shared by all processes using this
    /// overlay (Browsix's multi-process addition).
    pub fn locks(&self) -> &PathLocks {
        &self.locks
    }

    /// Number of whiteout entries (underlay files deleted by the upper layer).
    pub fn whiteout_count(&self) -> usize {
        self.whiteouts.lock().len()
    }

    /// Number of nodes materialised in the writable upper layer.
    pub fn upper_node_count(&self) -> usize {
        self.upper.node_count()
    }

    /// Whether `path` — or any ancestor of it — has been whited out.  The
    /// ancestor walk matters after a lower *directory* is renamed or removed:
    /// only the directory itself gets a whiteout entry, but everything
    /// beneath it must disappear from the merged view too.
    fn is_whited_out(&self, path: &str) -> bool {
        let whiteouts = self.whiteouts.lock();
        if whiteouts.is_empty() {
            return false;
        }
        // O(depth) hash lookups: check the path and each of its ancestors,
        // trimming one component at a time off the normalised string.
        let normalized = normalize(path);
        let mut candidate = normalized.as_str();
        loop {
            if whiteouts.contains(candidate) {
                return true;
            }
            match candidate.rfind('/') {
                Some(0) | None => return false,
                Some(idx) => candidate = &candidate[..idx],
            }
        }
    }

    fn add_whiteout(&self, path: &str) {
        self.whiteouts.lock().insert(normalize(path));
    }

    fn clear_whiteout(&self, path: &str) {
        self.whiteouts.lock().remove(&normalize(path));
    }

    fn copy_up_tree(&self, path: &str) {
        let Ok(meta) = self.lower.stat(path) else { return };
        if meta.is_dir() {
            if let Ok(entries) = self.lower.read_dir(path) {
                for entry in entries {
                    let child = if path == "/" {
                        format!("/{}", entry.name)
                    } else {
                        format!("{}/{}", path, entry.name)
                    };
                    self.copy_up_tree(&child);
                }
            }
        } else if let Ok(data) = self.lower.read_file(path) {
            let _ = make_parent_dirs(self.upper.as_ref(), path);
            if self.upper.write_file(path, &data).is_ok() {
                self.copy_ups.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Ensures `path` exists in the upper layer, copying its contents up from
    /// the underlay if necessary.  Returns `ENOENT` if the file exists in
    /// neither layer.
    fn copy_up(&self, path: &str) -> FsResult<()> {
        if self.upper.exists(path) {
            return Ok(());
        }
        if self.is_whited_out(path) {
            return Err(Errno::ENOENT);
        }
        let meta = self.lower.stat(path)?;
        make_parent_dirs(self.upper.as_ref(), path)?;
        if meta.is_dir() {
            match self.upper.mkdir(path) {
                Ok(()) | Err(Errno::EEXIST) => Ok(()),
                Err(e) => Err(e),
            }
        } else {
            let data = self.lower.read_file(path)?;
            self.upper.write_file(path, &data)?;
            self.copy_ups.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    fn visible_in_lower(&self, path: &str) -> bool {
        !self.is_whited_out(path) && self.lower.exists(path)
    }

    /// Marks that `path` (and, implicitly, everything beneath it) no longer
    /// names what it used to name.
    fn log_namespace_change(&self, path: &str) {
        self.ns_log.lock().record(normalize(path));
    }
}

impl FileSystem for OverlayFs {
    fn backend_name(&self) -> &'static str {
        "overlayfs"
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        if self.upper.exists(path) {
            return self.upper.stat(path);
        }
        if self.is_whited_out(path) {
            return Err(Errno::ENOENT);
        }
        self.lower.stat(path)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let upper = self.upper.read_dir(path);
        let lower = if self.is_whited_out(path) {
            Err(Errno::ENOENT)
        } else {
            self.lower.read_dir(path)
        };
        if let (Err(_), Err(e)) = (&upper, &lower) {
            // Keep directory-vs-file confusion errors from the upper layer.
            if upper == Err(Errno::ENOTDIR) {
                return Err(Errno::ENOTDIR);
            }
            return Err(*e);
        }
        let mut merged: BTreeMap<String, DirEntry> = BTreeMap::new();
        if let Ok(entries) = lower {
            let dir_prefix = normalize(path);
            for entry in entries {
                let full = if dir_prefix == "/" {
                    format!("/{}", entry.name)
                } else {
                    format!("{}/{}", dir_prefix, entry.name)
                };
                if !self.is_whited_out(&full) {
                    merged.insert(entry.name.clone(), entry);
                }
            }
        }
        if let Ok(entries) = upper {
            for entry in entries {
                merged.insert(entry.name.clone(), entry);
            }
        }
        Ok(merged.into_values().collect())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        if self.visible_in_lower(path) || self.upper.exists(path) {
            return Err(Errno::EEXIST);
        }
        make_parent_dirs(self.upper.as_ref(), path)?;
        self.upper.mkdir(path)?;
        self.clear_whiteout(path);
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let entries = self.read_dir(path)?;
        if !entries.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        if self.upper.exists(path) {
            self.upper.rmdir(path)?;
        }
        if self.lower.exists(path) {
            self.add_whiteout(path);
        }
        self.log_namespace_change(path);
        Ok(())
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<()> {
        match self.stat(path) {
            Ok(meta) if meta.is_dir() => return Err(Errno::EISDIR),
            Ok(_) => {
                // Regular file exists somewhere: make sure it is materialised
                // in the upper layer so subsequent writes have a target.
                return self.copy_up(path);
            }
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        // New file: the parent must exist in the merged view.
        let parent = crate::path::dirname(path);
        if !self.exists(&parent) {
            return Err(Errno::ENOENT);
        }
        make_parent_dirs(self.upper.as_ref(), path)?;
        self.upper.create(path, mode)?;
        self.clear_whiteout(path);
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(Errno::EISDIR);
        }
        if self.upper.exists(path) {
            self.upper.unlink(path)?;
        }
        if self.lower.exists(path) {
            self.add_whiteout(path);
        }
        self.log_namespace_change(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let meta = self.stat(from)?;
        if meta.is_dir() {
            // Directory renames are implemented by materialising the source
            // tree in the upper layer and renaming there.
            self.copy_up(from)?;
            if let Ok(entries) = self.lower.read_dir(from) {
                for entry in entries {
                    let child = format!("{}/{}", normalize(from), entry.name);
                    let _ = self.copy_up(&child);
                }
            }
            make_parent_dirs(self.upper.as_ref(), to)?;
            self.upper.rename(from, to)?;
        } else {
            let data = self.read_file(from)?;
            make_parent_dirs(self.upper.as_ref(), to)?;
            self.upper.write_file(to, &data)?;
            self.unlink(from)?;
        }
        if self.lower.exists(from) {
            self.add_whiteout(from);
        }
        self.clear_whiteout(to);
        // Both names changed meaning: `from` is gone, `to` was replaced.
        self.log_namespace_change(from);
        self.log_namespace_change(to);
        Ok(())
    }

    /// Opens a handle with **copy-up on first write**: files already in the
    /// upper layer open there directly; files only in the underlay open a
    /// lower handle, and the first mutation through the handle materialises
    /// the file in the upper layer and transparently switches over.  A purely
    /// read-only open of an underlay file therefore never copies anything —
    /// the lazy behaviour the paper calls out as a key optimisation, now at
    /// handle granularity.
    fn open_handle(&self, path: &str, flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>> {
        let meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(Errno::EISDIR);
        }
        if self.upper.exists(path) {
            return self.upper.open_handle(path, flags);
        }
        // Underlay file (stat above already rejected whiteouts as ENOENT).
        let lower_handle = self.lower.open_handle(path, OpenFlags::read_only())?;
        if !flags.write && !flags.append && !flags.truncate {
            return Ok(lower_handle);
        }
        Ok(Arc::new(OverlayHandle {
            path: normalize(path),
            upper: Arc::clone(&self.upper),
            lower: lower_handle,
            promoted: Mutex::new(None),
            copy_ups: Arc::clone(&self.copy_ups),
            ns_log: Arc::clone(&self.ns_log),
            opened_seq: self.ns_log.lock().watch(),
        }))
    }

    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()> {
        self.copy_up(path)?;
        self.upper.set_times(path, atime_ms, mtime_ms)
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        self.copy_up(path)?;
        self.upper.chmod(path, mode)
    }

    fn io_stats(&self) -> IoStats {
        let mut stats = self.lower.io_stats();
        stats.copy_ups += self.copy_up_count();
        stats
    }
}

/// A write-armed handle to a file that (so far) lives only in the underlay.
///
/// Reads pass through to the lower handle until the first mutation; the
/// mutation copies the file up, swaps in an upper handle, and everything
/// after that — reads included — goes to the writable layer.
struct OverlayHandle {
    path: String,
    upper: Arc<MemFs>,
    lower: Arc<dyn FileHandle>,
    /// The upper-layer handle, once copy-up has happened.
    promoted: Mutex<Option<Arc<dyn FileHandle>>>,
    copy_ups: Arc<AtomicU64>,
    ns_log: Arc<Mutex<NsLog>>,
    /// The namespace-log sequence when this handle was opened.
    opened_seq: u64,
}

impl OverlayHandle {
    /// Copies the file into the upper layer (unless another actor already
    /// did) and returns a handle there.  With `preserve` false the upper copy
    /// starts empty — the `O_TRUNC` fast path, which skips reading the
    /// underlay (and, for `httpfs` underlays, skips the network entirely).
    ///
    /// If the name — or an ancestor directory — changed since this handle
    /// was opened (unlinked, renamed away, or renamed over), binding the
    /// copy-up to the path would resurrect the deleted name or clobber its
    /// new occupant; the handle instead promotes to a detached anonymous
    /// inode visible only through this handle, which is POSIX's behaviour
    /// for writes through an fd whose file is gone.
    fn promote(&self, preserve: bool) -> FsResult<Arc<dyn FileHandle>> {
        let mut promoted = self.promoted.lock();
        if let Some(handle) = promoted.as_ref() {
            return Ok(Arc::clone(handle));
        }
        let preserved = || -> FsResult<Vec<u8>> {
            if preserve {
                // read_full re-checks the size after reading, so an underlay
                // with an advisory size (httpfs manifest) never truncates
                // the copy-up.
                crate::handle::read_full(self.lower.as_ref())
            } else {
                Ok(Vec::new())
            }
        };
        let invalidated = self.ns_log.lock().invalidated_since(&self.path, self.opened_seq);
        let handle: Arc<dyn FileHandle> = if invalidated {
            crate::memfs::detached_handle(preserved()?)
        } else {
            if !self.upper.exists(&self.path) {
                make_parent_dirs(self.upper.as_ref(), &self.path)?;
                let data = preserved()?;
                self.upper.write_file(&self.path, &data)?;
                self.copy_ups.fetch_add(1, Ordering::Relaxed);
            }
            self.upper.open_handle(&self.path, OpenFlags::read_write())?
        };
        *promoted = Some(Arc::clone(&handle));
        Ok(handle)
    }

    fn current(&self) -> Arc<dyn FileHandle> {
        self.promoted
            .lock()
            .as_ref()
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::clone(&self.lower))
    }
}

impl FileHandle for OverlayHandle {
    fn backend_name(&self) -> &'static str {
        "overlayfs"
    }

    fn metadata(&self) -> FsResult<Metadata> {
        self.current().metadata()
    }

    fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.current().read_at(offset, len)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.promote(true)?.write_at(offset, data)
    }

    fn append(&self, data: &[u8]) -> FsResult<u64> {
        self.promote(true)?.append(data)
    }

    fn truncate(&self, size: u64) -> FsResult<()> {
        self.promote(size > 0)?.truncate(size)
    }

    fn fsync(&self) -> FsResult<()> {
        self.current().fsync()
    }
}

impl Drop for OverlayHandle {
    fn drop(&mut self) {
        // Deregister from the namespace log so events this handle could have
        // observed become prunable (keeps the log bounded).
        self.ns_log.lock().unwatch(self.opened_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{Bundle, BundleFs};

    fn lower() -> Arc<dyn FileSystem> {
        let mut bundle = Bundle::new();
        bundle
            .insert_text("/etc/passwd", "root:x:0:0")
            .insert_text("/usr/share/doc/readme", "read me")
            .insert_text("/usr/share/doc/license", "MIT");
        Arc::new(BundleFs::new(bundle))
    }

    #[test]
    fn lazy_overlay_reads_through_to_lower() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"root:x:0:0");
        // Reads do not copy up.
        assert_eq!(fs.upper_node_count(), 1);
    }

    #[test]
    fn eager_overlay_materialises_everything_up_front() {
        let fs = OverlayFs::new(lower(), OverlayMode::Eager);
        assert!(fs.upper_node_count() > 4, "eager mode should copy all files up");
        assert_eq!(fs.mode(), OverlayMode::Eager);
        assert_eq!(fs.read_file("/usr/share/doc/license").unwrap(), b"MIT");
    }

    #[test]
    fn writes_copy_up_and_do_not_touch_lower() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.write_at("/etc/passwd", 0, b"user").unwrap();
        assert_eq!(&fs.read_file("/etc/passwd").unwrap()[..4], b"user");
        assert!(fs.upper_node_count() > 1);
        // New files land in the upper layer.
        fs.write_file("/etc/hostname", b"browsix").unwrap();
        assert_eq!(fs.read_file("/etc/hostname").unwrap(), b"browsix");
    }

    #[test]
    fn unlink_of_lower_file_uses_whiteout() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.unlink("/etc/passwd").unwrap();
        assert_eq!(fs.stat("/etc/passwd"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/etc/passwd"), Err(Errno::ENOENT));
        assert_eq!(fs.whiteout_count(), 1);
        // Re-creating the file clears the whiteout.
        fs.write_file("/etc/passwd", b"new").unwrap();
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"new");
        assert_eq!(fs.whiteout_count(), 0);
    }

    #[test]
    fn read_dir_merges_layers_and_hides_whiteouts() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.write_file("/usr/share/doc/notes", b"hi").unwrap();
        fs.unlink("/usr/share/doc/license").unwrap();
        let names: Vec<String> = fs
            .read_dir("/usr/share/doc")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["notes", "readme"]);
    }

    #[test]
    fn mkdir_over_existing_lower_dir_is_eexist() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.mkdir("/etc"), Err(Errno::EEXIST));
        fs.mkdir("/var").unwrap();
        assert!(fs.stat("/var").unwrap().is_dir());
    }

    #[test]
    fn rmdir_hides_lower_directory() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        // /usr/share/doc is non-empty.
        assert_eq!(fs.rmdir("/usr/share/doc"), Err(Errno::ENOTEMPTY));
        fs.mkdir("/empty").unwrap();
        fs.rmdir("/empty").unwrap();
        assert!(!fs.exists("/empty"));
    }

    #[test]
    fn rename_copies_and_whiteouts_source() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.rename("/etc/passwd", "/etc/passwd.bak").unwrap();
        assert_eq!(fs.read_file("/etc/passwd.bak").unwrap(), b"root:x:0:0");
        assert_eq!(fs.stat("/etc/passwd"), Err(Errno::ENOENT));
    }

    #[test]
    fn create_on_existing_lower_file_copies_up() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.create("/etc/passwd", 0o644).unwrap();
        // Contents preserved by the copy-up.
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"root:x:0:0");
    }

    #[test]
    fn create_in_missing_directory_is_enoent() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.create("/no/such/dir/file", 0o644), Err(Errno::ENOENT));
    }

    #[test]
    fn truncate_and_chmod_copy_up() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.truncate("/usr/share/doc/readme", 4).unwrap();
        assert_eq!(fs.read_file("/usr/share/doc/readme").unwrap(), b"read");
        fs.chmod("/usr/share/doc/readme", 0o600).unwrap();
        assert_eq!(fs.stat("/usr/share/doc/readme").unwrap().mode, 0o600);
    }

    // ---- handle-layer copy-up-on-first-write ---------------------------------

    #[test]
    fn read_only_handles_never_copy_up() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        let h = fs.open_handle("/etc/passwd", OpenFlags::read_only()).unwrap();
        assert_eq!(h.read_at(0, 4).unwrap(), b"root");
        assert_eq!(h.metadata().unwrap().size, 10);
        assert_eq!(fs.copy_up_count(), 0);
        assert_eq!(fs.upper_node_count(), 1, "reads must not materialise the upper layer");
    }

    #[test]
    fn write_handle_copies_up_on_first_write_only() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        let h = fs.open_handle("/etc/passwd", OpenFlags::read_write()).unwrap();
        // Reads before the first write come from the underlay, copy-free.
        assert_eq!(h.read_at(0, 4).unwrap(), b"root");
        assert_eq!(fs.copy_up_count(), 0);
        // The first write atomically materialises the file in the upper
        // layer, preserving the underlay contents.
        assert_eq!(h.write_at(0, b"user").unwrap(), 4);
        assert_eq!(fs.copy_up_count(), 1);
        assert_eq!(h.read_at(0, 10).unwrap(), b"user:x:0:0");
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"user:x:0:0");
        // Further writes reuse the promoted handle: still one copy-up.
        h.append(b"!").unwrap();
        assert_eq!(fs.copy_up_count(), 1);
        // The underlay itself is untouched.
        assert_eq!(lower().read_file("/etc/passwd").unwrap(), b"root:x:0:0");
    }

    #[test]
    fn truncate_to_zero_promotes_without_reading_the_underlay() {
        use browsix_browser::{NetworkProfile, RemoteEndpoint, StaticFiles};
        let files = StaticFiles::new();
        files.insert("/blob.bin", vec![9u8; 4096]);
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        let http = Arc::new(crate::HttpFs::new(endpoint, vec![("/blob.bin".to_string(), 4096)]));
        let fs = OverlayFs::new(Arc::clone(&http) as Arc<dyn FileSystem>, OverlayMode::Lazy);

        let h = fs.open_handle("/blob.bin", OpenFlags::write_create_truncate()).unwrap();
        h.truncate(0).unwrap();
        h.write_at(0, b"fresh").unwrap();
        assert_eq!(fs.read_file("/blob.bin").unwrap(), b"fresh");
        assert_eq!(fs.copy_up_count(), 1);
        // The O_TRUNC fast path never touched the network.
        assert_eq!(http.stats().fetches, 0);
    }

    #[test]
    fn unlinked_file_is_not_resurrected_by_a_pending_write_handle() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        let h = fs.open_handle("/etc/passwd", OpenFlags::read_write()).unwrap();
        fs.unlink("/etc/passwd").unwrap();
        // The first write promotes to an orphaned inode: it succeeds, but the
        // deleted name must not reappear in the namespace.
        h.write_at(0, b"ghost").unwrap();
        assert_eq!(h.read_at(0, 5).unwrap(), b"ghost");
        assert_eq!(fs.stat("/etc/passwd"), Err(Errno::ENOENT));
    }

    #[test]
    fn stale_write_handle_does_not_clobber_a_recreated_file() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        let h = fs.open_handle("/etc/passwd", OpenFlags::read_write()).unwrap();
        fs.unlink("/etc/passwd").unwrap();
        fs.write_file("/etc/passwd", b"replacement").unwrap();
        // The stale handle writes to its own orphaned inode, never to the
        // file that now occupies the old name.
        h.write_at(0, b"stale data").unwrap();
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"replacement");
        assert_eq!(h.read_at(0, 10).unwrap(), b"stale data");
        // Rename-over is the same hazard: a handle opened before the rename
        // must not clobber the renamed-in file.
        let h2 = fs
            .open_handle("/usr/share/doc/readme", OpenFlags::read_write())
            .unwrap();
        fs.rename("/usr/share/doc/license", "/usr/share/doc/readme").unwrap();
        h2.write_at(0, b"old!").unwrap();
        assert_eq!(fs.read_file("/usr/share/doc/readme").unwrap(), b"MIT");
    }

    #[test]
    fn renaming_a_lower_directory_hides_its_old_contents() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.rename("/usr/share/doc", "/usr/share/docs2").unwrap();
        // The whiteout on the directory must hide everything beneath it.
        assert_eq!(fs.stat("/usr/share/doc/readme"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/usr/share/doc/readme"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/usr/share/docs2/readme").unwrap(), b"read me");
    }

    #[test]
    fn stale_handle_under_a_renamed_directory_promotes_detached() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        let h = fs
            .open_handle("/usr/share/doc/readme", OpenFlags::read_write())
            .unwrap();
        fs.rename("/usr/share/doc", "/usr/share/docs2").unwrap();
        // The parent directory was renamed away: the pending write must not
        // materialise the old path.
        h.write_at(0, b"ghost").unwrap();
        assert_eq!(fs.stat("/usr/share/doc/readme"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/usr/share/docs2/readme").unwrap(), b"read me");
        assert_eq!(h.read_at(0, 5).unwrap(), b"ghost");
    }

    #[test]
    fn copy_up_through_handle_honours_corrected_underlay_size() {
        use browsix_browser::{NetworkProfile, RemoteEndpoint, StaticFiles};
        // The httpfs manifest understates the file: 100 advertised, 1000 real.
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let files = StaticFiles::new();
        files.insert("/grown.bin", body.clone());
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        let http = crate::HttpFs::new(endpoint, vec![("/grown.bin".to_string(), 100)]);
        let fs = OverlayFs::new(Arc::new(http), OverlayMode::Lazy);

        let h = fs.open_handle("/grown.bin", OpenFlags::read_write()).unwrap();
        h.write_at(0, b"X").unwrap();
        // Copy-up must have captured all 1000 authoritative bytes.
        let mut expected = body;
        expected[0] = b'X';
        assert_eq!(fs.read_file("/grown.bin").unwrap(), expected);
        assert_eq!(fs.stat("/grown.bin").unwrap().size, 1000);
    }

    #[test]
    fn eager_mode_counts_copy_ups_and_io_stats_aggregate() {
        let fs = OverlayFs::new(lower(), OverlayMode::Eager);
        assert_eq!(fs.copy_up_count(), 3);
        assert_eq!(fs.io_stats().copy_ups, 3);
    }
}
