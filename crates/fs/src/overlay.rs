//! The overlay file system: a writable upper layer over a read-only underlay.
//!
//! This is the backend Browsix modified most heavily.  The original BrowserFS
//! overlay *eagerly* read every file from the read-only underlay when it was
//! initialised; Browsix changed it to load lazily, which "drastically improves
//! the startup time of the kernel, minimizes the amount of data transferred
//! over the network, and enables applications like the LaTeX editor where only
//! a small subset of files are required".  Browsix also added locking so
//! operations from different processes do not interleave.
//!
//! [`OverlayFs`] reproduces both: [`OverlayMode::Lazy`] (Browsix behaviour)
//! versus [`OverlayMode::Eager`] (original BrowserFS behaviour, kept for the
//! ablation experiment), copy-up on first write, whiteouts for deletions of
//! underlay files, and an internal [`PathLocks`] table.

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{make_parent_dirs, FileSystem, FsResult};
use crate::errno::Errno;
use crate::locks::PathLocks;
use crate::memfs::MemFs;
use crate::path::normalize;
use crate::types::{DirEntry, Metadata};

/// How the overlay treats its read-only underlay at initialisation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayMode {
    /// Files are pulled from the underlay only when first accessed
    /// (the Browsix optimisation).
    #[default]
    Lazy,
    /// Every underlay file is copied into the writable layer at mount time
    /// (the original BrowserFS behaviour).  Kept for the ablation benchmark.
    Eager,
}

/// A writable overlay on top of a read-only underlay.
pub struct OverlayFs {
    upper: MemFs,
    lower: Arc<dyn FileSystem>,
    whiteouts: Mutex<HashSet<String>>,
    locks: PathLocks,
    mode: OverlayMode,
}

impl std::fmt::Debug for OverlayFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayFs")
            .field("mode", &self.mode)
            .field("lower", &self.lower.backend_name())
            .field("whiteouts", &self.whiteouts.lock().len())
            .finish()
    }
}

impl OverlayFs {
    /// Creates an overlay over `lower`.
    ///
    /// With [`OverlayMode::Eager`] every file reachable from the underlay root
    /// is copied up immediately, reproducing the expensive behaviour the paper
    /// replaced.
    pub fn new(lower: Arc<dyn FileSystem>, mode: OverlayMode) -> OverlayFs {
        let overlay = OverlayFs {
            upper: MemFs::new(),
            lower,
            whiteouts: Mutex::new(HashSet::new()),
            locks: PathLocks::new(),
            mode,
        };
        if mode == OverlayMode::Eager {
            overlay.copy_up_tree("/");
        }
        overlay
    }

    /// The overlay's initialisation mode.
    pub fn mode(&self) -> OverlayMode {
        self.mode
    }

    /// The per-path advisory lock table shared by all processes using this
    /// overlay (Browsix's multi-process addition).
    pub fn locks(&self) -> &PathLocks {
        &self.locks
    }

    /// Number of whiteout entries (underlay files deleted by the upper layer).
    pub fn whiteout_count(&self) -> usize {
        self.whiteouts.lock().len()
    }

    /// Number of nodes materialised in the writable upper layer.
    pub fn upper_node_count(&self) -> usize {
        self.upper.node_count()
    }

    fn is_whited_out(&self, path: &str) -> bool {
        self.whiteouts.lock().contains(&normalize(path))
    }

    fn add_whiteout(&self, path: &str) {
        self.whiteouts.lock().insert(normalize(path));
    }

    fn clear_whiteout(&self, path: &str) {
        self.whiteouts.lock().remove(&normalize(path));
    }

    fn copy_up_tree(&self, path: &str) {
        let Ok(meta) = self.lower.stat(path) else { return };
        if meta.is_dir() {
            if let Ok(entries) = self.lower.read_dir(path) {
                for entry in entries {
                    let child = if path == "/" {
                        format!("/{}", entry.name)
                    } else {
                        format!("{}/{}", path, entry.name)
                    };
                    self.copy_up_tree(&child);
                }
            }
        } else if let Ok(data) = self.lower.read_file(path) {
            let _ = make_parent_dirs(&self.upper, path);
            let _ = self.upper.write_file(path, &data);
        }
    }

    /// Ensures `path` exists in the upper layer, copying its contents up from
    /// the underlay if necessary.  Returns `ENOENT` if the file exists in
    /// neither layer.
    fn copy_up(&self, path: &str) -> FsResult<()> {
        if self.upper.exists(path) {
            return Ok(());
        }
        if self.is_whited_out(path) {
            return Err(Errno::ENOENT);
        }
        let meta = self.lower.stat(path)?;
        make_parent_dirs(&self.upper, path)?;
        if meta.is_dir() {
            match self.upper.mkdir(path) {
                Ok(()) | Err(Errno::EEXIST) => Ok(()),
                Err(e) => Err(e),
            }
        } else {
            let data = self.lower.read_file(path)?;
            self.upper.write_file(path, &data)
        }
    }

    fn visible_in_lower(&self, path: &str) -> bool {
        !self.is_whited_out(path) && self.lower.exists(path)
    }
}

impl FileSystem for OverlayFs {
    fn backend_name(&self) -> &'static str {
        "overlayfs"
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        if self.upper.exists(path) {
            return self.upper.stat(path);
        }
        if self.is_whited_out(path) {
            return Err(Errno::ENOENT);
        }
        self.lower.stat(path)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let upper = self.upper.read_dir(path);
        let lower = if self.is_whited_out(path) {
            Err(Errno::ENOENT)
        } else {
            self.lower.read_dir(path)
        };
        if let (Err(_), Err(e)) = (&upper, &lower) {
            // Keep directory-vs-file confusion errors from the upper layer.
            if upper == Err(Errno::ENOTDIR) {
                return Err(Errno::ENOTDIR);
            }
            return Err(*e);
        }
        let mut merged: BTreeMap<String, DirEntry> = BTreeMap::new();
        if let Ok(entries) = lower {
            let dir_prefix = normalize(path);
            for entry in entries {
                let full = if dir_prefix == "/" {
                    format!("/{}", entry.name)
                } else {
                    format!("{}/{}", dir_prefix, entry.name)
                };
                if !self.is_whited_out(&full) {
                    merged.insert(entry.name.clone(), entry);
                }
            }
        }
        if let Ok(entries) = upper {
            for entry in entries {
                merged.insert(entry.name.clone(), entry);
            }
        }
        Ok(merged.into_values().collect())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        if self.visible_in_lower(path) || self.upper.exists(path) {
            return Err(Errno::EEXIST);
        }
        make_parent_dirs(&self.upper, path)?;
        self.upper.mkdir(path)?;
        self.clear_whiteout(path);
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let entries = self.read_dir(path)?;
        if !entries.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        if self.upper.exists(path) {
            self.upper.rmdir(path)?;
        }
        if self.lower.exists(path) {
            self.add_whiteout(path);
        }
        Ok(())
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<()> {
        match self.stat(path) {
            Ok(meta) if meta.is_dir() => return Err(Errno::EISDIR),
            Ok(_) => {
                // Regular file exists somewhere: make sure it is materialised
                // in the upper layer so subsequent writes have a target.
                return self.copy_up(path);
            }
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        // New file: the parent must exist in the merged view.
        let parent = crate::path::dirname(path);
        if !self.exists(&parent) {
            return Err(Errno::ENOENT);
        }
        make_parent_dirs(&self.upper, path)?;
        self.upper.create(path, mode)?;
        self.clear_whiteout(path);
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(Errno::EISDIR);
        }
        if self.upper.exists(path) {
            self.upper.unlink(path)?;
        }
        if self.lower.exists(path) {
            self.add_whiteout(path);
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let meta = self.stat(from)?;
        if meta.is_dir() {
            // Directory renames are implemented by materialising the source
            // tree in the upper layer and renaming there.
            self.copy_up(from)?;
            if let Ok(entries) = self.lower.read_dir(from) {
                for entry in entries {
                    let child = format!("{}/{}", normalize(from), entry.name);
                    let _ = self.copy_up(&child);
                }
            }
            make_parent_dirs(&self.upper, to)?;
            self.upper.rename(from, to)?;
        } else {
            let data = self.read_file(from)?;
            make_parent_dirs(&self.upper, to)?;
            self.upper.write_file(to, &data)?;
            self.unlink(from)?;
        }
        if self.lower.exists(from) {
            self.add_whiteout(from);
        }
        self.clear_whiteout(to);
        Ok(())
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        if self.upper.exists(path) {
            return self.upper.read_at(path, offset, len);
        }
        if self.is_whited_out(path) {
            return Err(Errno::ENOENT);
        }
        self.lower.read_at(path, offset, len)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.copy_up(path)?;
        self.upper.write_at(path, offset, data)
    }

    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        self.copy_up(path)?;
        self.upper.truncate(path, size)
    }

    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()> {
        self.copy_up(path)?;
        self.upper.set_times(path, atime_ms, mtime_ms)
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        self.copy_up(path)?;
        self.upper.chmod(path, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{Bundle, BundleFs};

    fn lower() -> Arc<dyn FileSystem> {
        let mut bundle = Bundle::new();
        bundle
            .insert_text("/etc/passwd", "root:x:0:0")
            .insert_text("/usr/share/doc/readme", "read me")
            .insert_text("/usr/share/doc/license", "MIT");
        Arc::new(BundleFs::new(bundle))
    }

    #[test]
    fn lazy_overlay_reads_through_to_lower() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"root:x:0:0");
        // Reads do not copy up.
        assert_eq!(fs.upper_node_count(), 1);
    }

    #[test]
    fn eager_overlay_materialises_everything_up_front() {
        let fs = OverlayFs::new(lower(), OverlayMode::Eager);
        assert!(fs.upper_node_count() > 4, "eager mode should copy all files up");
        assert_eq!(fs.mode(), OverlayMode::Eager);
        assert_eq!(fs.read_file("/usr/share/doc/license").unwrap(), b"MIT");
    }

    #[test]
    fn writes_copy_up_and_do_not_touch_lower() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.write_at("/etc/passwd", 0, b"user").unwrap();
        assert_eq!(&fs.read_file("/etc/passwd").unwrap()[..4], b"user");
        assert!(fs.upper_node_count() > 1);
        // New files land in the upper layer.
        fs.write_file("/etc/hostname", b"browsix").unwrap();
        assert_eq!(fs.read_file("/etc/hostname").unwrap(), b"browsix");
    }

    #[test]
    fn unlink_of_lower_file_uses_whiteout() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.unlink("/etc/passwd").unwrap();
        assert_eq!(fs.stat("/etc/passwd"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/etc/passwd"), Err(Errno::ENOENT));
        assert_eq!(fs.whiteout_count(), 1);
        // Re-creating the file clears the whiteout.
        fs.write_file("/etc/passwd", b"new").unwrap();
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"new");
        assert_eq!(fs.whiteout_count(), 0);
    }

    #[test]
    fn read_dir_merges_layers_and_hides_whiteouts() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.write_file("/usr/share/doc/notes", b"hi").unwrap();
        fs.unlink("/usr/share/doc/license").unwrap();
        let names: Vec<String> = fs
            .read_dir("/usr/share/doc")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["notes", "readme"]);
    }

    #[test]
    fn mkdir_over_existing_lower_dir_is_eexist() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.mkdir("/etc"), Err(Errno::EEXIST));
        fs.mkdir("/var").unwrap();
        assert!(fs.stat("/var").unwrap().is_dir());
    }

    #[test]
    fn rmdir_hides_lower_directory() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        // /usr/share/doc is non-empty.
        assert_eq!(fs.rmdir("/usr/share/doc"), Err(Errno::ENOTEMPTY));
        fs.mkdir("/empty").unwrap();
        fs.rmdir("/empty").unwrap();
        assert!(!fs.exists("/empty"));
    }

    #[test]
    fn rename_copies_and_whiteouts_source() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.rename("/etc/passwd", "/etc/passwd.bak").unwrap();
        assert_eq!(fs.read_file("/etc/passwd.bak").unwrap(), b"root:x:0:0");
        assert_eq!(fs.stat("/etc/passwd"), Err(Errno::ENOENT));
    }

    #[test]
    fn create_on_existing_lower_file_copies_up() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.create("/etc/passwd", 0o644).unwrap();
        // Contents preserved by the copy-up.
        assert_eq!(fs.read_file("/etc/passwd").unwrap(), b"root:x:0:0");
    }

    #[test]
    fn create_in_missing_directory_is_enoent() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        assert_eq!(fs.create("/no/such/dir/file", 0o644), Err(Errno::ENOENT));
    }

    #[test]
    fn truncate_and_chmod_copy_up() {
        let fs = OverlayFs::new(lower(), OverlayMode::Lazy);
        fs.truncate("/usr/share/doc/readme", 4).unwrap();
        assert_eq!(fs.read_file("/usr/share/doc/readme").unwrap(), b"read");
        fs.chmod("/usr/share/doc/readme", 0o600).unwrap();
        assert_eq!(fs.stat("/usr/share/doc/readme").unwrap().mode, 0o600);
    }
}
